//! Capacity planning with the analysis toolkit: how much broker capacity
//! does the Table 1 workload actually need?
//!
//! Sweeps a uniform scale factor over every node capacity, optimizes each
//! variant, and reports utility, admission fairness and saturation — then
//! saves the chosen configuration as a versioned JSON workload file.
//!
//! Run with `cargo run --example capacity_planning`.

use lrgp::{Engine, LrgpConfig};
use lrgp_model::io::ProblemFile;
use lrgp_model::workloads::base_workload;
use lrgp_model::AllocationReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("scale | utility | admitted | Jain fairness | saturated nodes | starved classes");
    println!("------|---------|----------|---------------|-----------------|----------------");

    let base = base_workload();
    let mut chosen = None;
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        // Scale every node capacity.
        let mut problem = base.clone();
        for node in base.node_ids() {
            problem = problem.with_node_capacity(node, base.node(node).capacity * scale)?;
        }
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        engine.run_until_converged(400);
        let report = AllocationReport::new(engine.problem(), &engine.allocation());
        println!(
            "{scale:>5} | {:>7.0} | {:>5.0}/{} | {:>13.3} | {:>15} | {:>15}",
            report.total_utility,
            report.total_admitted,
            report.total_demanded,
            report.jain_admission_fairness,
            report.saturated_nodes(0.95).len(),
            report.starved_classes().len(),
        );
        // "Plan": the smallest scale admitting at least half the demand.
        if chosen.is_none() && report.total_admitted * 2.0 >= report.total_demanded as f64 {
            chosen = Some((scale, problem, engine.allocation()));
        }
    }

    if let Some((scale, problem, allocation)) = chosen {
        let path = std::env::temp_dir().join("lrgp_capacity_plan.json");
        ProblemFile::new(
            format!("Table 1 workload at {scale}x capacity (≥50% demand admitted)"),
            problem,
        )
        .with_allocation(allocation)
        .save(&path)?;
        println!("\nplanned configuration ({scale}x) saved to {}", path.display());
        // Round-trip sanity.
        let loaded = ProblemFile::load(&path)?;
        assert!(loaded.allocation.is_some());
        println!("reloaded OK: {}", loaded.description);
    } else {
        println!("\nno sweep point admitted at least half the demand");
    }
    Ok(())
}
