//! The paper's *Trade Data* scenario (§1.1): a stock-trade feed with
//! high-priority **gold** consumers at brokerage firms and best-effort
//! **public** consumers on the Internet.
//!
//! Gold consumers pay for the data, expect reliable delivery (expensive
//! per-consumer processing: acknowledgements, retransmissions), and must
//! essentially always be served. Public consumers receive a redacted feed
//! and are the admission-control release valve when resources run short.
//!
//! The example shows LRGP doing exactly that: as the node capacity shrinks
//! (a "market storm" consuming CPU elsewhere), public consumers are shed
//! first while gold admission and the flow rate degrade gracefully.
//!
//! Run with `cargo run --example trade_data`.

use lrgp::{Engine, LrgpConfig};
use lrgp_model::{Problem, ProblemBuilder, RateBounds, Utility, ValidationError};

fn build_market(node_capacity: f64) -> Result<Problem, ValidationError> {
    let mut b = ProblemBuilder::new();
    let exchange = b.add_labeled_node(1e9, "exchange-gw");
    let brokerage = b.add_labeled_node(node_capacity, "brokerage-pop");
    let internet = b.add_labeled_node(node_capacity, "internet-pop");

    // One flow of trade messages per market segment; both PoPs receive it.
    let trades = b.add_flow(exchange, RateBounds::new(50.0, 2000.0)?);
    b.set_node_cost(trades, brokerage, 5.0); // parsing + enrichment
    b.set_node_cost(trades, internet, 8.0); // + field redaction for public feed

    // Gold consumers: very high rank, expensive reliable delivery (large G).
    let gold = b.add_class(trades, brokerage, 50, Utility::log(500.0), 60.0);
    // Public consumers: numerous, cheap-ish filtering, low rank.
    let public = b.add_class(trades, internet, 20_000, Utility::log(1.0), 12.0);
    let problem = b.build()?;
    // Return ids via closure capture instead: keep it simple — ids are
    // deterministic (0 and 1).
    let _ = (gold, public);
    Ok(problem)
}

fn main() -> Result<(), ValidationError> {
    println!("capacity | rate msg/s | gold admitted | public admitted | utility");
    println!("---------|------------|---------------|-----------------|--------");
    for capacity in [4e6, 2e6, 1e6, 5e5, 2e5] {
        let problem = build_market(capacity)?;
        let mut engine = Engine::new(problem, LrgpConfig::default());
        let outcome = engine.run_until_converged(400);
        let a = engine.allocation();
        let gold = lrgp_model::ClassId::new(0);
        let public = lrgp_model::ClassId::new(1);
        println!(
            "{:>8.0e} | {:>10.1} | {:>8.0} / 50 | {:>9.0} / 20000 | {:>7.0}",
            capacity,
            a.rate(lrgp_model::FlowId::new(0)),
            a.population(gold),
            a.population(public),
            outcome.utility,
        );
        assert!(a.is_feasible(engine.problem(), 1e-6));
    }
    println!();
    println!("As capacity shrinks, LRGP sheds public consumers first (low");
    println!("benefit-cost ratio) while gold consumers keep full service for");
    println!("as long as the numbers justify it - the paper's admission-");
    println!("control story for heterogeneous consumer value.");
    Ok(())
}
