//! Distributed LRGP on the simulated overlay: synchronous rounds, the
//! asynchronous variant, and the data plane enacting the result.
//!
//! Run with `cargo run --example overlay_protocol`.

use lrgp::LrgpConfig;
use lrgp_model::workloads::base_workload;
use lrgp_overlay::{
    run_asynchronous, run_synchronous, simulate_message_plane, AsyncConfig, LatencyModel,
    PlaneConfig, SimTime, Topology,
};

fn main() {
    let problem = base_workload();
    // A WAN-ish overlay: 5–40 ms one-way latencies, 200 µs processing.
    let topology = Topology::from_problem(
        &problem,
        LatencyModel::RandomUniform {
            min: SimTime::from_millis(5),
            max: SimTime::from_millis(40),
            seed: 7,
        },
        SimTime::from_micros(200),
    );
    println!("max RTT in the overlay: {} (= one synchronous iteration)", topology.max_rtt());

    // 1. Synchronous protocol: one LRGP iteration per max-RTT.
    let sync = run_synchronous(&problem, &topology, LrgpConfig::default(), 100);
    println!(
        "synchronous: 100 rounds in {} virtual time, {} messages, utility {:.0}",
        sync.duration,
        sync.messages,
        sync.utility.last().unwrap()
    );

    // 2. Asynchronous protocol: actors tick independently, prices averaged
    //    over the last 3 values (§3.5).
    let async_out = run_asynchronous(
        &problem,
        &topology,
        AsyncConfig { duration: SimTime::from_secs(10), ..AsyncConfig::default() },
    );
    println!(
        "asynchronous: 10 s simulated, {} messages, utility {:.0}",
        async_out.messages, async_out.final_utility
    );

    // 3. Enact the synchronous allocation on the data plane and verify no
    //    broker exceeds its capacity while serving real message traffic.
    let report = simulate_message_plane(
        &problem,
        &topology,
        &sync.allocation,
        PlaneConfig { duration: SimTime::from_secs(2), ..PlaneConfig::default() },
    );
    let injected: u64 = report.injected.iter().sum();
    let delivered: u64 = report.class_deliveries.iter().sum();
    println!(
        "data plane: {injected} messages injected, {delivered} consumer deliveries, \
         peak node utilization {:.1}%, mean delivery latency {:.1} ms",
        report.peak_utilization() * 100.0,
        report.latency.mean() * 1e3,
    );
    assert!(report.peak_utilization() <= 1.05);
}
