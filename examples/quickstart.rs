//! Quickstart: build a small event-driven infrastructure, optimize it with
//! LRGP, and inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use lrgp::{Engine, LrgpConfig};
use lrgp_model::{ProblemBuilder, RateBounds, Utility, ValidationError};

fn main() -> Result<(), ValidationError> {
    // An overlay with one source node and two consumer-hosting brokers.
    let mut builder = ProblemBuilder::new();
    let source = builder.add_labeled_node(1e6, "source");
    let broker_a = builder.add_labeled_node(5e5, "broker-a");
    let broker_b = builder.add_labeled_node(5e5, "broker-b");

    // One message flow, injected at the source, reaching both brokers.
    // Each delivered message costs 3 resource units per broker (routing,
    // matching), regardless of how many consumers are attached.
    let flow = builder.add_flow(source, RateBounds::new(10.0, 1000.0)?);
    builder.set_node_cost(flow, broker_a, 3.0);
    builder.set_node_cost(flow, broker_b, 3.0);

    // Two consumer classes: premium consumers value the data highly
    // (rank 50); public consumers are numerous but low-value (rank 2).
    // Serving one consumer costs 19 resource units per message.
    let premium = builder.add_class(flow, broker_a, 200, Utility::log(50.0), 19.0);
    let public = builder.add_class(flow, broker_b, 5000, Utility::log(2.0), 19.0);
    let problem = builder.build()?;

    // Run LRGP until the utility trace stabilizes (amplitude < 0.1 %).
    let mut engine = Engine::new(problem, LrgpConfig::default());
    let outcome = engine.run_until_converged(250);

    let allocation = engine.allocation();
    match outcome.converged_at {
        Some(k) => println!("converged after {k} iterations"),
        None => println!(
            "ran {} iterations (residual oscillation above the 0.1% criterion)",
            outcome.iterations
        ),
    }
    println!("total utility: {:.0}", outcome.utility);
    println!("flow rate:     {:.1} msg/s", allocation.rate(flow));
    println!(
        "admitted:      {:.0}/200 premium, {:.0}/5000 public",
        allocation.population(premium),
        allocation.population(public),
    );
    assert!(allocation.is_feasible(engine.problem(), 1e-6));
    println!("allocation is feasible: every broker within capacity");
    Ok(())
}
