//! Workload dynamics: a flow source leaves the system mid-run (the paper's
//! Fig. 3 experiment) and the optimizer redistributes the freed capacity.
//!
//! Run with `cargo run --example dynamic_recovery`.

use lrgp::{EnactmentPolicy, Enactor, Engine, LrgpConfig};
use lrgp_model::workloads::base_workload;
use lrgp_model::{FlowId, ProblemDelta};

fn main() {
    let mut engine = Engine::new(base_workload(), LrgpConfig::default());
    // Enact at most when allocations move by ≥ 5 % / ≥ 10 consumers, so
    // consumers aren't churned every iteration (§2.1).
    let mut enactor = Enactor::new(EnactmentPolicy::OnSignificantChange {
        rate_threshold: 0.05,
        population_threshold: 10.0,
    });

    let mut enactments_before = 0;
    for _ in 0..150 {
        engine.step();
        if enactor.offer(&engine.allocation()) {
            enactments_before += 1;
        }
    }
    let before = engine.total_utility();
    println!("steady state: utility {before:.0} ({enactments_before} enactments in 150 iterations)");

    // The rank-100 flow's source leaves.
    engine
        .apply_delta(&ProblemDelta::new().remove_flow(FlowId::new(5)))
        .expect("flow 5 exists");
    println!("flow 5 (rank-100 consumers) removed...");

    let mut recovered_at = None;
    let mut enactments_after = 0;
    for k in 1..=100 {
        engine.step();
        if enactor.offer(&engine.allocation()) {
            enactments_after += 1;
        }
        if recovered_at.is_none() && k > 10 {
            if let Some(amp) = engine.trace().utility.relative_amplitude(10) {
                if amp < 1e-3 {
                    recovered_at = Some(k);
                }
            }
        }
    }
    let after = engine.total_utility();
    println!(
        "recovered: utility {after:.0} ({:.0}% of pre-removal) within {} iterations, \
         {enactments_after} enactments",
        after / before * 100.0,
        recovered_at.map(|k| k.to_string()).unwrap_or_else(|| ">100".into()),
    );

    // The freed capacity went to the remaining classes: rates of surviving
    // flows co-located with flow 5 rise.
    let a = engine.allocation();
    println!("surviving flow rates: {:?}", a.rates().iter().map(|r| r.round()).collect::<Vec<_>>());
    assert!(after < before);
    assert!(a.is_feasible(engine.problem(), 1e-6));
}
