//! The paper's *Latest Price Data* scenario (§1.1): a very elastic flow of
//! stock-price updates delivered through consumer-specified content filters
//! (e.g. `price > 80`).
//!
//! Rate is the elasticity knob: halving the update frequency doubles
//! latency but frees resources for more consumers. LRGP trades these off
//! through the utility shape — with `rank·log(1+r)` the marginal value of
//! extra rate falls quickly, so under pressure the optimizer prefers
//! admitting consumers over speeding up updates.
//!
//! Run with `cargo run --example latest_price`.

use lrgp::{Engine, LrgpConfig};
use lrgp_model::{ClassId, FlowId, ProblemBuilder, RateBounds, Utility, ValidationError};

fn main() -> Result<(), ValidationError> {
    let mut b = ProblemBuilder::new();
    let feed = b.add_labeled_node(1e9, "price-feed");
    let edge = b.add_labeled_node(3e5, "edge-broker");

    // One flow of IBM price updates; rate may drop to 1/s (stale but
    // usable) or rise to 500/s (tick-by-tick).
    let prices = b.add_flow(feed, RateBounds::new(1.0, 500.0)?);
    b.set_node_cost(prices, edge, 2.0);

    // Three filter complexity tiers: the more selective the filter, the
    // more evaluation work per message per consumer (larger G).
    let cheap = b.add_class(prices, edge, 3000, Utility::log(4.0), 6.0); // price > X
    let medium = b.add_class(prices, edge, 1000, Utility::log(8.0), 18.0); // conjunctions
    let heavy = b.add_class(prices, edge, 200, Utility::log(20.0), 60.0); // regex-ish

    let problem = b.build()?;
    let mut engine = Engine::new(problem, LrgpConfig::default());
    let outcome = engine.run_until_converged(400);
    let a = engine.allocation();

    println!("elastic price feed optimized in {} iterations", outcome.iterations);
    println!("update rate: {:.1}/s (bounds 1..500)", a.rate(FlowId::new(0)));
    for (name, id, max) in
        [("cheap filters", cheap, 3000), ("medium filters", medium, 1000), ("heavy filters", heavy, 200)]
    {
        println!("{name:>14}: {:>5.0} / {max} admitted", a.population(id));
    }
    println!("total utility: {:.0}", outcome.utility);

    // The elasticity story: force a tick-by-tick rate and watch admission
    // collapse — the whole point of joint rate + admission control.
    let fast = {
        let mut b = ProblemBuilder::new();
        let feed = b.add_labeled_node(1e9, "price-feed");
        let edge = b.add_labeled_node(3e5, "edge-broker");
        let prices = b.add_flow(feed, RateBounds::new(500.0, 500.0)?);
        b.set_node_cost(prices, edge, 2.0);
        b.add_class(prices, edge, 3000, Utility::log(4.0), 6.0);
        b.add_class(prices, edge, 1000, Utility::log(8.0), 18.0);
        b.add_class(prices, edge, 200, Utility::log(20.0), 60.0);
        b.build()?
    };
    let mut fast_engine = Engine::new(fast, LrgpConfig::default());
    let fast_outcome = fast_engine.run_until_converged(400);
    let fa = fast_engine.allocation();
    let admitted: f64 = (0..3).map(|k| fa.population(ClassId::new(k))).sum();
    let admitted_elastic: f64 = (0..3).map(|k| a.population(ClassId::new(k))).sum();
    println!();
    println!(
        "forced tick-by-tick (r = 500): {admitted:.0} consumers, utility {:.0}",
        fast_outcome.utility
    );
    println!(
        "elastic rate ({:.1}/s):        {admitted_elastic:.0} consumers, utility {:.0}",
        a.rate(FlowId::new(0)),
        outcome.utility
    );
    assert!(outcome.utility > fast_outcome.utility);
    println!("=> elasticity buys {:.1}x the utility", outcome.utility / fast_outcome.utility);
    Ok(())
}
