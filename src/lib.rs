//! Workspace-level façade for the LRGP reproduction.
//!
//! Re-exports the member crates so the root examples and integration tests
//! can use one import root.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lrgp;
pub use lrgp_anneal;
pub use lrgp_model;
pub use lrgp_num;
pub use lrgp_overlay;
pub use lrgp_pubsub;
