//! Serde round-trip properties for every serializable model type: a
//! workload saved and reloaded must be *exactly* the problem it was.

use lrgp_model::io::ProblemFile;
use lrgp_model::workloads::{paper_workload, RandomWorkload};
use lrgp_model::{Allocation, Utility, UtilityShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random problems survive a JSON round trip bit-for-bit.
    #[test]
    fn random_problem_round_trips(
        flows in 1usize..5,
        nodes in 1usize..4,
        classes in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = RandomWorkload {
            flows,
            consumer_nodes: nodes,
            classes_per_flow: classes,
            ..RandomWorkload::default()
        };
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let file = ProblemFile::new("prop", problem.clone());
        let back = ProblemFile::from_json(&file.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.problem, problem);
    }

    /// Allocations round-trip alongside their problem.
    #[test]
    fn allocation_round_trips(seed in any::<u64>()) {
        let problem = RandomWorkload::default().generate(&mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let mut alloc = Allocation::lower_bounds(&problem);
        for f in problem.flow_ids() {
            let b = problem.flow(f).bounds;
            alloc.set_rate(f, rng.gen_range(b.min..=b.max));
        }
        for c in problem.class_ids() {
            let max = problem.class(c).max_population;
            alloc.set_population(c, rng.gen_range(0..=max) as f64);
        }
        let file = ProblemFile::new("alloc", problem).with_allocation(alloc.clone());
        let back = ProblemFile::from_json(&file.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.allocation, Some(alloc));
    }

    /// Utility values survive serialization (no float munging).
    #[test]
    fn utility_enum_round_trips(weight in 0.001f64..1e6, exponent in 0.01f64..0.99) {
        for u in [
            Utility::log(weight),
            Utility::power(weight, exponent),
            Utility::linear(weight),
            Utility::saturating(weight, 42.0),
        ] {
            let json = serde_json::to_string(&u).unwrap();
            let back: Utility = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, u);
        }
    }
}

#[test]
fn every_paper_workload_round_trips() {
    for shape in UtilityShape::ALL {
        for (sys, cn) in [(1, 1), (2, 1), (1, 2)] {
            let p = paper_workload(shape, sys, cn);
            let file = ProblemFile::new(format!("{shape} {sys}x{cn}"), p.clone());
            let back = ProblemFile::from_json(&file.to_json().unwrap()).unwrap();
            assert_eq!(back.problem, p);
        }
    }
}
