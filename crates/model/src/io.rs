//! Problem and allocation (de)serialization.
//!
//! Workloads are plain data; being able to save them, diff them, and reload
//! them is what makes experiments repeatable. Everything in this crate
//! derives Serde, and this module adds JSON convenience wrappers plus a
//! versioned container so files remain identifiable as they evolve.

use crate::allocation::Allocation;
use crate::problem::Problem;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Format version written into every file; bumped on breaking schema
/// changes.
pub const FORMAT_VERSION: u32 = 1;

/// A versioned, self-describing container for a problem (and optionally a
/// solved allocation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemFile {
    /// Schema version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Free-form description of the workload.
    pub description: String,
    /// The problem itself.
    pub problem: Problem,
    /// A solved allocation, if one is bundled.
    pub allocation: Option<Allocation>,
}

/// Error type for problem-file I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// The file's schema version is not supported.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported problem-file version {found} (supported: {supported})")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
            IoError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

impl ProblemFile {
    /// Wraps a problem for saving.
    pub fn new(description: impl Into<String>, problem: Problem) -> Self {
        Self { version: FORMAT_VERSION, description: description.into(), problem, allocation: None }
    }

    /// Attaches a solved allocation.
    pub fn with_allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = Some(allocation);
        self
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Json`] if serialization fails (practically
    /// impossible for these types).
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn to_json(&self) -> Result<String, IoError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserializes from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// [`IoError::Json`] on malformed input, [`IoError::UnsupportedVersion`]
    /// on a version mismatch.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn from_json(text: &str) -> Result<Self, IoError> {
        let file: ProblemFile = serde_json::from_str(text)?;
        if file.version != FORMAT_VERSION {
            return Err(IoError::UnsupportedVersion {
                found: file.version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(file)
    }

    /// Writes pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] on filesystem failure, [`IoError::Json`] on
    /// serialization failure.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn save(&self, path: &Path) -> Result<(), IoError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from `path`.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] on filesystem failure, plus the [`Self::from_json`]
    /// conditions.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn load(path: &Path) -> Result<Self, IoError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::base_workload;

    #[test]
    fn json_round_trip_preserves_problem() {
        let p = base_workload();
        let file = ProblemFile::new("paper table 1", p.clone());
        let json = file.to_json().unwrap();
        let back = ProblemFile::from_json(&json).unwrap();
        assert_eq!(back.problem, p);
        assert_eq!(back.description, "paper table 1");
        assert_eq!(back.allocation, None);
    }

    #[test]
    fn round_trip_with_allocation() {
        let p = base_workload();
        let a = Allocation::upper_bounds(&p);
        let file = ProblemFile::new("solved", p).with_allocation(a.clone());
        let back = ProblemFile::from_json(&file.to_json().unwrap()).unwrap();
        assert_eq!(back.allocation, Some(a));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lrgp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.json");
        let file = ProblemFile::new("disk", base_workload());
        file.save(&path).unwrap();
        let back = ProblemFile::load(&path).unwrap();
        assert_eq!(back, file);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut file = ProblemFile::new("x", base_workload());
        file.version = 999;
        let json = serde_json::to_string(&file).unwrap();
        let err = ProblemFile::from_json(&json).unwrap_err();
        assert!(matches!(err, IoError::UnsupportedVersion { found: 999, .. }));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn malformed_json_rejected() {
        let err = ProblemFile::from_json("{not json").unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ProblemFile::load(Path::new("/nonexistent/lrgp.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
