//! The optimization problem specification (§2 of the paper).
//!
//! A [`Problem`] captures everything the optimizer needs: the overlay's nodes
//! and links with their capacities, the flows with their rate bounds and
//! resource costs, and the consumer classes with their utilities and
//! per-consumer costs. Problems are immutable once built; construct them via
//! [`ProblemBuilder`], which validates cross-references and returns a
//! [`ValidationError`] describing the first inconsistency found.

use crate::ids::{ClassId, FlowId, LinkId, NodeId};
use crate::utility::Utility;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inclusive rate bounds `[min, max]` for a flow (constraint (3)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateBounds {
    /// Minimum rate `r_i^min`.
    pub min: f64,
    /// Maximum rate `r_i^max`.
    pub max: f64,
}

impl RateBounds {
    /// Creates bounds after checking `0 <= min <= max` and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::InvalidRateBounds`] when violated.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn new(min: f64, max: f64) -> Result<Self, ValidationError> {
        if !(min.is_finite() && max.is_finite()) || min < 0.0 || min > max {
            return Err(ValidationError::InvalidRateBounds { min, max });
        }
        Ok(Self { min, max })
    }

    /// Clamps a rate into the bounds.
    pub fn clamp(&self, rate: f64) -> f64 {
        rate.clamp(self.min, self.max)
    }

    /// `true` if `rate` lies within the bounds up to `tol`.
    pub fn contains(&self, rate: f64, tol: f64) -> bool {
        rate >= self.min - tol && rate <= self.max + tol
    }

    /// Width `max - min` of the feasible interval.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }
}

/// Inclusive reliability bounds `[min, max] ⊆ (0, 1]` for a flow's
/// delivered-fraction target `ρ_i` (the joint rate–reliability extension).
///
/// The lower bound must be strictly positive: the reliability utility
/// `V_i(ρ) = w · ln(ρ)` diverges at zero, and the ρ best-response divides
/// by ρ nowhere but clamps into these bounds everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RhoBounds {
    /// Minimum reliability `ρ_i^min`.
    pub min: f64,
    /// Maximum reliability `ρ_i^max`.
    pub max: f64,
}

impl RhoBounds {
    /// Creates bounds after checking `0 < min <= max <= 1` and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::InvalidRhoBounds`] when violated.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn new(min: f64, max: f64) -> Result<Self, ValidationError> {
        if !(min.is_finite() && max.is_finite()) || min <= 0.0 || min > max || max > 1.0 {
            return Err(ValidationError::InvalidRhoBounds { min, max });
        }
        Ok(Self { min, max })
    }

    /// Clamps a reliability into the bounds.
    pub fn clamp(&self, rho: f64) -> f64 {
        rho.clamp(self.min, self.max)
    }

    /// `true` if `rho` lies within the bounds up to `tol`.
    pub fn contains(&self, rho: f64, tol: f64) -> bool {
        rho >= self.min - tol && rho <= self.max + tol
    }

    /// Bounds pinned to a single value (`min == max == rho`): the
    /// "rate-only with fixed reliability" baseline of the integrated
    /// experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::InvalidRhoBounds`] unless `0 < rho <= 1`.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn fixed(rho: f64) -> Result<Self, ValidationError> {
        Self::new(rho, rho)
    }
}

impl Default for RhoBounds {
    /// Full reliability (`[1, 1]`): a flow added to a problem that never
    /// set bounds for it demands complete delivery.
    fn default() -> Self {
        Self { min: 1.0, max: 1.0 }
    }
}

/// The optional joint rate–reliability extension of a [`Problem`]
/// (Lee–Chiang–Calderbank NUM): per-flow reliability bounds, per-link loss
/// rates, and a redundancy factor coupling ρ back into link usage.
///
/// When attached (see [`Problem::with_reliability`] /
/// [`ProblemBuilder::set_reliability`]), the engine may solve for a second
/// per-flow decision variable `ρ_i` whose utility `V_i(ρ) = w_i · ln(ρ)`
/// trades off against redundancy-inflated link usage
/// `L_{l,i} · r_i · (1 + redundancy · ρ_i · loss_l)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Per-flow reliability bounds, indexed by flow id.
    pub rho_bounds: Vec<RhoBounds>,
    /// Per-link loss rate `loss_l ∈ [0, 1)`, indexed by link id.
    pub link_loss: Vec<f64>,
    /// Redundancy factor `≥ 0` scaling how strongly a flow's ρ inflates
    /// its usage of lossy links.
    pub redundancy: f64,
}

impl ReliabilitySpec {
    /// A spec with the same bounds for every flow and the same loss on
    /// every link.
    pub fn uniform(
        num_flows: usize,
        num_links: usize,
        bounds: RhoBounds,
        loss: f64,
        redundancy: f64,
    ) -> Self {
        Self {
            rho_bounds: vec![bounds; num_flows],
            link_loss: vec![loss; num_links],
            redundancy,
        }
    }
}

/// An overlay node (broker) with a CPU-like capacity `c_b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Resource capacity `c_b` (e.g. CPU units/second).
    pub capacity: f64,
    /// Optional human-readable label (e.g. `"S0"` in the paper's workload).
    pub label: Option<String>,
}

/// A unidirectional overlay link with bandwidth-like capacity `c_l`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Resource capacity `c_l`.
    pub capacity: f64,
    /// Upstream endpoint, when topology is modelled.
    pub from: Option<NodeId>,
    /// Downstream endpoint, when topology is modelled.
    pub to: Option<NodeId>,
}

/// A message flow: a producer stream injected at a source node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node at which the flow's producers attach and where the rate
    /// is decided (Algorithm 1 runs here).
    pub source: NodeId,
    /// Rate bounds (constraint (3)).
    pub bounds: RateBounds,
    /// Link costs `L_{l,i}` for every link the flow traverses; links absent
    /// here implicitly have zero cost (the flow does not traverse them).
    pub link_costs: Vec<(LinkId, f64)>,
    /// Flow-node costs `F_{b,i}` for every node the flow reaches.
    pub node_costs: Vec<(NodeId, f64)>,
}

/// A consumer class: a population of identical consumers of one flow,
/// attached to one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// The flow whose messages the class consumes (`flowMap(j)`).
    pub flow: FlowId,
    /// The node the class attaches to.
    pub node: NodeId,
    /// Maximum population `n_j^max` (constraint (2)).
    pub max_population: u32,
    /// Per-consumer utility `U_j(r)`.
    pub utility: Utility,
    /// Consumer-node cost `G_{b,j}`: node resource per consumer per unit
    /// rate.
    pub consumer_cost: f64,
}

/// Structural inconsistency detected while building a [`Problem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValidationError {
    /// A referenced node id does not exist.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// A referenced link id does not exist.
    UnknownLink {
        /// The offending id.
        link: LinkId,
    },
    /// A referenced flow id does not exist.
    UnknownFlow {
        /// The offending id.
        flow: FlowId,
    },
    /// A node or link capacity is not strictly positive and finite.
    NonPositiveCapacity {
        /// Description of the resource (`"node3"`, `"link0"`).
        resource: String,
        /// The offending capacity.
        capacity: f64,
    },
    /// Rate bounds violate `0 <= min <= max` or are non-finite.
    InvalidRateBounds {
        /// Offending lower bound.
        min: f64,
        /// Offending upper bound.
        max: f64,
    },
    /// A cost coefficient is negative or non-finite.
    InvalidCost {
        /// Description of the coefficient (`"F[node2, flow1]"`).
        coefficient: String,
        /// The offending value.
        value: f64,
    },
    /// A class's consumer cost `G_{b,j}` must be strictly positive (the
    /// benefit–cost ratio (10) divides by it).
    NonPositiveConsumerCost {
        /// The offending class.
        class: ClassId,
        /// The offending cost.
        cost: f64,
    },
    /// A class attaches to a node its flow does not reach (no `F_{b,i}`
    /// entry). §2.4's two-stage approximation requires the flow to be routed
    /// to every node hosting one of its classes.
    ClassNodeNotReached {
        /// The offending class.
        class: ClassId,
        /// The flow it consumes.
        flow: FlowId,
        /// The node it attaches to.
        node: NodeId,
    },
    /// The same link/node appears twice in a flow's cost list.
    DuplicateCost {
        /// Description of the duplicated coefficient.
        coefficient: String,
    },
    /// A referenced class id does not exist.
    UnknownClass {
        /// The offending id.
        class: ClassId,
    },
    /// A cost edit referenced a (flow, node) pair with no existing `F_{b,i}`
    /// entry. Cost edits never add or remove path entries — that would
    /// invalidate the derived index maps — so the entry must already exist.
    NoSuchCostEntry {
        /// Description of the missing coefficient (`"F[node2, flow1]"`).
        coefficient: String,
    },
    /// Reliability bounds violate `0 < min <= max <= 1` or are non-finite.
    InvalidRhoBounds {
        /// Offending lower bound.
        min: f64,
        /// Offending upper bound.
        max: f64,
    },
    /// A per-link loss rate lies outside `[0, 1)` or is non-finite.
    InvalidLossRate {
        /// The offending link.
        link: LinkId,
        /// The offending loss rate.
        loss: f64,
    },
    /// The redundancy factor is negative or non-finite.
    InvalidRedundancy {
        /// The offending value.
        value: f64,
    },
    /// A [`ReliabilitySpec`] vector does not match the problem's shape
    /// (one entry per flow / per link).
    ReliabilityShape {
        /// Which vector is misshapen (`"rho_bounds"`, `"link_loss"`).
        what: String,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A reliability edit targeted a problem with no [`ReliabilitySpec`]
    /// attached. Edits never attach a spec — that would change the
    /// problem's decision-variable shape mid-run.
    ReliabilityDisabled,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownNode { node } => write!(f, "unknown node {node}"),
            ValidationError::UnknownLink { link } => write!(f, "unknown link {link}"),
            ValidationError::UnknownFlow { flow } => write!(f, "unknown flow {flow}"),
            ValidationError::NonPositiveCapacity { resource, capacity } => {
                write!(f, "capacity of {resource} must be positive, got {capacity}")
            }
            ValidationError::InvalidRateBounds { min, max } => {
                write!(f, "invalid rate bounds [{min}, {max}]")
            }
            ValidationError::InvalidCost { coefficient, value } => {
                write!(f, "cost {coefficient} must be nonnegative and finite, got {value}")
            }
            ValidationError::NonPositiveConsumerCost { class, cost } => {
                write!(f, "consumer cost of {class} must be positive, got {cost}")
            }
            ValidationError::ClassNodeNotReached { class, flow, node } => {
                write!(f, "{class} attaches to {node} but {flow} does not reach it")
            }
            ValidationError::DuplicateCost { coefficient } => {
                write!(f, "duplicate cost entry for {coefficient}")
            }
            ValidationError::UnknownClass { class } => write!(f, "unknown class {class}"),
            ValidationError::NoSuchCostEntry { coefficient } => {
                write!(f, "no cost entry for {coefficient}")
            }
            ValidationError::InvalidRhoBounds { min, max } => {
                write!(f, "invalid reliability bounds [{min}, {max}]")
            }
            ValidationError::InvalidLossRate { link, loss } => {
                write!(f, "loss rate of {link} must lie in [0, 1), got {loss}")
            }
            ValidationError::InvalidRedundancy { value } => {
                write!(f, "redundancy factor must be nonnegative and finite, got {value}")
            }
            ValidationError::ReliabilityShape { what, expected, actual } => {
                write!(f, "reliability {what} must have {expected} entries, got {actual}")
            }
            ValidationError::ReliabilityDisabled => {
                write!(f, "problem has no reliability spec attached")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// An immutable, validated problem instance.
///
/// Besides the raw specification, a `Problem` precomputes the index maps the
/// paper names `flowMap`, `linkMap`, `nodeMap`, `attachMap` and
/// `nodeClasses`, so the optimizer can iterate without hashing.
///
/// # Examples
///
/// ```
/// use lrgp_model::{ProblemBuilder, RateBounds, Utility};
///
/// # fn main() -> Result<(), lrgp_model::ValidationError> {
/// let mut b = ProblemBuilder::new();
/// let src = b.add_node(1e6);
/// let sink = b.add_node(9e5);
/// let flow = b.add_flow(src, RateBounds::new(10.0, 1000.0)?);
/// b.set_node_cost(flow, sink, 3.0);
/// b.add_class(flow, sink, 400, Utility::log(20.0), 19.0);
/// let problem = b.build()?;
/// assert_eq!(problem.num_flows(), 1);
/// assert_eq!(problem.num_classes(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    flows: Vec<FlowSpec>,
    classes: Vec<ClassSpec>,
    /// Optional joint rate–reliability extension; `None` (the default,
    /// and what any pre-extension serialized problem deserializes to)
    /// leaves the problem a pure rate NUM.
    #[serde(default)]
    reliability: Option<ReliabilitySpec>,
    // Derived indices.
    classes_of_flow: Vec<Vec<ClassId>>,
    classes_at_node: Vec<Vec<ClassId>>,
    flows_at_node: Vec<Vec<FlowId>>,
    flows_on_link: Vec<Vec<FlowId>>,
}

impl Problem {
    /// Number of overlay nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of overlay links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of consumer classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The node specification for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this problem never are).
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// The link specification for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.index()]
    }

    /// The flow specification for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn flow(&self, id: FlowId) -> &FlowSpec {
        &self.flows[id.index()]
    }

    /// The class specification for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &ClassSpec {
        &self.classes[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId::new)
    }

    /// Iterates over all flow ids.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        (0..self.flows.len() as u32).map(FlowId::new)
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId::new)
    }

    /// `C_i`: the classes consuming flow `flow`.
    pub fn classes_of_flow(&self, flow: FlowId) -> &[ClassId] {
        &self.classes_of_flow[flow.index()]
    }

    /// `nodeClasses(b)`: every class attached to `node` (any flow).
    pub fn classes_at_node(&self, node: NodeId) -> &[ClassId] {
        &self.classes_at_node[node.index()]
    }

    /// `attachMap_i(b)`: the classes of `flow` attached to `node`.
    pub fn classes_of_flow_at_node(
        &self,
        flow: FlowId,
        node: NodeId,
    ) -> impl Iterator<Item = ClassId> + '_ {
        self.classes_at_node[node.index()]
            .iter()
            .copied()
            .filter(move |&c| self.classes[c.index()].flow == flow)
    }

    /// `nodeMap(b)`: the flows that reach `node` (those with an `F_{b,i}`
    /// entry for it).
    pub fn flows_at_node(&self, node: NodeId) -> &[FlowId] {
        &self.flows_at_node[node.index()]
    }

    /// `linkMap(l)`: the flows traversing `link`.
    pub fn flows_on_link(&self, link: LinkId) -> &[FlowId] {
        &self.flows_on_link[link.index()]
    }

    /// `B_i`: the nodes reached by `flow`, with their `F_{b,i}` costs.
    pub fn nodes_of_flow(&self, flow: FlowId) -> &[(NodeId, f64)] {
        &self.flows[flow.index()].node_costs
    }

    /// `L_i`: the links traversed by `flow`, with their `L_{l,i}` costs.
    pub fn links_of_flow(&self, flow: FlowId) -> &[(LinkId, f64)] {
        &self.flows[flow.index()].link_costs
    }

    /// Flow-node cost `F_{b,i}`, zero when the flow does not reach the node.
    pub fn flow_node_cost(&self, node: NodeId, flow: FlowId) -> f64 {
        self.flows[flow.index()]
            .node_costs
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Link cost `L_{l,i}`, zero when the flow does not traverse the link.
    pub fn link_cost(&self, link: LinkId, flow: FlowId) -> f64 {
        self.flows[flow.index()]
            .link_costs
            .iter()
            .find(|(l, _)| *l == link)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Sum of `n_j^max` over all classes (the total consumer demand).
    pub fn total_demand(&self) -> u64 {
        self.classes.iter().map(|c| c.max_population as u64).sum()
    }

    /// The joint rate–reliability extension, when one is attached.
    pub fn reliability(&self) -> Option<&ReliabilitySpec> {
        self.reliability.as_ref()
    }

    /// Per-link loss rate `loss_l`; zero when no spec is attached or the
    /// id is out of range.
    pub fn link_loss(&self, link: LinkId) -> f64 {
        self.reliability
            .as_ref()
            .and_then(|s| s.link_loss.get(link.index()).copied())
            .unwrap_or(0.0)
    }

    /// Flow `flow`'s reliability bounds, when a spec is attached.
    pub fn rho_bounds(&self, flow: FlowId) -> Option<RhoBounds> {
        self.reliability
            .as_ref()
            .and_then(|s| s.rho_bounds.get(flow.index()).copied())
    }

    /// Returns a copy of this problem with every class utility replaced by
    /// `f(rank)` where `rank` is the class's current weight. Used to produce
    /// the §4.5 utility-shape variants of a workload.
    pub fn with_utilities(&self, f: impl Fn(f64) -> Utility) -> Problem {
        let mut p = self.clone();
        for class in &mut p.classes {
            class.utility = f(class.utility.weight());
        }
        p
    }

    /// Returns a copy with flow `flow` effectively removed: its rate bounds
    /// collapse to `[0, 0]` and its classes' populations are capped at 0.
    ///
    /// This models a flow source leaving the system (§4.2, Fig. 3) without
    /// renumbering ids, so traces remain comparable across the change.
    pub fn without_flow(&self, flow: FlowId) -> Problem {
        let mut p = self.clone();
        p.flows[flow.index()].bounds = RateBounds { min: 0.0, max: 0.0 };
        // A removed flow consumes no resources.
        p.flows[flow.index()].node_costs.iter_mut().for_each(|(_, c)| *c = 0.0);
        p.flows[flow.index()].link_costs.iter_mut().for_each(|(_, c)| *c = 0.0);
        for class in &mut p.classes {
            if class.flow == flow {
                class.max_population = 0;
            }
        }
        p
    }

    /// Returns a copy with `node`'s capacity replaced.
    ///
    /// # Errors
    ///
    /// [`ValidationError::NonPositiveCapacity`] unless the new capacity is
    /// finite and strictly positive.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_node_capacity(
        &self,
        node: NodeId,
        capacity: f64,
    ) -> Result<Problem, ValidationError> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(ValidationError::NonPositiveCapacity {
                resource: node.to_string(),
                capacity,
            });
        }
        let mut p = self.clone();
        p.nodes[node.index()].capacity = capacity;
        Ok(p)
    }

    /// Returns a copy with `class`'s maximum population replaced (consumer
    /// churn: demand arriving or departing).
    pub fn with_max_population(&self, class: ClassId, max_population: u32) -> Problem {
        let mut p = self.clone();
        p.classes[class.index()].max_population = max_population;
        p
    }

    /// Returns a copy with `flow`'s rate bounds replaced.
    ///
    /// # Errors
    ///
    /// [`ValidationError::InvalidRateBounds`] on invalid bounds.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_rate_bounds(
        &self,
        flow: FlowId,
        bounds: RateBounds,
    ) -> Result<Problem, ValidationError> {
        RateBounds::new(bounds.min, bounds.max)?;
        let mut p = self.clone();
        p.flows[flow.index()].bounds = bounds;
        Ok(p)
    }

    /// Returns a copy with `link`'s capacity replaced.
    ///
    /// # Errors
    ///
    /// [`ValidationError::NonPositiveCapacity`] unless the new capacity is
    /// finite and strictly positive, [`ValidationError::UnknownLink`] if the
    /// id is out of range.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_link_capacity(
        &self,
        link: LinkId,
        capacity: f64,
    ) -> Result<Problem, ValidationError> {
        if link.index() >= self.links.len() {
            return Err(ValidationError::UnknownLink { link });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(ValidationError::NonPositiveCapacity {
                resource: link.to_string(),
                capacity,
            });
        }
        let mut p = self.clone();
        p.links[link.index()].capacity = capacity;
        Ok(p)
    }

    /// Returns a copy with the `F_{b,i}` coefficient of an *existing*
    /// (flow, node) path entry replaced. Setting a cost to `0.0` models a
    /// pruned branch (as [`Self::prune_unused_paths`] does) without touching
    /// the path structure, so ids and the derived index maps stay stable.
    ///
    /// # Errors
    ///
    /// [`ValidationError::UnknownFlow`] / [`ValidationError::UnknownNode`]
    /// on out-of-range ids, [`ValidationError::NoSuchCostEntry`] if the flow
    /// has no entry for the node, [`ValidationError::InvalidCost`] unless
    /// the cost is finite and nonnegative.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_flow_node_cost(
        &self,
        flow: FlowId,
        node: NodeId,
        cost: f64,
    ) -> Result<Problem, ValidationError> {
        if flow.index() >= self.flows.len() {
            return Err(ValidationError::UnknownFlow { flow });
        }
        if node.index() >= self.nodes.len() {
            return Err(ValidationError::UnknownNode { node });
        }
        if !(cost.is_finite() && cost >= 0.0) {
            return Err(ValidationError::InvalidCost {
                coefficient: format!("F[{node}, {flow}]"),
                value: cost,
            });
        }
        let mut p = self.clone();
        let entry = p.flows[flow.index()]
            .node_costs
            .iter_mut()
            .find(|(n, _)| *n == node)
            .ok_or(ValidationError::NoSuchCostEntry {
                coefficient: format!("F[{node}, {flow}]"),
            })?;
        entry.1 = cost;
        Ok(p)
    }

    /// Returns a copy with the joint rate–reliability extension `spec`
    /// attached (replacing any previous one).
    ///
    /// # Errors
    ///
    /// [`ValidationError::ReliabilityShape`] when a vector does not have
    /// one entry per flow / per link, [`ValidationError::InvalidRhoBounds`]
    /// / [`ValidationError::InvalidLossRate`] /
    /// [`ValidationError::InvalidRedundancy`] on out-of-range values.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_reliability(&self, spec: ReliabilitySpec) -> Result<Problem, ValidationError> {
        validate_reliability(&spec, self.flows.len(), self.links.len())?;
        let mut p = self.clone();
        p.reliability = Some(spec);
        Ok(p)
    }

    /// Returns a copy with the reliability extension removed: the
    /// rate-only baseline of the integrated-allocation experiment.
    pub fn without_reliability(&self) -> Problem {
        let mut p = self.clone();
        p.reliability = None;
        p
    }

    /// Returns a copy with `link`'s loss rate replaced.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ReliabilityDisabled`] when no spec is attached,
    /// [`ValidationError::UnknownLink`] on an out-of-range id,
    /// [`ValidationError::InvalidLossRate`] unless `0 <= loss < 1` and
    /// finite.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_link_loss(&self, link: LinkId, loss: f64) -> Result<Problem, ValidationError> {
        if link.index() >= self.links.len() {
            return Err(ValidationError::UnknownLink { link });
        }
        if !(loss.is_finite() && (0.0..1.0).contains(&loss)) {
            return Err(ValidationError::InvalidLossRate { link, loss });
        }
        let mut p = self.clone();
        let spec = p.reliability.as_mut().ok_or(ValidationError::ReliabilityDisabled)?;
        spec.link_loss[link.index()] = loss;
        Ok(p)
    }

    /// Returns a copy with `flow`'s reliability bounds replaced.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ReliabilityDisabled`] when no spec is attached,
    /// [`ValidationError::UnknownFlow`] on an out-of-range id,
    /// [`ValidationError::InvalidRhoBounds`] on invalid bounds.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_rho_bounds(
        &self,
        flow: FlowId,
        bounds: RhoBounds,
    ) -> Result<Problem, ValidationError> {
        if flow.index() >= self.flows.len() {
            return Err(ValidationError::UnknownFlow { flow });
        }
        RhoBounds::new(bounds.min, bounds.max)?;
        let mut p = self.clone();
        let spec = p.reliability.as_mut().ok_or(ValidationError::ReliabilityDisabled)?;
        spec.rho_bounds[flow.index()] = bounds;
        Ok(p)
    }

    /// Returns a copy with a new flow (and its consumer classes) appended.
    /// Existing ids are untouched; the new flow takes the next flow id and
    /// the classes take the next class ids, in the given order. The `flow`
    /// field of each [`ClassSpec`] is overwritten with the new flow's id.
    ///
    /// The whole problem is re-validated, so the returned instance upholds
    /// every builder invariant (costs reference existing nodes/links, each
    /// class attaches to a node the flow reaches, …).
    ///
    /// # Errors
    ///
    /// Any [`ValidationError`] a [`ProblemBuilder`] would report.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn with_added_flow(
        &self,
        flow: FlowSpec,
        classes: Vec<ClassSpec>,
    ) -> Result<Problem, ValidationError> {
        let mut b = ProblemBuilder {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            flows: self.flows.clone(),
            classes: self.classes.clone(),
            reliability: self.reliability.clone(),
        };
        let fid = FlowId::new(b.flows.len() as u32);
        b.flows.push(flow);
        if let Some(spec) = &mut b.reliability {
            // The grown flow dimension keeps the spec's shape invariant;
            // the new flow demands full reliability until edited.
            spec.rho_bounds.push(RhoBounds::default());
        }
        for mut class in classes {
            class.flow = fid;
            b.classes.push(class);
        }
        b.build()
    }

    /// Stage-two path pruning (§2.4): zero the `F_{b,i}` coefficient for
    /// every (flow, node) pair at which *all* of the flow's classes have zero
    /// population in `populations` (indexed by class id). Nodes hosting no
    /// class of the flow are also pruned. Returns the pruned problem.
    pub fn prune_unused_paths(&self, populations: &[f64]) -> Problem {
        assert_eq!(
            populations.len(),
            self.classes.len(),
            "population vector length must equal the number of classes"
        );
        let mut p = self.clone();
        for flow in self.flow_ids() {
            let node_costs = &mut p.flows[flow.index()].node_costs;
            for (node, cost) in node_costs.iter_mut() {
                if *node == self.flows[flow.index()].source {
                    continue; // the source always carries the flow
                }
                let any_live = self
                    .classes_of_flow(flow)
                    .iter()
                    .any(|&c| self.classes[c.index()].node == *node && populations[c.index()] > 0.0);
                if !any_live {
                    *cost = 0.0;
                }
            }
        }
        p
    }
}

/// Incremental, validating constructor for [`Problem`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone, Default)]
pub struct ProblemBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    flows: Vec<FlowSpec>,
    classes: Vec<ClassSpec>,
    reliability: Option<ReliabilitySpec>,
}

impl ProblemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given capacity; returns its id.
    pub fn add_node(&mut self, capacity: f64) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeSpec { capacity, label: None });
        id
    }

    /// Adds a labelled node (labels like `"S0"` aid debugging and reports).
    pub fn add_labeled_node(&mut self, capacity: f64, label: impl Into<String>) -> NodeId {
        let id = self.add_node(capacity);
        self.nodes[id.index()].label = Some(label.into());
        id
    }

    /// Adds a link with the given capacity and no endpoints; returns its id.
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(LinkSpec { capacity, from: None, to: None });
        id
    }

    /// Adds a link between two nodes; returns its id.
    pub fn add_link_between(&mut self, capacity: f64, from: NodeId, to: NodeId) -> LinkId {
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(LinkSpec { capacity, from: Some(from), to: Some(to) });
        id
    }

    /// Adds a flow injected at `source` with the given rate bounds; returns
    /// its id. Costs start empty; add them with [`Self::set_node_cost`] and
    /// [`Self::set_link_cost`].
    pub fn add_flow(&mut self, source: NodeId, bounds: RateBounds) -> FlowId {
        let id = FlowId::new(self.flows.len() as u32);
        self.flows.push(FlowSpec { source, bounds, link_costs: Vec::new(), node_costs: Vec::new() });
        id
    }

    /// Declares that `flow` reaches `node` at flow-node cost `F_{b,i}`.
    /// Overwrites a previous entry for the same pair.
    pub fn set_node_cost(&mut self, flow: FlowId, node: NodeId, cost: f64) -> &mut Self {
        let costs = &mut self.flows[flow.index()].node_costs;
        if let Some(entry) = costs.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = cost;
        } else {
            costs.push((node, cost));
        }
        self
    }

    /// Declares that `flow` traverses `link` at link cost `L_{l,i}`.
    /// Overwrites a previous entry for the same pair.
    pub fn set_link_cost(&mut self, flow: FlowId, link: LinkId, cost: f64) -> &mut Self {
        let costs = &mut self.flows[flow.index()].link_costs;
        if let Some(entry) = costs.iter_mut().find(|(l, _)| *l == link) {
            entry.1 = cost;
        } else {
            costs.push((link, cost));
        }
        self
    }

    /// Attaches the joint rate–reliability extension. Validated against
    /// the *final* flow/link counts by [`Self::build`], so it may be set
    /// before or after the flows and links it describes.
    pub fn set_reliability(&mut self, spec: ReliabilitySpec) -> &mut Self {
        self.reliability = Some(spec);
        self
    }

    /// Adds a consumer class; returns its id.
    pub fn add_class(
        &mut self,
        flow: FlowId,
        node: NodeId,
        max_population: u32,
        utility: Utility,
        consumer_cost: f64,
    ) -> ClassId {
        let id = ClassId::new(self.classes.len() as u32);
        self.classes.push(ClassSpec { flow, node, max_population, utility, consumer_cost });
        id
    }

    /// Validates and finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] encountered: dangling ids,
    /// non-positive capacities, invalid rate bounds, negative costs,
    /// non-positive consumer costs, classes attached to unreached nodes, or
    /// duplicate cost entries.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn build(self) -> Result<Problem, ValidationError> {
        let n_nodes = self.nodes.len();
        let n_links = self.links.len();
        let n_flows = self.flows.len();

        for (i, node) in self.nodes.iter().enumerate() {
            if !(node.capacity.is_finite() && node.capacity > 0.0) {
                return Err(ValidationError::NonPositiveCapacity {
                    resource: NodeId::new(i as u32).to_string(),
                    capacity: node.capacity,
                });
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            if !(link.capacity.is_finite() && link.capacity > 0.0) {
                return Err(ValidationError::NonPositiveCapacity {
                    resource: LinkId::new(i as u32).to_string(),
                    capacity: link.capacity,
                });
            }
            for endpoint in [link.from, link.to].into_iter().flatten() {
                if endpoint.index() >= n_nodes {
                    return Err(ValidationError::UnknownNode { node: endpoint });
                }
            }
        }
        for (i, flow) in self.flows.iter().enumerate() {
            let fid = FlowId::new(i as u32);
            if flow.source.index() >= n_nodes {
                return Err(ValidationError::UnknownNode { node: flow.source });
            }
            // Re-validate bounds (they may have been constructed directly).
            RateBounds::new(flow.bounds.min, flow.bounds.max)?;
            let mut seen_nodes = Vec::new();
            for &(node, cost) in &flow.node_costs {
                if node.index() >= n_nodes {
                    return Err(ValidationError::UnknownNode { node });
                }
                if !(cost.is_finite() && cost >= 0.0) {
                    return Err(ValidationError::InvalidCost {
                        coefficient: format!("F[{node}, {fid}]"),
                        value: cost,
                    });
                }
                if seen_nodes.contains(&node) {
                    return Err(ValidationError::DuplicateCost {
                        coefficient: format!("F[{node}, {fid}]"),
                    });
                }
                seen_nodes.push(node);
            }
            let mut seen_links = Vec::new();
            for &(link, cost) in &flow.link_costs {
                if link.index() >= n_links {
                    return Err(ValidationError::UnknownLink { link });
                }
                if !(cost.is_finite() && cost >= 0.0) {
                    return Err(ValidationError::InvalidCost {
                        coefficient: format!("L[{link}, {fid}]"),
                        value: cost,
                    });
                }
                if seen_links.contains(&link) {
                    return Err(ValidationError::DuplicateCost {
                        coefficient: format!("L[{link}, {fid}]"),
                    });
                }
                seen_links.push(link);
            }
        }
        for (i, class) in self.classes.iter().enumerate() {
            let cid = ClassId::new(i as u32);
            if class.flow.index() >= n_flows {
                return Err(ValidationError::UnknownFlow { flow: class.flow });
            }
            if class.node.index() >= n_nodes {
                return Err(ValidationError::UnknownNode { node: class.node });
            }
            if !(class.consumer_cost.is_finite() && class.consumer_cost > 0.0) {
                return Err(ValidationError::NonPositiveConsumerCost {
                    class: cid,
                    cost: class.consumer_cost,
                });
            }
            let reached = self.flows[class.flow.index()]
                .node_costs
                .iter()
                .any(|(n, _)| *n == class.node);
            if !reached {
                return Err(ValidationError::ClassNodeNotReached {
                    class: cid,
                    flow: class.flow,
                    node: class.node,
                });
            }
        }

        if let Some(spec) = &self.reliability {
            validate_reliability(spec, n_flows, n_links)?;
        }

        // Build derived indices.
        let mut classes_of_flow = vec![Vec::new(); n_flows];
        let mut classes_at_node = vec![Vec::new(); n_nodes];
        for (i, class) in self.classes.iter().enumerate() {
            let cid = ClassId::new(i as u32);
            classes_of_flow[class.flow.index()].push(cid);
            classes_at_node[class.node.index()].push(cid);
        }
        let mut flows_at_node = vec![Vec::new(); n_nodes];
        let mut flows_on_link = vec![Vec::new(); n_links];
        for (i, flow) in self.flows.iter().enumerate() {
            let fid = FlowId::new(i as u32);
            for &(node, _) in &flow.node_costs {
                flows_at_node[node.index()].push(fid);
            }
            for &(link, _) in &flow.link_costs {
                flows_on_link[link.index()].push(fid);
            }
        }

        Ok(Problem {
            nodes: self.nodes,
            links: self.links,
            flows: self.flows,
            classes: self.classes,
            reliability: self.reliability,
            classes_of_flow,
            classes_at_node,
            flows_at_node,
            flows_on_link,
        })
    }
}

/// Checks a [`ReliabilitySpec`] against the problem shape: one bounds
/// entry per flow, one loss entry per link, every value in range.
fn validate_reliability(
    spec: &ReliabilitySpec,
    n_flows: usize,
    n_links: usize,
) -> Result<(), ValidationError> {
    if spec.rho_bounds.len() != n_flows {
        return Err(ValidationError::ReliabilityShape {
            what: "rho_bounds".to_string(),
            expected: n_flows,
            actual: spec.rho_bounds.len(),
        });
    }
    if spec.link_loss.len() != n_links {
        return Err(ValidationError::ReliabilityShape {
            what: "link_loss".to_string(),
            expected: n_links,
            actual: spec.link_loss.len(),
        });
    }
    for bounds in &spec.rho_bounds {
        RhoBounds::new(bounds.min, bounds.max)?;
    }
    for (i, &loss) in spec.link_loss.iter().enumerate() {
        if !(loss.is_finite() && (0.0..1.0).contains(&loss)) {
            return Err(ValidationError::InvalidLossRate { link: LinkId::new(i as u32), loss });
        }
    }
    if !(spec.redundancy.is_finite() && spec.redundancy >= 0.0) {
        return Err(ValidationError::InvalidRedundancy { value: spec.redundancy });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProblemBuilder {
        let mut b = ProblemBuilder::new();
        let src = b.add_labeled_node(1e6, "src");
        let sink = b.add_labeled_node(9e5, "S0");
        let f = b.add_flow(src, RateBounds::new(10.0, 1000.0).unwrap());
        b.set_node_cost(f, sink, 3.0);
        b.add_class(f, sink, 400, Utility::log(20.0), 19.0);
        b
    }

    #[test]
    fn builds_and_exposes_indices() {
        let p = tiny().build().unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.num_flows(), 1);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.num_links(), 0);
        let f0 = FlowId::new(0);
        let sink = NodeId::new(1);
        assert_eq!(p.classes_of_flow(f0), &[ClassId::new(0)]);
        assert_eq!(p.classes_at_node(sink), &[ClassId::new(0)]);
        assert_eq!(p.flows_at_node(sink), &[f0]);
        assert!(p.flows_at_node(NodeId::new(0)).is_empty());
        assert_eq!(p.flow_node_cost(sink, f0), 3.0);
        assert_eq!(p.flow_node_cost(NodeId::new(0), f0), 0.0);
        assert_eq!(p.node(sink).label.as_deref(), Some("S0"));
        assert_eq!(p.total_demand(), 400);
        let attached: Vec<_> = p.classes_of_flow_at_node(f0, sink).collect();
        assert_eq!(attached, vec![ClassId::new(0)]);
    }

    #[test]
    fn rate_bounds_validation() {
        assert!(RateBounds::new(10.0, 1000.0).is_ok());
        assert!(RateBounds::new(-1.0, 5.0).is_err());
        assert!(RateBounds::new(5.0, 1.0).is_err());
        assert!(RateBounds::new(0.0, f64::INFINITY).is_err());
        let b = RateBounds::new(10.0, 100.0).unwrap();
        assert_eq!(b.clamp(5.0), 10.0);
        assert_eq!(b.clamp(500.0), 100.0);
        assert_eq!(b.clamp(50.0), 50.0);
        assert!(b.contains(10.0, 0.0));
        assert!(!b.contains(9.0, 0.5));
        assert_eq!(b.width(), 90.0);
    }

    #[test]
    fn rejects_dangling_class_flow() {
        let mut b = tiny();
        b.add_class(FlowId::new(7), NodeId::new(1), 1, Utility::log(1.0), 19.0);
        assert!(matches!(b.build().unwrap_err(), ValidationError::UnknownFlow { .. }));
    }

    #[test]
    fn rejects_dangling_class_node() {
        let mut b = tiny();
        b.add_class(FlowId::new(0), NodeId::new(9), 1, Utility::log(1.0), 19.0);
        assert!(matches!(b.build().unwrap_err(), ValidationError::UnknownNode { .. }));
    }

    #[test]
    fn rejects_class_on_unreached_node() {
        let mut b = tiny();
        let lonely = b.add_node(1e5);
        b.add_class(FlowId::new(0), lonely, 1, Utility::log(1.0), 19.0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ValidationError::ClassNodeNotReached { .. }));
        assert!(err.to_string().contains("does not reach"));
    }

    #[test]
    fn rejects_zero_capacity() {
        let mut b = ProblemBuilder::new();
        b.add_node(0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::NonPositiveCapacity { .. }
        ));
    }

    #[test]
    fn rejects_zero_capacity_link() {
        let mut b = tiny();
        b.add_link(0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::NonPositiveCapacity { .. }
        ));
    }

    #[test]
    fn rejects_negative_cost() {
        let mut b = tiny();
        let sink = NodeId::new(1);
        b.set_node_cost(FlowId::new(0), sink, -1.0);
        assert!(matches!(b.build().unwrap_err(), ValidationError::InvalidCost { .. }));
    }

    #[test]
    fn rejects_zero_consumer_cost() {
        let mut b = tiny();
        b.add_class(FlowId::new(0), NodeId::new(1), 1, Utility::log(1.0), 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::NonPositiveConsumerCost { .. }
        ));
    }

    #[test]
    fn rejects_dangling_link_endpoint() {
        let mut b = ProblemBuilder::new();
        let a = b.add_node(1.0);
        b.add_link_between(1.0, a, NodeId::new(42));
        assert!(matches!(b.build().unwrap_err(), ValidationError::UnknownNode { .. }));
    }

    #[test]
    fn set_cost_overwrites_instead_of_duplicating() {
        let mut b = tiny();
        b.set_node_cost(FlowId::new(0), NodeId::new(1), 5.0);
        let p = b.build().unwrap();
        assert_eq!(p.flow_node_cost(NodeId::new(1), FlowId::new(0)), 5.0);
        assert_eq!(p.nodes_of_flow(FlowId::new(0)).len(), 1);
    }

    #[test]
    fn link_costs_round_trip() {
        let mut b = tiny();
        let l = b.add_link(1e6);
        b.set_link_cost(FlowId::new(0), l, 2.0);
        let p = b.build().unwrap();
        assert_eq!(p.link_cost(l, FlowId::new(0)), 2.0);
        assert_eq!(p.flows_on_link(l), &[FlowId::new(0)]);
        assert_eq!(p.links_of_flow(FlowId::new(0)), &[(l, 2.0)]);
        assert_eq!(p.link(l).capacity, 1e6);
    }

    #[test]
    fn with_utilities_swaps_shape_preserving_rank() {
        let p = tiny().build().unwrap();
        let q = p.with_utilities(|rank| Utility::power(rank, 0.5));
        assert_eq!(q.class(ClassId::new(0)).utility, Utility::power(20.0, 0.5));
        // Original untouched.
        assert_eq!(p.class(ClassId::new(0)).utility, Utility::log(20.0));
    }

    #[test]
    fn without_flow_collapses_bounds_and_populations() {
        let p = tiny().build().unwrap();
        let q = p.without_flow(FlowId::new(0));
        assert_eq!(q.flow(FlowId::new(0)).bounds, RateBounds { min: 0.0, max: 0.0 });
        assert_eq!(q.class(ClassId::new(0)).max_population, 0);
        assert_eq!(q.flow_node_cost(NodeId::new(1), FlowId::new(0)), 0.0);
    }

    #[test]
    fn with_node_capacity_replaces_and_validates() {
        let p = tiny().build().unwrap();
        let q = p.with_node_capacity(NodeId::new(1), 5e5).unwrap();
        assert_eq!(q.node(NodeId::new(1)).capacity, 5e5);
        assert_eq!(p.node(NodeId::new(1)).capacity, 9e5); // original intact
        assert!(p.with_node_capacity(NodeId::new(1), 0.0).is_err());
        assert!(p.with_node_capacity(NodeId::new(1), f64::NAN).is_err());
    }

    #[test]
    fn with_max_population_replaces() {
        let p = tiny().build().unwrap();
        let q = p.with_max_population(ClassId::new(0), 7);
        assert_eq!(q.class(ClassId::new(0)).max_population, 7);
        assert_eq!(p.class(ClassId::new(0)).max_population, 400);
    }

    #[test]
    fn with_rate_bounds_replaces_and_validates() {
        let p = tiny().build().unwrap();
        let nb = RateBounds { min: 1.0, max: 50.0 };
        let q = p.with_rate_bounds(FlowId::new(0), nb).unwrap();
        assert_eq!(q.flow(FlowId::new(0)).bounds, nb);
        assert!(p
            .with_rate_bounds(FlowId::new(0), RateBounds { min: 9.0, max: 2.0 })
            .is_err());
    }

    #[test]
    fn prune_zeroes_dead_branch_costs() {
        let mut b = tiny();
        let extra = b.add_node(9e5);
        let f0 = FlowId::new(0);
        b.set_node_cost(f0, extra, 3.0);
        b.add_class(f0, extra, 100, Utility::log(5.0), 19.0);
        let p = b.build().unwrap();
        // Class 0 (node1) live, class 1 (extra) empty.
        let pruned = p.prune_unused_paths(&[10.0, 0.0]);
        assert_eq!(pruned.flow_node_cost(NodeId::new(1), f0), 3.0);
        assert_eq!(pruned.flow_node_cost(extra, f0), 0.0);
    }

    #[test]
    #[should_panic(expected = "population vector length")]
    fn prune_checks_population_length() {
        let p = tiny().build().unwrap();
        let _ = p.prune_unused_paths(&[]);
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError::UnknownFlow { flow: FlowId::new(3) };
        assert_eq!(e.to_string(), "unknown flow flow3");
        let e = ValidationError::InvalidRateBounds { min: 5.0, max: 1.0 };
        assert!(e.to_string().contains("[5, 1]"));
        let e = ValidationError::InvalidRhoBounds { min: 0.0, max: 0.5 };
        assert!(e.to_string().contains("reliability bounds"));
        let e = ValidationError::InvalidLossRate { link: LinkId::new(2), loss: 1.5 };
        assert!(e.to_string().contains("loss rate"));
        let e = ValidationError::ReliabilityDisabled;
        assert!(e.to_string().contains("no reliability spec"));
    }

    #[test]
    fn rho_bounds_validation() {
        assert!(RhoBounds::new(0.5, 0.999).is_ok());
        assert!(RhoBounds::new(0.0, 0.5).is_err(), "min must be strictly positive");
        assert!(RhoBounds::new(0.9, 0.5).is_err());
        assert!(RhoBounds::new(0.5, 1.5).is_err());
        assert!(RhoBounds::new(f64::NAN, 1.0).is_err());
        let b = RhoBounds::new(0.5, 0.9).unwrap();
        assert_eq!(b.clamp(0.1), 0.5);
        assert_eq!(b.clamp(0.95), 0.9);
        assert_eq!(b.clamp(0.7), 0.7);
        assert!(b.contains(0.5, 0.0));
        assert!(!b.contains(0.4, 0.05));
        assert_eq!(RhoBounds::fixed(0.8).unwrap(), RhoBounds { min: 0.8, max: 0.8 });
        assert_eq!(RhoBounds::default(), RhoBounds { min: 1.0, max: 1.0 });
    }

    fn lossy() -> Problem {
        let mut b = tiny();
        let l = b.add_link(1e6);
        b.set_link_cost(FlowId::new(0), l, 2.0);
        b.set_reliability(ReliabilitySpec::uniform(
            1,
            1,
            RhoBounds::new(0.5, 0.999).unwrap(),
            0.1,
            1.0,
        ));
        b.build().unwrap()
    }

    #[test]
    fn builder_attaches_reliability_spec() {
        let p = lossy();
        let spec = p.reliability().expect("spec attached");
        assert_eq!(spec.rho_bounds.len(), 1);
        assert_eq!(spec.link_loss, vec![0.1]);
        assert_eq!(spec.redundancy, 1.0);
        assert_eq!(p.link_loss(LinkId::new(0)), 0.1);
        assert_eq!(p.link_loss(LinkId::new(9)), 0.0, "out of range reads as lossless");
        assert_eq!(p.rho_bounds(FlowId::new(0)), Some(RhoBounds::new(0.5, 0.999).unwrap()));
        assert_eq!(p.rho_bounds(FlowId::new(9)), None);
    }

    #[test]
    fn problem_without_spec_reads_as_lossless() {
        let p = tiny().build().unwrap();
        assert!(p.reliability().is_none());
        assert_eq!(p.link_loss(LinkId::new(0)), 0.0);
        assert_eq!(p.rho_bounds(FlowId::new(0)), None);
    }

    #[test]
    fn build_rejects_misshapen_spec() {
        let mut b = tiny();
        b.set_reliability(ReliabilitySpec::uniform(3, 0, RhoBounds::default(), 0.0, 1.0));
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::ReliabilityShape { .. }
        ));
    }

    #[test]
    fn build_rejects_invalid_loss_and_redundancy() {
        let mut b = tiny();
        let l = b.add_link(1e6);
        b.set_link_cost(FlowId::new(0), l, 2.0);
        b.set_reliability(ReliabilitySpec::uniform(1, 1, RhoBounds::default(), 1.0, 1.0));
        assert!(matches!(
            b.clone().build().unwrap_err(),
            ValidationError::InvalidLossRate { .. }
        ));
        b.set_reliability(ReliabilitySpec::uniform(1, 1, RhoBounds::default(), 0.1, -1.0));
        assert!(matches!(
            b.build().unwrap_err(),
            ValidationError::InvalidRedundancy { .. }
        ));
    }

    #[test]
    fn with_reliability_attaches_and_strips() {
        let p = tiny().build().unwrap();
        let spec = ReliabilitySpec::uniform(1, 0, RhoBounds::new(0.6, 0.9).unwrap(), 0.0, 2.0);
        let q = p.with_reliability(spec.clone()).unwrap();
        assert_eq!(q.reliability(), Some(&spec));
        assert!(p.reliability().is_none(), "original untouched");
        assert!(q.without_reliability().reliability().is_none());
        let bad = ReliabilitySpec::uniform(5, 0, RhoBounds::default(), 0.0, 1.0);
        assert!(p.with_reliability(bad).is_err());
    }

    #[test]
    fn with_link_loss_replaces_and_validates() {
        let p = lossy();
        let q = p.with_link_loss(LinkId::new(0), 0.25).unwrap();
        assert_eq!(q.link_loss(LinkId::new(0)), 0.25);
        assert_eq!(p.link_loss(LinkId::new(0)), 0.1, "original intact");
        assert!(p.with_link_loss(LinkId::new(9), 0.1).is_err());
        assert!(p.with_link_loss(LinkId::new(0), 1.0).is_err());
        assert!(p.with_link_loss(LinkId::new(0), -0.1).is_err());
        let plain = p.without_reliability();
        assert!(matches!(
            plain.with_link_loss(LinkId::new(0), 0.1).unwrap_err(),
            ValidationError::ReliabilityDisabled
        ));
    }

    #[test]
    fn with_rho_bounds_replaces_and_validates() {
        let p = lossy();
        let nb = RhoBounds::new(0.7, 0.8).unwrap();
        let q = p.with_rho_bounds(FlowId::new(0), nb).unwrap();
        assert_eq!(q.rho_bounds(FlowId::new(0)), Some(nb));
        assert!(p.with_rho_bounds(FlowId::new(9), nb).is_err());
        assert!(p.with_rho_bounds(FlowId::new(0), RhoBounds { min: 0.9, max: 0.1 }).is_err());
        let plain = tiny().build().unwrap();
        assert!(matches!(
            plain.with_rho_bounds(FlowId::new(0), nb).unwrap_err(),
            ValidationError::ReliabilityDisabled
        ));
    }

    #[test]
    fn with_added_flow_extends_rho_bounds() {
        let p = lossy();
        let src = NodeId::new(0);
        let sink = NodeId::new(1);
        let flow = FlowSpec {
            source: src,
            bounds: RateBounds::new(1.0, 100.0).unwrap(),
            link_costs: vec![],
            node_costs: vec![(sink, 1.0)],
        };
        let q = p.with_added_flow(flow, vec![]).unwrap();
        let spec = q.reliability().expect("spec survives the growth");
        assert_eq!(spec.rho_bounds.len(), 2);
        assert_eq!(spec.rho_bounds[1], RhoBounds::default());
    }

    #[test]
    fn reliability_spec_serde_round_trip_and_default() {
        let p = lossy();
        let json = serde_json::to_string(&p).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // A pre-extension problem (no `reliability` key) still loads.
        let plain = tiny().build().unwrap();
        let json = serde_json::to_string(&plain).unwrap().replace(",\"reliability\":null", "");
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);
    }
}
