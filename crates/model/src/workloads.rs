//! The paper's test workloads (§4.1) and generators for synthetic ones.
//!
//! The base workload is Table 1 of the paper: 6 flows, 3 consumer nodes
//! (S0–S2), 20 consumer classes in identical pairs, with the Gryphon-measured
//! resource model `F = 3`, `G = 19`, `c_b = 9·10⁵` and rate bounds
//! `[10, 1000]`. Scaling follows §4.3: either replicate the consumer-node
//! set (same flows reach more consumers) or replicate the whole system
//! (more flows *and* more consumer nodes).

use crate::ids::NodeId;
use crate::problem::{Problem, ProblemBuilder, RateBounds, ReliabilitySpec, RhoBounds};
use crate::utility::{Utility, UtilityShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Flow-node cost `F_{b,i}` measured on Gryphon (§4.1).
pub const GRYPHON_FLOW_NODE_COST: f64 = 3.0;
/// Consumer-node cost `G_{b,j}` measured on Gryphon (§4.1).
pub const GRYPHON_CONSUMER_COST: f64 = 19.0;
/// Node capacity `c_b` used in all paper workloads (§4.1).
pub const GRYPHON_NODE_CAPACITY: f64 = 9e5;
/// Lower rate bound `r^min` shared by all paper flows (§4.1).
pub const PAPER_RATE_MIN: f64 = 10.0;
/// Upper rate bound `r^max` shared by all paper flows (§4.1).
pub const PAPER_RATE_MAX: f64 = 1000.0;

/// One row of Table 1: a *pair* of identical classes differing only in the
/// node they attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Flow index (0–5) within the base workload.
    pub flow: u32,
    /// The two consumer nodes (indices into {S0, S1, S2}) the pair attaches
    /// to.
    pub nodes: [u32; 2],
    /// `n^max` of each class in the pair.
    pub max_population: u32,
    /// Class rank (utility weight).
    pub rank: u32,
}

/// The ten rows of Table 1, in order; row `k` defines classes `2k`/`2k+1`.
pub const TABLE1: [Table1Row; 10] = [
    Table1Row { flow: 0, nodes: [0, 2], max_population: 400, rank: 20 },
    Table1Row { flow: 0, nodes: [0, 2], max_population: 800, rank: 5 },
    Table1Row { flow: 0, nodes: [0, 2], max_population: 2000, rank: 1 },
    Table1Row { flow: 1, nodes: [0, 1], max_population: 1000, rank: 15 },
    Table1Row { flow: 2, nodes: [1, 2], max_population: 1500, rank: 10 },
    Table1Row { flow: 3, nodes: [0, 2], max_population: 400, rank: 30 },
    Table1Row { flow: 3, nodes: [0, 2], max_population: 800, rank: 3 },
    Table1Row { flow: 3, nodes: [0, 2], max_population: 2000, rank: 2 },
    Table1Row { flow: 4, nodes: [0, 1], max_population: 1000, rank: 40 },
    Table1Row { flow: 5, nodes: [1, 2], max_population: 1500, rank: 100 },
];

/// Number of flows in the base workload.
pub const BASE_FLOWS: usize = 6;
/// Number of consumer nodes in the base workload.
pub const BASE_CNODES: usize = 3;

/// Builds the base workload of Table 1 with the paper's default
/// `rank · log(1+r)` utilities.
///
/// # Examples
///
/// ```
/// let p = lrgp_model::workloads::base_workload();
/// assert_eq!(p.num_flows(), 6);
/// assert_eq!(p.num_classes(), 20);
/// ```
pub fn base_workload() -> Problem {
    paper_workload(UtilityShape::Log, 1, 1)
}

/// Builds the base workload with an alternative utility shape (§4.5).
pub fn base_workload_with_shape(shape: UtilityShape) -> Problem {
    paper_workload(shape, 1, 1)
}

/// Builds a paper workload scaled per §4.3.
///
/// * `system_copies` — number of disjoint copies of the whole base system
///   (flows *and* consumer nodes). `2` gives "12 flows, 6 c-nodes".
/// * `cnode_copies` — number of copies of the consumer-node set *within*
///   each system copy, with flows held constant. `4` gives "6 flows,
///   12 c-nodes" when `system_copies` is 1. New consumer nodes have the same
///   characteristics (capacities, attached class pairs) as the originals.
///
/// Each flow gets its own source node (the paper's workloads have no link
/// bottlenecks, so topology reduces to "which consumer nodes does each flow
/// reach"; sources carry no cost entries).
///
/// # Panics
///
/// Panics if either multiplier is zero.
pub fn paper_workload(shape: UtilityShape, system_copies: usize, cnode_copies: usize) -> Problem {
    assert!(system_copies > 0, "system_copies must be positive");
    assert!(cnode_copies > 0, "cnode_copies must be positive");
    let mut b = ProblemBuilder::new();
    // lrgp-lint: allow(library-unwrap, reason = "paper constants are statically valid; a failure is a programming error")
    let bounds = RateBounds::new(PAPER_RATE_MIN, PAPER_RATE_MAX).expect("paper bounds valid");

    for sys in 0..system_copies {
        // Consumer nodes: cnode_copies replicas of {S0, S1, S2}.
        let mut cnodes = Vec::with_capacity(BASE_CNODES * cnode_copies);
        for copy in 0..cnode_copies {
            for s in 0..BASE_CNODES {
                let label = format!("sys{sys}/S{s}.{copy}");
                cnodes.push(b.add_labeled_node(GRYPHON_NODE_CAPACITY, label));
            }
        }
        // One source node per flow.
        let sources: Vec<NodeId> = (0..BASE_FLOWS)
            .map(|f| b.add_labeled_node(GRYPHON_NODE_CAPACITY, format!("sys{sys}/src{f}")))
            .collect();
        let flows: Vec<_> =
            sources.iter().map(|&src| b.add_flow(src, bounds)).collect();

        // Route each flow to every replica of the nodes its classes attach
        // to, then attach the classes.
        for row in &TABLE1 {
            let flow = flows[row.flow as usize];
            for copy in 0..cnode_copies {
                for &s in &row.nodes {
                    let node = cnodes[copy * BASE_CNODES + s as usize];
                    b.set_node_cost(flow, node, GRYPHON_FLOW_NODE_COST);
                    b.add_class(
                        flow,
                        node,
                        row.max_population,
                        shape.build(row.rank as f64),
                        GRYPHON_CONSUMER_COST,
                    );
                }
            }
        }
    }
    build_generated(b, "paper workload is structurally valid")
}

/// The six workloads of Table 2, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table2Workload {
    /// 6 flows, 3 c-nodes (the base workload).
    Base,
    /// 12 flows, 6 c-nodes (2 system copies).
    Flows12Cnodes6,
    /// 24 flows, 12 c-nodes (4 system copies).
    Flows24Cnodes12,
    /// 6 flows, 6 c-nodes (2 c-node copies).
    Flows6Cnodes6,
    /// 6 flows, 12 c-nodes (4 c-node copies).
    Flows6Cnodes12,
    /// 6 flows, 24 c-nodes (8 c-node copies).
    Flows6Cnodes24,
}

impl Table2Workload {
    /// All rows in the paper's order.
    pub const ALL: [Table2Workload; 6] = [
        Table2Workload::Base,
        Table2Workload::Flows12Cnodes6,
        Table2Workload::Flows24Cnodes12,
        Table2Workload::Flows6Cnodes6,
        Table2Workload::Flows6Cnodes12,
        Table2Workload::Flows6Cnodes24,
    ];

    /// `(system_copies, cnode_copies)` for [`paper_workload`].
    pub fn multipliers(self) -> (usize, usize) {
        match self {
            Table2Workload::Base => (1, 1),
            Table2Workload::Flows12Cnodes6 => (2, 1),
            Table2Workload::Flows24Cnodes12 => (4, 1),
            Table2Workload::Flows6Cnodes6 => (1, 2),
            Table2Workload::Flows6Cnodes12 => (1, 4),
            Table2Workload::Flows6Cnodes24 => (1, 8),
        }
    }

    /// Builds the workload with log utilities (as in Table 2).
    pub fn build(self) -> Problem {
        let (sys, cn) = self.multipliers();
        paper_workload(UtilityShape::Log, sys, cn)
    }

    /// The label used in the paper's Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Table2Workload::Base => "6 flows, 3 c-nodes",
            Table2Workload::Flows12Cnodes6 => "12 flows, 6 c-nodes",
            Table2Workload::Flows24Cnodes12 => "24 flows, 12 c-nodes",
            Table2Workload::Flows6Cnodes6 => "6 flows, 6 c-nodes",
            Table2Workload::Flows6Cnodes12 => "6 flows, 12 c-nodes",
            Table2Workload::Flows6Cnodes24 => "6 flows, 24 c-nodes",
        }
    }
}

/// Configuration for randomized workload generation.
///
/// Produces problems with the same *structure* as the paper's (flows with
/// dedicated sources, classes spread over consumer nodes, uniform resource
/// model) but randomized populations, ranks and attachment patterns. Useful
/// for property-based testing and robustness experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWorkload {
    /// Number of flows.
    pub flows: usize,
    /// Number of consumer nodes.
    pub consumer_nodes: usize,
    /// Classes per flow (each attached to a uniformly random c-node).
    pub classes_per_flow: usize,
    /// Inclusive range for `n_j^max`.
    pub max_population: (u32, u32),
    /// Inclusive range for the class rank (utility weight).
    pub rank: (f64, f64),
    /// Utility shape shared by all classes.
    pub shape: UtilityShape,
    /// When `true`, ignore [`Self::shape`] and cycle each flow's classes
    /// through [`UtilityShape::ALL`]. Flows with ≥ 2 classes then mix
    /// shapes, which denies `solve_rate` its closed forms and forces the
    /// bisection fallback — the compute-heavy regime the sharded engine is
    /// benchmarked under.
    pub mixed_shapes: bool,
    /// Node capacity `c_b`.
    pub node_capacity: f64,
    /// Flow-node cost `F_{b,i}`.
    pub flow_node_cost: f64,
    /// Consumer cost `G_{b,j}`.
    pub consumer_cost: f64,
    /// Rate bounds shared by all flows.
    pub rate_bounds: (f64, f64),
}

impl Default for RandomWorkload {
    fn default() -> Self {
        Self {
            flows: 4,
            consumer_nodes: 3,
            classes_per_flow: 3,
            max_population: (100, 2000),
            rank: (1.0, 100.0),
            shape: UtilityShape::Log,
            mixed_shapes: false,
            node_capacity: GRYPHON_NODE_CAPACITY,
            flow_node_cost: GRYPHON_FLOW_NODE_COST,
            consumer_cost: GRYPHON_CONSUMER_COST,
            rate_bounds: (PAPER_RATE_MIN, PAPER_RATE_MAX),
        }
    }
}

impl RandomWorkload {
    /// Generates a problem using the supplied RNG (deterministic for a
    /// seeded RNG).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no flows, no consumer
    /// nodes, no classes, or reversed ranges).
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Problem {
        assert!(self.flows > 0 && self.consumer_nodes > 0 && self.classes_per_flow > 0);
        assert!(self.max_population.0 <= self.max_population.1);
        assert!(self.rank.0 <= self.rank.1);
        let mut b = ProblemBuilder::new();
        let cnodes: Vec<NodeId> = (0..self.consumer_nodes)
            .map(|i| b.add_labeled_node(self.node_capacity, format!("C{i}")))
            .collect();
        let bounds = RateBounds::new(self.rate_bounds.0, self.rate_bounds.1)
            // lrgp-lint: allow(library-unwrap, reason = "workload specs assert their own bounds; invalid specs are caller bugs")
            .expect("random workload rate bounds must be valid");
        for f in 0..self.flows {
            let src = b.add_labeled_node(self.node_capacity, format!("src{f}"));
            let flow = b.add_flow(src, bounds);
            for c in 0..self.classes_per_flow {
                let node = cnodes[rng.gen_range(0..cnodes.len())];
                b.set_node_cost(flow, node, self.flow_node_cost);
                let n_max = rng.gen_range(self.max_population.0..=self.max_population.1);
                let rank = rng.gen_range(self.rank.0..=self.rank.1);
                let shape = if self.mixed_shapes {
                    UtilityShape::ALL[c % UtilityShape::ALL.len()]
                } else {
                    self.shape
                };
                b.add_class(flow, node, n_max, shape.build(rank), self.consumer_cost);
            }
        }
        build_generated(b, "random workload is structurally valid")
    }
}

/// Rate bounds shared by the synthetic (non-paper) generators.
fn generator_rate_bounds() -> RateBounds {
    // lrgp-lint: allow(library-unwrap, reason = "literal bounds are statically valid")
    RateBounds::new(1.0, 10_000.0).expect("valid bounds")
}

/// Finishes a generator-assembled builder. Generators construct problems
/// that are structurally valid by construction, so a build failure is a
/// programming error in the generator, not caller input.
fn build_generated(b: ProblemBuilder, what: &str) -> Problem {
    // lrgp-lint: allow(library-unwrap, reason = "generator-built problems are structurally valid by construction")
    b.build().expect(what)
}

/// A workload with a *link* bottleneck, exercising the Low–Lapsley link
/// pricing path that the paper's node-focused workloads deliberately avoid
/// (§4.1, footnote 3).
///
/// Two flows share one link of capacity `link_capacity` (unit link cost);
/// each flow has one class with ample node capacity, so the link is the only
/// binding constraint. With log utilities the optimum splits the link in
/// proportion to `n_j · rank_j` (weighted proportional fairness).
pub fn link_bottleneck_workload(link_capacity: f64) -> Problem {
    let mut b = ProblemBuilder::new();
    let src0 = b.add_labeled_node(1e9, "src0");
    let src1 = b.add_labeled_node(1e9, "src1");
    let sink = b.add_labeled_node(1e9, "sink");
    let link = b.add_link_between(link_capacity, src0, sink);
    let bounds = generator_rate_bounds();
    let f0 = b.add_flow(src0, bounds);
    let f1 = b.add_flow(src1, bounds);
    for f in [f0, f1] {
        b.set_link_cost(f, link, 1.0);
        b.set_node_cost(f, sink, 0.001);
    }
    b.add_class(f0, sink, 10, Utility::log(30.0), 0.001);
    b.add_class(f1, sink, 10, Utility::log(10.0), 0.001);
    build_generated(b, "link bottleneck workload is structurally valid")
}

/// Reliability bounds used by the lossy workload generators:
/// `ρ ∈ [0.5, 0.999]`, wide enough that the joint engine has a real choice
/// between cheap-but-lossy and expensive-but-reliable delivery.
pub const GENERATOR_RHO_BOUNDS: RhoBounds = RhoBounds { min: 0.5, max: 0.999 };

/// [`link_bottleneck_workload`] with a [`ReliabilitySpec`] attached: the
/// shared link drops a fraction `loss` of traffic, both flows carry the
/// generator's default ρ bounds, and redundancy factor 1 couples ρ back
/// into link usage. The smallest workload on which the joint
/// rate–reliability engine has something to decide.
///
/// # Panics
///
/// Panics if `loss` lies outside `[0, 1)`.
pub fn lossy_link_bottleneck_workload(link_capacity: f64, loss: f64) -> Problem {
    let p = link_bottleneck_workload(link_capacity);
    let spec =
        ReliabilitySpec::uniform(p.num_flows(), p.num_links(), GENERATOR_RHO_BOUNDS, loss, 1.0);
    // lrgp-lint: allow(library-unwrap, reason = "generator-built problems are structurally valid by construction")
    p.with_reliability(spec).expect("lossy bottleneck spec is shape-correct by construction")
}

/// A multi-link lossy workload: `pairs` disjoint copies of the
/// link-bottleneck topology, each link with its *own* loss rate drawn
/// deterministically from `seed` (uniform in `[0, 0.3)`), and per-flow
/// class ranks drawn from `[5, 50]`. The per-link mix of clean and lossy
/// links is what the integrated-allocation experiment and the differential
/// harness run against: flows on clean links should hold high ρ, flows on
/// lossy links should trade ρ away as redundancy gets expensive.
///
/// # Panics
///
/// Panics if `pairs` is zero.
pub fn mixed_loss_workload(pairs: usize, link_capacity: f64, seed: u64) -> Problem {
    assert!(pairs > 0, "pairs must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProblemBuilder::new();
    let bounds = generator_rate_bounds();
    let mut link_loss = Vec::with_capacity(pairs);
    let mut rho_bounds = Vec::with_capacity(2 * pairs);
    for k in 0..pairs {
        let src0 = b.add_labeled_node(1e9, format!("pair{k}/src0"));
        let src1 = b.add_labeled_node(1e9, format!("pair{k}/src1"));
        let sink = b.add_labeled_node(1e9, format!("pair{k}/sink"));
        let link = b.add_link_between(link_capacity, src0, sink);
        let f0 = b.add_flow(src0, bounds);
        let f1 = b.add_flow(src1, bounds);
        for f in [f0, f1] {
            b.set_link_cost(f, link, 1.0);
            b.set_node_cost(f, sink, 0.001);
            b.add_class(f, sink, 10, Utility::log(rng.gen_range(5.0..=50.0)), 0.001);
            rho_bounds.push(GENERATOR_RHO_BOUNDS);
        }
        link_loss.push(rng.gen_range(0.0..0.3));
    }
    b.set_reliability(ReliabilitySpec { rho_bounds, link_loss, redundancy: 1.0 });
    build_generated(b, "mixed loss workload is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, FlowId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_workload_matches_table1() {
        let p = base_workload();
        assert_eq!(p.num_flows(), 6);
        assert_eq!(p.num_classes(), 20);
        // 3 c-nodes + 6 sources.
        assert_eq!(p.num_nodes(), 9);
        assert_eq!(p.num_links(), 0);
        // Spot-check the highest-rank pair (row 9 → classes 18, 19).
        let c18 = p.class(ClassId::new(18));
        assert_eq!(c18.flow, FlowId::new(5));
        assert_eq!(c18.max_population, 1500);
        assert_eq!(c18.utility, Utility::log(100.0));
        assert_eq!(c18.consumer_cost, GRYPHON_CONSUMER_COST);
        // Total demand: 2·(400+800+2000+1000+1500+400+800+2000+1000+1500)
        assert_eq!(p.total_demand(), 2 * 11_400);
    }

    #[test]
    fn base_workload_class_pairs_differ_only_in_node() {
        let p = base_workload();
        for k in 0..10 {
            let a = p.class(ClassId::new(2 * k));
            let b = p.class(ClassId::new(2 * k + 1));
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.max_population, b.max_population);
            assert_eq!(a.utility, b.utility);
            assert_ne!(a.node, b.node);
        }
    }

    #[test]
    fn flows_routed_only_where_classes_present() {
        let p = base_workload();
        for flow in p.flow_ids() {
            let reached: Vec<_> = p.nodes_of_flow(flow).iter().map(|(n, _)| *n).collect();
            for &node in &reached {
                assert!(
                    p.classes_of_flow_at_node(flow, node).next().is_some(),
                    "{flow} reaches {node} without classes there"
                );
            }
            // Every class node is reached.
            for &c in p.classes_of_flow(flow) {
                assert!(reached.contains(&p.class(c).node));
            }
        }
    }

    #[test]
    fn node_capacities_and_bounds_match_paper() {
        let p = base_workload();
        for n in p.node_ids() {
            assert_eq!(p.node(n).capacity, GRYPHON_NODE_CAPACITY);
        }
        for f in p.flow_ids() {
            assert_eq!(p.flow(f).bounds, RateBounds { min: 10.0, max: 1000.0 });
        }
    }

    #[test]
    fn shape_variant_changes_all_utilities() {
        let p = base_workload_with_shape(UtilityShape::Pow75);
        for c in p.class_ids() {
            assert!(matches!(p.class(c).utility, Utility::Power { exponent, .. } if exponent == 0.75));
        }
    }

    #[test]
    fn system_scaling_replicates_disjointly() {
        let p = paper_workload(UtilityShape::Log, 2, 1);
        assert_eq!(p.num_flows(), 12);
        assert_eq!(p.num_classes(), 40);
        assert_eq!(p.num_nodes(), 18);
        // No flow of the first copy reaches a node of the second copy.
        let first_copy_flows: Vec<_> = (0..6).map(FlowId::new).collect();
        for &f in &first_copy_flows {
            for (node, _) in p.nodes_of_flow(f) {
                assert!(node.index() < 9, "flow {f} crosses system copies");
            }
        }
    }

    #[test]
    fn cnode_scaling_keeps_flows_and_replicates_classes() {
        let p = paper_workload(UtilityShape::Log, 1, 4);
        assert_eq!(p.num_flows(), 6);
        assert_eq!(p.num_classes(), 80);
        assert_eq!(p.num_nodes(), 12 + 6);
        // Flow 0 now reaches 8 c-nodes (S0, S2 in each of 4 copies).
        assert_eq!(p.nodes_of_flow(FlowId::new(0)).len(), 8);
    }

    #[test]
    fn table2_rows_have_expected_dimensions() {
        let dims: Vec<(usize, usize)> = Table2Workload::ALL
            .iter()
            .map(|w| {
                let p = w.build();
                // consumer nodes = total - sources
                (p.num_flows(), p.num_nodes() - p.num_flows())
            })
            .collect();
        assert_eq!(dims, vec![(6, 3), (12, 6), (24, 12), (6, 6), (6, 12), (6, 24)]);
        for w in Table2Workload::ALL {
            assert!(!w.label().is_empty());
        }
    }

    #[test]
    fn random_workload_is_deterministic_per_seed() {
        let cfg = RandomWorkload::default();
        let a = cfg.generate(&mut StdRng::seed_from_u64(7));
        let b = cfg.generate(&mut StdRng::seed_from_u64(7));
        let c = cfg.generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_flows(), cfg.flows);
        assert_eq!(a.num_classes(), cfg.flows * cfg.classes_per_flow);
    }

    #[test]
    fn random_workload_ranges_respected() {
        let cfg = RandomWorkload {
            flows: 10,
            classes_per_flow: 5,
            max_population: (50, 60),
            rank: (2.0, 3.0),
            ..RandomWorkload::default()
        };
        let p = cfg.generate(&mut StdRng::seed_from_u64(1));
        for c in p.class_ids() {
            let spec = p.class(c);
            assert!((50..=60).contains(&spec.max_population));
            let w = spec.utility.weight();
            assert!((2.0..=3.0).contains(&w));
        }
    }

    #[test]
    fn random_workload_mixed_shapes_cycle_within_each_flow() {
        let cfg = RandomWorkload {
            flows: 5,
            classes_per_flow: 4,
            mixed_shapes: true,
            ..RandomWorkload::default()
        };
        let p = cfg.generate(&mut StdRng::seed_from_u64(3));
        for f in p.flow_ids() {
            let classes = p.classes_of_flow(f);
            assert_eq!(classes.len(), 4);
            let expected = [
                UtilityShape::Log,
                UtilityShape::Pow25,
                UtilityShape::Pow50,
                UtilityShape::Pow75,
            ];
            for (&c, shape) in classes.iter().zip(expected) {
                let rank = p.class(c).utility.weight();
                assert_eq!(p.class(c).utility, shape.build(rank));
            }
        }
    }

    #[test]
    fn link_bottleneck_workload_binds_on_link() {
        let p = link_bottleneck_workload(100.0);
        assert_eq!(p.num_links(), 1);
        assert_eq!(p.num_flows(), 2);
        let link = crate::ids::LinkId::new(0);
        assert_eq!(p.link(link).capacity, 100.0);
        assert_eq!(p.flows_on_link(link).len(), 2);
    }

    #[test]
    #[should_panic(expected = "system_copies must be positive")]
    fn paper_workload_rejects_zero_copies() {
        let _ = paper_workload(UtilityShape::Log, 0, 1);
    }

    #[test]
    fn lossy_bottleneck_attaches_spec() {
        let p = lossy_link_bottleneck_workload(500.0, 0.1);
        let spec = p.reliability().expect("spec attached");
        assert_eq!(spec.link_loss, vec![0.1]);
        assert_eq!(spec.rho_bounds, vec![GENERATOR_RHO_BOUNDS; 2]);
        assert_eq!(spec.redundancy, 1.0);
        // The underlying topology is untouched.
        assert_eq!(p.without_reliability(), link_bottleneck_workload(500.0));
    }

    #[test]
    fn mixed_loss_workload_is_deterministic_per_seed() {
        let a = mixed_loss_workload(4, 500.0, 11);
        let b = mixed_loss_workload(4, 500.0, 11);
        let c = mixed_loss_workload(4, 500.0, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_links(), 4);
        assert_eq!(a.num_flows(), 8);
        assert_eq!(a.num_classes(), 8);
        let spec = a.reliability().expect("spec attached");
        assert_eq!(spec.link_loss.len(), 4);
        for &loss in &spec.link_loss {
            assert!((0.0..0.3).contains(&loss), "loss {loss} out of generator range");
        }
        assert_eq!(spec.rho_bounds.len(), 8);
    }

    #[test]
    fn mixed_loss_pairs_are_disjoint() {
        let p = mixed_loss_workload(3, 500.0, 5);
        for k in 0..3u32 {
            let link = crate::ids::LinkId::new(k);
            let on_link: Vec<_> = p.flows_on_link(link).to_vec();
            assert_eq!(on_link, vec![FlowId::new(2 * k), FlowId::new(2 * k + 1)]);
        }
    }
}
