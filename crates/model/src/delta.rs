//! First-class, batched problem changes.
//!
//! Heavy-churn deployments (the ROADMAP's north star) change the problem
//! constantly: consumers arrive and depart, producers join and leave, and
//! operators resize brokers. A [`ProblemDelta`] describes such a change as
//! data — an ordered batch of [`DeltaOp`]s — so it can be validated, logged,
//! shipped across a control plane, and applied atomically, instead of being
//! scattered across ad-hoc `Problem::without_flow`-style call sites.
//!
//! Applying a delta never renumbers ids: removals keep their slots (rate
//! bounds collapse to `[0, 0]`, costs and populations to zero, exactly as
//! [`Problem::without_flow`] does) and additions append at the end of the id
//! space. That id stability is what lets an engine carry optimizer state
//! (prices, rates, γ controllers) *across* a delta and what lets the
//! incremental dirty-set machinery re-evaluate only what the delta touched.
//!
//! # Examples
//!
//! ```
//! use lrgp_model::{workloads, ProblemDelta, ClassId, NodeId, RateBounds};
//!
//! # fn main() -> Result<(), lrgp_model::ValidationError> {
//! let problem = workloads::base_workload();
//! let delta = ProblemDelta::new()
//!     .set_node_capacity(NodeId::new(6), 5e5)
//!     .resize_class(ClassId::new(0), 150);
//! let changed = delta.apply(&problem)?;
//! assert_eq!(changed.num_flows(), problem.num_flows());
//! assert_eq!(changed.class(ClassId::new(0)).max_population, 150);
//! # Ok(())
//! # }
//! ```

use crate::ids::{ClassId, FlowId, LinkId, NodeId};
use crate::problem::{ClassSpec, FlowSpec, Problem, RateBounds, RhoBounds, ValidationError};
use serde::{Deserialize, Serialize};

/// One elementary change to a [`Problem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Append a new flow and its consumer classes (a producer joins). The
    /// `flow` field of each class spec is overwritten with the new flow's
    /// id; node/link costs must reference existing ids.
    AddFlow {
        /// The new flow's specification (source, bounds, path costs).
        flow: FlowSpec,
        /// The new flow's consumer classes, appended in order.
        classes: Vec<ClassSpec>,
    },
    /// Remove a flow (a producer leaves, §4.2 Fig. 3): its rate bounds
    /// collapse to `[0, 0]`, its costs and its classes' populations to zero.
    /// The id stays valid.
    RemoveFlow {
        /// The flow to remove.
        flow: FlowId,
    },
    /// Replace a node's capacity (a broker is resized).
    SetNodeCapacity {
        /// The node to resize.
        node: NodeId,
        /// The new capacity; must be finite and strictly positive.
        capacity: f64,
    },
    /// Replace a link's capacity.
    SetLinkCapacity {
        /// The link to resize.
        link: LinkId,
        /// The new capacity; must be finite and strictly positive.
        capacity: f64,
    },
    /// Replace a class's maximum population (consumers arriving or
    /// departing).
    SetMaxPopulation {
        /// The class to resize.
        class: ClassId,
        /// The new `n_j^max`.
        max_population: u32,
    },
    /// Replace a flow's rate bounds.
    SetRateBounds {
        /// The flow to re-bound.
        flow: FlowId,
        /// The new bounds; must satisfy `0 ≤ min ≤ max`.
        bounds: RateBounds,
    },
    /// Replace the `F_{b,i}` cost of an existing (flow, node) path entry —
    /// `0.0` models a pruned branch (§2.4) without touching path structure.
    SetFlowNodeCost {
        /// The flow whose cost entry changes.
        flow: FlowId,
        /// The node of the entry.
        node: NodeId,
        /// The new cost; must be finite and nonnegative.
        cost: f64,
    },
    /// Replace a link's loss rate (channel conditions change). Requires a
    /// [`crate::ReliabilitySpec`] to be attached.
    SetLinkLoss {
        /// The link whose loss rate changes.
        link: LinkId,
        /// The new loss rate; must be finite and in `[0, 1)`.
        loss: f64,
    },
    /// Replace a flow's reliability bounds. Requires a
    /// [`crate::ReliabilitySpec`] to be attached.
    SetRhoBounds {
        /// The flow to re-bound.
        flow: FlowId,
        /// The new bounds; must satisfy `0 < min ≤ max ≤ 1`.
        bounds: RhoBounds,
    },
}

impl DeltaOp {
    /// Applies this single op, returning the changed problem.
    ///
    /// # Errors
    ///
    /// `Unknown*` on out-of-range ids, plus whatever the underlying
    /// transform validates (capacities, bounds, costs; for
    /// [`DeltaOp::AddFlow`], anything a `ProblemBuilder` would reject).
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn apply(&self, problem: &Problem) -> Result<Problem, ValidationError> {
        match self {
            DeltaOp::AddFlow { flow, classes } => {
                problem.with_added_flow(flow.clone(), classes.clone())
            }
            DeltaOp::RemoveFlow { flow } => {
                check_flow(problem, *flow)?;
                Ok(problem.without_flow(*flow))
            }
            DeltaOp::SetNodeCapacity { node, capacity } => {
                check_node(problem, *node)?;
                problem.with_node_capacity(*node, *capacity)
            }
            DeltaOp::SetLinkCapacity { link, capacity } => {
                problem.with_link_capacity(*link, *capacity)
            }
            DeltaOp::SetMaxPopulation { class, max_population } => {
                check_class(problem, *class)?;
                Ok(problem.with_max_population(*class, *max_population))
            }
            DeltaOp::SetRateBounds { flow, bounds } => {
                check_flow(problem, *flow)?;
                problem.with_rate_bounds(*flow, *bounds)
            }
            DeltaOp::SetFlowNodeCost { flow, node, cost } => {
                problem.with_flow_node_cost(*flow, *node, *cost)
            }
            DeltaOp::SetLinkLoss { link, loss } => problem.with_link_loss(*link, *loss),
            DeltaOp::SetRhoBounds { flow, bounds } => {
                check_flow(problem, *flow)?;
                problem.with_rho_bounds(*flow, *bounds)
            }
        }
    }

    /// `true` if applying this op grows the id space (appends flows or
    /// classes).
    pub fn grows_problem(&self) -> bool {
        matches!(self, DeltaOp::AddFlow { .. })
    }

    /// `true` if this op changes resource-cost coefficients (so price term
    /// tables built from the problem must be rebuilt). Reliability edits
    /// count: link loss feeds the ρ term columns of the table, and ρ-bound
    /// edits change the feasible set the cached best-responses were clamped
    /// into.
    pub fn changes_costs(&self) -> bool {
        matches!(
            self,
            DeltaOp::AddFlow { .. }
                | DeltaOp::RemoveFlow { .. }
                | DeltaOp::SetFlowNodeCost { .. }
                | DeltaOp::SetLinkLoss { .. }
                | DeltaOp::SetRhoBounds { .. }
        )
    }
}

fn check_flow(problem: &Problem, flow: FlowId) -> Result<(), ValidationError> {
    if flow.index() >= problem.num_flows() {
        return Err(ValidationError::UnknownFlow { flow });
    }
    Ok(())
}

fn check_node(problem: &Problem, node: NodeId) -> Result<(), ValidationError> {
    if node.index() >= problem.num_nodes() {
        return Err(ValidationError::UnknownNode { node });
    }
    Ok(())
}

fn check_class(problem: &Problem, class: ClassId) -> Result<(), ValidationError> {
    if class.index() >= problem.num_classes() {
        return Err(ValidationError::UnknownClass { class });
    }
    Ok(())
}

/// An ordered batch of [`DeltaOp`]s, applied atomically front to back.
///
/// Construct with the chainable builder methods; apply with
/// [`ProblemDelta::apply`] (pure) or hand it to an engine, which applies it
/// to its own problem while carrying optimizer state across the change.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProblemDelta {
    ops: Vec<DeltaOp>,
}

impl ProblemDelta {
    /// An empty delta (applying it is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an [`DeltaOp::AddFlow`] op.
    pub fn add_flow(mut self, flow: FlowSpec, classes: Vec<ClassSpec>) -> Self {
        self.ops.push(DeltaOp::AddFlow { flow, classes });
        self
    }

    /// Appends a [`DeltaOp::RemoveFlow`] op.
    pub fn remove_flow(mut self, flow: FlowId) -> Self {
        self.ops.push(DeltaOp::RemoveFlow { flow });
        self
    }

    /// Appends a [`DeltaOp::SetNodeCapacity`] op.
    pub fn set_node_capacity(mut self, node: NodeId, capacity: f64) -> Self {
        self.ops.push(DeltaOp::SetNodeCapacity { node, capacity });
        self
    }

    /// Appends a [`DeltaOp::SetLinkCapacity`] op.
    pub fn set_link_capacity(mut self, link: LinkId, capacity: f64) -> Self {
        self.ops.push(DeltaOp::SetLinkCapacity { link, capacity });
        self
    }

    /// Appends a [`DeltaOp::SetMaxPopulation`] op.
    pub fn resize_class(mut self, class: ClassId, max_population: u32) -> Self {
        self.ops.push(DeltaOp::SetMaxPopulation { class, max_population });
        self
    }

    /// Appends a [`DeltaOp::SetRateBounds`] op.
    pub fn set_rate_bounds(mut self, flow: FlowId, bounds: RateBounds) -> Self {
        self.ops.push(DeltaOp::SetRateBounds { flow, bounds });
        self
    }

    /// Appends a [`DeltaOp::SetFlowNodeCost`] op.
    pub fn set_flow_node_cost(mut self, flow: FlowId, node: NodeId, cost: f64) -> Self {
        self.ops.push(DeltaOp::SetFlowNodeCost { flow, node, cost });
        self
    }

    /// Appends a [`DeltaOp::SetLinkLoss`] op.
    pub fn set_link_loss(mut self, link: LinkId, loss: f64) -> Self {
        self.ops.push(DeltaOp::SetLinkLoss { link, loss });
        self
    }

    /// Appends a [`DeltaOp::SetRhoBounds`] op.
    pub fn set_rho_bounds(mut self, flow: FlowId, bounds: RhoBounds) -> Self {
        self.ops.push(DeltaOp::SetRhoBounds { flow, bounds });
        self
    }

    /// Appends an arbitrary op (non-chaining form).
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Appends every op of `other`, preserving order.
    pub fn merge(mut self, other: ProblemDelta) -> Self {
        self.ops.extend(other.ops);
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `true` if any op grows the id space.
    pub fn grows_problem(&self) -> bool {
        self.ops.iter().any(DeltaOp::grows_problem)
    }

    /// `true` if any op changes resource-cost coefficients.
    pub fn changes_costs(&self) -> bool {
        self.ops.iter().any(DeltaOp::changes_costs)
    }

    /// Applies the ops front to back, returning the final problem. The input
    /// problem is untouched; a failing op leaves nothing half-applied.
    ///
    /// # Errors
    ///
    /// The first error any op reports (see [`DeltaOp::apply`]).
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn apply(&self, problem: &Problem) -> Result<Problem, ValidationError> {
        let mut next = problem.clone();
        for op in &self.ops {
            next = op.apply(&next)?;
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;
    use crate::workloads::base_workload;

    #[test]
    fn empty_delta_is_identity() {
        let p = base_workload();
        let q = ProblemDelta::new().apply(&p).unwrap();
        assert_eq!(p, q);
        assert!(ProblemDelta::new().is_empty());
    }

    #[test]
    fn batched_ops_apply_in_order() {
        let p = base_workload();
        let delta = ProblemDelta::new()
            .resize_class(ClassId::new(0), 7)
            .resize_class(ClassId::new(0), 9);
        let q = delta.apply(&p).unwrap();
        assert_eq!(q.class(ClassId::new(0)).max_population, 9);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn remove_flow_matches_without_flow() {
        let p = base_workload();
        let flow = FlowId::new(2);
        let via_delta = ProblemDelta::new().remove_flow(flow).apply(&p).unwrap();
        assert_eq!(via_delta, p.without_flow(flow));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let p = base_workload();
        let n = p.num_flows() as u32;
        assert!(matches!(
            ProblemDelta::new().remove_flow(FlowId::new(n)).apply(&p),
            Err(ValidationError::UnknownFlow { .. })
        ));
        assert!(matches!(
            ProblemDelta::new().resize_class(ClassId::new(999), 1).apply(&p),
            Err(ValidationError::UnknownClass { .. })
        ));
        assert!(matches!(
            ProblemDelta::new().set_node_capacity(NodeId::new(999), 1.0).apply(&p),
            Err(ValidationError::UnknownNode { .. })
        ));
        assert!(matches!(
            ProblemDelta::new().set_link_capacity(LinkId::new(0), 1.0).apply(&p),
            Err(ValidationError::UnknownLink { .. })
        ));
    }

    #[test]
    fn invalid_values_are_rejected_atomically() {
        let p = base_workload();
        // Second op fails; the caller's problem is untouched and nothing
        // half-applied escapes.
        let delta = ProblemDelta::new()
            .resize_class(ClassId::new(0), 5)
            .set_node_capacity(NodeId::new(0), -3.0);
        assert!(matches!(
            delta.apply(&p),
            Err(ValidationError::NonPositiveCapacity { .. })
        ));
        assert_eq!(p.class(ClassId::new(0)).max_population, 400);
    }

    #[test]
    fn add_flow_appends_ids_and_revalidates() {
        let p = base_workload();
        let flows_before = p.num_flows();
        let classes_before = p.num_classes();
        let source = p.flow(FlowId::new(0)).source;
        let sink = p.class(ClassId::new(0)).node;
        let spec = FlowSpec {
            source,
            bounds: RateBounds::new(5.0, 500.0).unwrap(),
            link_costs: vec![],
            node_costs: vec![(sink, 1.0)],
        };
        let class = ClassSpec {
            flow: FlowId::new(0), // overwritten by the delta
            node: sink,
            max_population: 40,
            utility: Utility::log(10.0),
            consumer_cost: 2.0,
        };
        let q = ProblemDelta::new().add_flow(spec, vec![class]).apply(&p).unwrap();
        assert_eq!(q.num_flows(), flows_before + 1);
        assert_eq!(q.num_classes(), classes_before + 1);
        let new_flow = FlowId::new(flows_before as u32);
        let new_class = ClassId::new(classes_before as u32);
        assert_eq!(q.class(new_class).flow, new_flow);
        assert_eq!(q.classes_of_flow(new_flow), &[new_class]);
        assert!(q.flows_at_node(sink).contains(&new_flow));
        // Existing ids untouched.
        for f in p.flow_ids() {
            assert_eq!(q.flow(f), p.flow(f));
        }
    }

    #[test]
    fn add_flow_rejects_unreached_class_node() {
        let p = base_workload();
        let source = p.flow(FlowId::new(0)).source;
        let spec = FlowSpec {
            source,
            bounds: RateBounds::new(5.0, 500.0).unwrap(),
            link_costs: vec![],
            node_costs: vec![],
        };
        let class = ClassSpec {
            flow: FlowId::new(0),
            node: NodeId::new(0),
            max_population: 40,
            utility: Utility::log(10.0),
            consumer_cost: 2.0,
        };
        assert!(matches!(
            ProblemDelta::new().add_flow(spec, vec![class]).apply(&p),
            Err(ValidationError::ClassNodeNotReached { .. })
        ));
    }

    #[test]
    fn cost_edit_requires_existing_entry() {
        let p = base_workload();
        let flow = FlowId::new(0);
        let reached = p.nodes_of_flow(flow)[0].0;
        let q = ProblemDelta::new().set_flow_node_cost(flow, reached, 0.0).apply(&p).unwrap();
        assert_eq!(q.flow_node_cost(reached, flow), 0.0);
        // The source of another flow is not on this flow's path.
        let unreached = (0..p.num_nodes() as u32)
            .map(NodeId::new)
            .find(|&n| !p.nodes_of_flow(flow).iter().any(|&(m, _)| m == n))
            .unwrap();
        assert!(matches!(
            ProblemDelta::new().set_flow_node_cost(flow, unreached, 0.0).apply(&p),
            Err(ValidationError::NoSuchCostEntry { .. })
        ));
    }

    #[test]
    fn classification_flags() {
        let capacity_only = ProblemDelta::new().set_node_capacity(NodeId::new(0), 1e6);
        assert!(!capacity_only.grows_problem());
        assert!(!capacity_only.changes_costs());
        let removal = ProblemDelta::new().remove_flow(FlowId::new(0));
        assert!(!removal.grows_problem());
        assert!(removal.changes_costs());
    }

    #[test]
    fn reliability_ops_apply_and_validate() {
        let p = crate::workloads::lossy_link_bottleneck_workload(500.0, 0.1);
        let link = LinkId::new(0);
        let flow = FlowId::new(0);
        let bounds = RhoBounds::new(0.6, 0.95).unwrap();
        let q = ProblemDelta::new()
            .set_link_loss(link, 0.2)
            .set_rho_bounds(flow, bounds)
            .apply(&p)
            .unwrap();
        assert_eq!(q.link_loss(link), 0.2);
        assert_eq!(q.rho_bounds(flow), Some(bounds));
        assert!(matches!(
            ProblemDelta::new().set_link_loss(link, 1.0).apply(&p),
            Err(ValidationError::InvalidLossRate { .. })
        ));
        assert!(matches!(
            ProblemDelta::new().set_rho_bounds(FlowId::new(99), bounds).apply(&p),
            Err(ValidationError::UnknownFlow { .. })
        ));
        // Reliability edits against a spec-less problem are rejected.
        let plain = base_workload();
        assert!(matches!(
            ProblemDelta::new().set_rho_bounds(FlowId::new(0), bounds).apply(&plain),
            Err(ValidationError::ReliabilityDisabled)
        ));
    }

    #[test]
    fn reliability_ops_invalidate_term_tables() {
        let loss_edit = ProblemDelta::new().set_link_loss(LinkId::new(0), 0.2);
        assert!(!loss_edit.grows_problem());
        assert!(loss_edit.changes_costs());
        let bound_edit =
            ProblemDelta::new().set_rho_bounds(FlowId::new(0), RhoBounds::default());
        assert!(!bound_edit.grows_problem());
        assert!(bound_edit.changes_costs());
    }

    #[test]
    fn delta_serde_round_trip() {
        let delta = ProblemDelta::new()
            .remove_flow(FlowId::new(1))
            .set_node_capacity(NodeId::new(2), 1e5)
            .set_rate_bounds(FlowId::new(0), RateBounds::new(1.0, 10.0).unwrap())
            .set_link_loss(LinkId::new(0), 0.05)
            .set_rho_bounds(FlowId::new(0), RhoBounds::new(0.5, 0.9).unwrap());
        let json = serde_json::to_string(&delta).unwrap();
        let back: ProblemDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
    }
}
