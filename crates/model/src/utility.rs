//! Consumer-class utility functions.
//!
//! The paper assumes each class utility `U_j(r)` is an increasing, strictly
//! concave, continuously differentiable function of the flow rate within the
//! rate bounds (§2.2). The experiments use `rank · log(1 + r)` and
//! `rank · r^k` for `k ∈ {0.25, 0.5, 0.75}` (§4.1, §4.5).
//!
//! Utilities are represented as a closed enum rather than a trait object so
//! they are `Copy`, serializable, and so the rate allocator can recognize the
//! families with closed-form Lagrangian solutions. Arbitrary custom shapes
//! are deliberately not supported: the engine's correctness leans on the
//! strict-concavity contract, which a closed enum can actually enforce.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-consumer utility function of the flow rate.
///
/// # Examples
///
/// ```
/// use lrgp_model::utility::Utility;
/// let u = Utility::log(20.0); // 20·log(1+r), the paper's rank-20 class
/// assert!(u.value(0.0).abs() < 1e-12);
/// assert!(u.value(100.0) > u.value(10.0)); // increasing
/// assert!(u.derivative(10.0) > u.derivative(100.0)); // strictly concave
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Utility {
    /// `weight · ln(1 + r)` — the paper's primary shape (`rank · log(1+r)`).
    Log {
        /// Multiplicative weight (the class *rank* in the paper).
        weight: f64,
    },
    /// `weight · r^exponent` with `0 < exponent < 1` — the paper's
    /// alternative shapes (`r^0.25`, `r^0.5`, `r^0.75`).
    Power {
        /// Multiplicative weight (the class *rank* in the paper).
        weight: f64,
        /// Concavity exponent, strictly between 0 and 1.
        exponent: f64,
    },
    /// `weight · r` — linear (elasticity boundary; *not* strictly concave).
    /// Supported so baselines and tests can probe degenerate inputs; the
    /// LRGP rate allocator handles it by bang-bang allocation.
    Linear {
        /// Multiplicative weight.
        weight: f64,
    },
    /// `weight · (1 - exp(-r / scale))` — a saturating utility modelling
    /// consumers that gain little beyond a characteristic rate. Increasing,
    /// strictly concave, bounded by `weight`.
    Saturating {
        /// Utility approached as `r → ∞`.
        weight: f64,
        /// Characteristic rate at which ~63 % of the weight is attained.
        scale: f64,
    },
}

impl Utility {
    /// Convenience constructor for the paper's `rank · log(1+r)` shape.
    pub fn log(weight: f64) -> Self {
        Utility::Log { weight }
    }

    /// Convenience constructor for the paper's `rank · r^k` shape.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < exponent < 1` (outside that range the function is
    /// not increasing and strictly concave).
    pub fn power(weight: f64, exponent: f64) -> Self {
        assert!(
            exponent > 0.0 && exponent < 1.0,
            "power utility exponent must lie in (0, 1), got {exponent}"
        );
        Utility::Power { weight, exponent }
    }

    /// Convenience constructor for a linear utility.
    pub fn linear(weight: f64) -> Self {
        Utility::Linear { weight }
    }

    /// Convenience constructor for a saturating exponential utility.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn saturating(weight: f64, scale: f64) -> Self {
        assert!(scale > 0.0, "saturating utility scale must be positive, got {scale}");
        Utility::Saturating { weight, scale }
    }

    /// Evaluates `U(r)`.
    ///
    /// Rates are clamped at zero from below: the model never evaluates
    /// utilities at negative rates, but guarding here keeps baselines that
    /// propose out-of-range moves well defined.
    pub fn value(&self, rate: f64) -> f64 {
        let r = rate.max(0.0);
        match *self {
            Utility::Log { weight } => weight * (1.0 + r).ln(),
            Utility::Power { weight, exponent } => weight * r.powf(exponent),
            Utility::Linear { weight } => weight * r,
            Utility::Saturating { weight, scale } => weight * (1.0 - (-r / scale).exp()),
        }
    }

    /// Evaluates `U'(r)`.
    pub fn derivative(&self, rate: f64) -> f64 {
        let r = rate.max(0.0);
        match *self {
            Utility::Log { weight } => weight / (1.0 + r),
            Utility::Power { weight, exponent } => {
                if r == 0.0 {
                    // U'(0+) = +∞ for 0 < k < 1; return a large finite slope
                    // so downstream numeric code stays finite.
                    f64::MAX
                } else {
                    weight * exponent * r.powf(exponent - 1.0)
                }
            }
            Utility::Linear { weight } => weight,
            Utility::Saturating { weight, scale } => weight / scale * (-r / scale).exp(),
        }
    }

    /// The multiplicative weight (class rank).
    pub fn weight(&self) -> f64 {
        match *self {
            Utility::Log { weight }
            | Utility::Power { weight, .. }
            | Utility::Linear { weight }
            | Utility::Saturating { weight, .. } => weight,
        }
    }

    /// Returns a copy with the weight replaced, keeping the shape.
    pub fn with_weight(&self, weight: f64) -> Self {
        match *self {
            Utility::Log { .. } => Utility::Log { weight },
            Utility::Power { exponent, .. } => Utility::Power { weight, exponent },
            Utility::Linear { .. } => Utility::Linear { weight },
            Utility::Saturating { scale, .. } => Utility::Saturating { weight, scale },
        }
    }

    /// `true` if the function is strictly concave on `(0, ∞)` (the paper's
    /// standing assumption). Linear utilities return `false`.
    pub fn is_strictly_concave(&self) -> bool {
        !matches!(self, Utility::Linear { .. })
    }
}

impl fmt::Display for Utility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Utility::Log { weight } => write!(f, "{weight}·log(1+r)"),
            Utility::Power { weight, exponent } => write!(f, "{weight}·r^{exponent}"),
            Utility::Linear { weight } => write!(f, "{weight}·r"),
            Utility::Saturating { weight, scale } => {
                write!(f, "{weight}·(1-exp(-r/{scale}))")
            }
        }
    }
}

/// The utility *shape* shared by every class of a workload, as varied in
/// §4.5 of the paper. Combine with a class rank via [`UtilityShape::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilityShape {
    /// `rank · log(1 + r)` — the paper's base shape.
    Log,
    /// `rank · r^0.25`.
    Pow25,
    /// `rank · r^0.5`.
    Pow50,
    /// `rank · r^0.75`.
    Pow75,
}

impl UtilityShape {
    /// All shapes evaluated in Table 3, in the paper's order.
    pub const ALL: [UtilityShape; 4] =
        [UtilityShape::Log, UtilityShape::Pow25, UtilityShape::Pow50, UtilityShape::Pow75];

    /// Instantiates the shape for a class of the given rank.
    pub fn build(self, rank: f64) -> Utility {
        match self {
            UtilityShape::Log => Utility::log(rank),
            UtilityShape::Pow25 => Utility::power(rank, 0.25),
            UtilityShape::Pow50 => Utility::power(rank, 0.5),
            UtilityShape::Pow75 => Utility::power(rank, 0.75),
        }
    }

    /// The label used in the paper's Table 3.
    pub fn label(self) -> &'static str {
        match self {
            UtilityShape::Log => "rank·log(1+r)",
            UtilityShape::Pow25 => "rank·r^0.25",
            UtilityShape::Pow50 => "rank·r^0.5",
            UtilityShape::Pow75 => "rank·r^0.75",
        }
    }
}

impl fmt::Display for UtilityShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPES: [Utility; 4] = [
        Utility::Log { weight: 10.0 },
        Utility::Power { weight: 10.0, exponent: 0.5 },
        Utility::Linear { weight: 10.0 },
        Utility::Saturating { weight: 10.0, scale: 50.0 },
    ];

    #[test]
    fn values_match_formulas() {
        assert!((Utility::log(2.0).value(std::f64::consts::E - 1.0) - 2.0).abs() < 1e-12);
        assert!((Utility::power(3.0, 0.5).value(16.0) - 12.0).abs() < 1e-12);
        assert!((Utility::linear(4.0).value(2.5) - 10.0).abs() < 1e-12);
        let s = Utility::saturating(10.0, 50.0);
        assert!((s.value(50.0) - 10.0 * (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn all_shapes_increasing() {
        for u in SHAPES {
            let mut prev = u.value(0.0);
            for r in [1.0, 10.0, 100.0, 1000.0] {
                let v = u.value(r);
                assert!(v > prev, "{u} not increasing at r = {r}");
                prev = v;
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for u in SHAPES {
            for r in [0.5f64, 5.0, 50.0, 500.0] {
                let h = 1e-6 * r.max(1.0);
                let fd = (u.value(r + h) - u.value(r - h)) / (2.0 * h);
                let an = u.derivative(r);
                assert!(
                    (fd - an).abs() <= 1e-4 * an.abs().max(1e-9),
                    "{u} derivative mismatch at {r}: fd = {fd}, an = {an}"
                );
            }
        }
    }

    #[test]
    fn strictly_concave_shapes_have_decreasing_derivative() {
        for u in SHAPES {
            if !u.is_strictly_concave() {
                continue;
            }
            let mut prev = u.derivative(0.1);
            for r in [1.0, 10.0, 100.0] {
                let d = u.derivative(r);
                assert!(d < prev, "{u} derivative not decreasing at {r}");
                prev = d;
            }
        }
    }

    #[test]
    fn concavity_flags() {
        assert!(Utility::log(1.0).is_strictly_concave());
        assert!(Utility::power(1.0, 0.25).is_strictly_concave());
        assert!(Utility::saturating(1.0, 1.0).is_strictly_concave());
        assert!(!Utility::linear(1.0).is_strictly_concave());
    }

    #[test]
    fn negative_rates_clamp_to_zero() {
        for u in SHAPES {
            assert_eq!(u.value(-5.0), u.value(0.0));
        }
    }

    #[test]
    fn power_derivative_at_zero_is_finite_and_huge() {
        let d = Utility::power(1.0, 0.5).derivative(0.0);
        assert!(d.is_finite());
        assert!(d > 1e100);
    }

    #[test]
    #[should_panic(expected = "exponent must lie in (0, 1)")]
    fn power_rejects_exponent_one() {
        let _ = Utility::power(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn saturating_rejects_zero_scale() {
        let _ = Utility::saturating(1.0, 0.0);
    }

    #[test]
    fn weight_accessors() {
        for u in SHAPES {
            assert_eq!(u.weight(), 10.0);
            let w = u.with_weight(3.0);
            assert_eq!(w.weight(), 3.0);
            assert_eq!(std::mem::discriminant(&w), std::mem::discriminant(&u));
        }
    }

    #[test]
    fn shape_builds_and_labels() {
        for shape in UtilityShape::ALL {
            let u = shape.build(7.0);
            assert_eq!(u.weight(), 7.0);
            assert!(!shape.label().is_empty());
            assert_eq!(shape.to_string(), shape.label());
        }
        assert_eq!(UtilityShape::Pow50.build(2.0), Utility::power(2.0, 0.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Utility::log(2.0).to_string(), "2·log(1+r)");
        assert_eq!(Utility::power(2.0, 0.25).to_string(), "2·r^0.25");
    }
}
