//! Allocation analysis: utility breakdowns, resource utilization, and
//! fairness metrics.
//!
//! The paper reports a single number (total utility), but operators of a
//! real event infrastructure also ask *who* gets the utility, *which*
//! brokers are saturated, and *how even* the service is across consumer
//! classes. This module answers those questions for any
//! ([`Problem`], [`Allocation`]) pair; the experiment binaries and
//! examples use it for their reports.

use crate::allocation::Allocation;
use crate::ids::{ClassId, FlowId, NodeId};
use crate::problem::Problem;
use serde::{Deserialize, Serialize};

/// Per-class slice of an allocation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The class.
    pub class: ClassId,
    /// Flow the class consumes.
    pub flow: FlowId,
    /// Node the class attaches to.
    pub node: NodeId,
    /// Admitted population.
    pub admitted: f64,
    /// Demanded population `n_j^max`.
    pub demanded: u32,
    /// `admitted / demanded` (1.0 when demand is zero).
    pub admission_ratio: f64,
    /// `n_j · U_j(r_i)` — this class's contribution to the objective.
    pub utility: f64,
    /// Node resource consumed by this class (`G_{b,j} n_j r_i`).
    pub resource: f64,
}

/// Per-node slice of an allocation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Resource in use (left-hand side of constraint (5)).
    pub used: f64,
    /// Node capacity `c_b`.
    pub capacity: f64,
    /// `used / capacity`.
    pub utilization: f64,
    /// Total admitted consumers across the node's classes.
    pub admitted_consumers: f64,
}

/// A full breakdown of one allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationReport {
    /// Total utility (objective (1)).
    pub total_utility: f64,
    /// Total admitted consumers.
    pub total_admitted: f64,
    /// Total demanded consumers.
    pub total_demanded: u64,
    /// Per-class breakdown, in class-id order.
    pub classes: Vec<ClassReport>,
    /// Per-node breakdown, in node-id order.
    pub nodes: Vec<NodeReport>,
    /// Jain fairness index over per-class *per-consumer realized utility*
    /// (`U_j(r_i)` weighted by admission); 1.0 = perfectly even.
    pub jain_admission_fairness: f64,
    /// Fraction of total utility captured by the top 10 % of classes by
    /// utility (a concentration measure).
    pub top_decile_utility_share: f64,
}

impl AllocationReport {
    /// Builds the report.
    pub fn new(problem: &Problem, allocation: &Allocation) -> Self {
        let mut classes = Vec::with_capacity(problem.num_classes());
        for class in problem.class_ids() {
            let spec = problem.class(class);
            let n = allocation.population(class);
            let r = allocation.rate(spec.flow);
            let utility = if n > 0.0 { n * spec.utility.value(r) } else { 0.0 };
            classes.push(ClassReport {
                class,
                flow: spec.flow,
                node: spec.node,
                admitted: n,
                demanded: spec.max_population,
                admission_ratio: if spec.max_population == 0 {
                    1.0
                } else {
                    n / spec.max_population as f64
                },
                utility,
                resource: spec.consumer_cost * n * r,
            });
        }
        let nodes = problem
            .node_ids()
            .map(|node| {
                let used = allocation.node_usage(problem, node);
                let capacity = problem.node(node).capacity;
                NodeReport {
                    node,
                    used,
                    capacity,
                    utilization: used / capacity,
                    admitted_consumers: problem
                        .classes_at_node(node)
                        .iter()
                        .map(|&c| allocation.population(c))
                        .sum(),
                }
            })
            .collect();

        let total_utility = allocation.total_utility(problem);
        let total_admitted = classes.iter().map(|c| c.admitted).sum();
        let ratios: Vec<f64> = classes.iter().map(|c| c.admission_ratio).collect();
        let jain = jain_index(&ratios);

        let mut utilities: Vec<f64> = classes.iter().map(|c| c.utility).collect();
        utilities.sort_by(|a, b| b.total_cmp(a));
        let top = utilities.len().div_ceil(10);
        let top_sum: f64 = utilities.iter().take(top).sum();
        let top_decile_utility_share =
            if total_utility > 0.0 { top_sum / total_utility } else { 0.0 };

        Self {
            total_utility,
            total_admitted,
            total_demanded: problem.total_demand(),
            classes,
            nodes,
            jain_admission_fairness: jain,
            top_decile_utility_share,
        }
    }

    /// Nodes with utilization of at least `threshold` (e.g. 0.95 for
    /// "saturated").
    pub fn saturated_nodes(&self, threshold: f64) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.utilization >= threshold)
            .map(|n| n.node)
            .collect()
    }

    /// Classes that were fully shut out (positive demand, zero admission).
    pub fn starved_classes(&self) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter(|c| c.demanded > 0 && c.admitted == 0.0)
            .map(|c| c.class)
            .collect()
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 when all equal, `1/n`
/// when one value dominates. Returns 1.0 for empty or all-zero input
/// (vacuously fair).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq_sum)
}

/// Gini coefficient of a nonnegative distribution: 0 = perfectly equal,
/// → 1 = maximally concentrated. Returns 0 for empty or all-zero input.
pub fn gini_coefficient(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ProblemBuilder, RateBounds};
    use crate::utility::Utility;
    use crate::workloads::base_workload;

    fn small() -> (Problem, Allocation) {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e9);
        let sink = b.add_node(1e4);
        let f = b.add_flow(src, RateBounds::new(10.0, 100.0).unwrap());
        b.set_node_cost(f, sink, 1.0);
        b.add_class(f, sink, 10, Utility::log(10.0), 2.0);
        b.add_class(f, sink, 20, Utility::log(5.0), 2.0);
        let p = b.build().unwrap();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 50.0);
        a.set_population(ClassId::new(0), 10.0);
        a.set_population(ClassId::new(1), 5.0);
        (p, a)
    }

    #[test]
    fn report_totals_match_direct_evaluation() {
        let (p, a) = small();
        let r = AllocationReport::new(&p, &a);
        assert!((r.total_utility - a.total_utility(&p)).abs() < 1e-9);
        assert_eq!(r.total_admitted, 15.0);
        assert_eq!(r.total_demanded, 30);
        let class_sum: f64 = r.classes.iter().map(|c| c.utility).sum();
        assert!((class_sum - r.total_utility).abs() < 1e-9);
    }

    #[test]
    fn class_report_fields() {
        let (p, a) = small();
        let r = AllocationReport::new(&p, &a);
        let c0 = &r.classes[0];
        assert_eq!(c0.admitted, 10.0);
        assert_eq!(c0.demanded, 10);
        assert_eq!(c0.admission_ratio, 1.0);
        assert!((c0.resource - 2.0 * 10.0 * 50.0).abs() < 1e-9);
        let c1 = &r.classes[1];
        assert_eq!(c1.admission_ratio, 0.25);
    }

    #[test]
    fn node_report_utilization() {
        let (p, a) = small();
        let r = AllocationReport::new(&p, &a);
        let sink = &r.nodes[1];
        let expected_used = 1.0 * 50.0 + 2.0 * 15.0 * 50.0;
        assert!((sink.used - expected_used).abs() < 1e-9);
        assert!((sink.utilization - expected_used / 1e4).abs() < 1e-12);
        assert_eq!(sink.admitted_consumers, 15.0);
        // Source node idle.
        assert_eq!(r.nodes[0].used, 0.0);
    }

    #[test]
    fn saturated_and_starved_detection() {
        let (p, mut a) = small();
        a.set_population(ClassId::new(1), 0.0);
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.starved_classes(), vec![ClassId::new(1)]);
        assert!(r.saturated_nodes(0.95).is_empty());
        // Crank the rate to saturate the sink.
        a.set_rate(FlowId::new(0), 100.0);
        a.set_population(ClassId::new(0), 10.0);
        a.set_population(ClassId::new(1), 20.0);
        let r = AllocationReport::new(&p, &a);
        // used = 100 + 2·30·100 = 6100; still below 1e4 → tune threshold.
        assert_eq!(r.saturated_nodes(0.5), vec![NodeId::new(1)]);
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One dominant value among n: index → 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Mixed case.
        let j = jain_index(&[1.0, 2.0, 3.0]);
        assert!(j > 0.5 && j < 1.0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
        assert!(gini_coefficient(&[5.0, 5.0, 5.0]).abs() < 1e-12);
        // Full concentration in one of n values: (n-1)/n.
        let g = gini_coefficient(&[0.0, 0.0, 0.0, 10.0]);
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fairness_metrics_tolerate_nan_deterministically() {
        // total_cmp gives NaN a fixed sort position, so the (NaN) result is
        // bit-identical across input permutations instead of depending on
        // where the NaN happened to sit.
        let a = gini_coefficient(&[f64::NAN, 3.0, 1.0, 2.0]);
        let b = gini_coefficient(&[2.0, 1.0, f64::NAN, 3.0]);
        assert!(a.is_nan() && b.is_nan());
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(jain_index(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn report_on_paper_workload_is_consistent() {
        let p = base_workload();
        let a = Allocation::upper_bounds(&p);
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.classes.len(), 20);
        assert_eq!(r.nodes.len(), 9);
        assert_eq!(r.total_demanded, 22_800);
        assert_eq!(r.total_admitted, 22_800.0);
        assert!((r.jain_admission_fairness - 1.0).abs() < 1e-12); // all fully admitted
        assert!(!r.saturated_nodes(1.0).is_empty()); // upper bounds overload
    }

    #[test]
    fn top_decile_share_bounds() {
        let (p, a) = small();
        let r = AllocationReport::new(&p, &a);
        assert!(r.top_decile_utility_share > 0.0 && r.top_decile_utility_share <= 1.0);
    }
}
