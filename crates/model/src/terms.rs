//! Flattened, cache-friendly price-term tables (CSR layout).
//!
//! The price aggregation of Eqs. 8–9 walks, per flow, its link costs, its
//! node costs, and the consumer costs of its classes at each node. The
//! [`crate::Problem`] accessors serve those walks through per-flow `Vec`s of
//! `(id, cost)` pairs plus an id-filtered scan for `attachMap_i(b)` — fine
//! for one evaluation, wasteful when the same walk runs every iteration of
//! an optimizer.
//!
//! [`PriceTermTable`] precomputes the walks once into four contiguous arrays
//! in CSR (compressed sparse row) style: all link terms of all flows live in
//! one `Vec` sliced by per-flow offsets, and likewise for node terms, class
//! terms, and per-link usage terms. Aggregating a flow's price becomes a
//! pair of linear scans over adjacent memory with no nested id-indexed
//! lookups and no per-call filtering.
//!
//! The tables store terms in **exactly** the order the `Problem` accessors
//! produce them ([`Problem::links_of_flow`], [`Problem::nodes_of_flow`],
//! [`Problem::classes_of_flow_at_node`], [`Problem::flows_on_link`]), so a
//! consumer that folds them left-to-right performs the same floating-point
//! additions in the same order as the accessor-based code and obtains
//! bit-identical sums. A table is a snapshot: rebuild it whenever the
//! problem is replaced.

use crate::ids::{FlowId, LinkId};
use crate::problem::Problem;
use crate::utility::Utility;

/// How a flow's Eq. 7 rate subproblem can be solved, decided once at table
/// build time from the *shapes* of the flow's classes (populations vary per
/// iteration; shapes do not).
///
/// A vectorized rate solver dispatches on the cohort: [`FlowCohort::Log`]
/// and [`FlowCohort::Power`] flows solve in closed form from a single
/// weighted-population mass (no bisection), so the bisection loop only ever
/// sees the [`FlowCohort::Generic`] residue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowCohort {
    /// Every class of the flow is logarithmic (`w · ln(1+r)`):
    /// `r* = S/P − 1` with `S = Σ n_j w_j`.
    Log,
    /// Every class is a power utility sharing one exponent:
    /// `r* = (kS/P)^(1/(1−k))`.
    Power {
        /// The shared concavity exponent.
        exponent: f64,
    },
    /// Mixed shapes, or no classes at all: no single closed form applies.
    Generic,
}

/// One node term of a flow's `PB_i` aggregation (Eq. 9): the node, the
/// flow-cost coefficient `F_{b,i}`, and the slice of class terms attached to
/// the flow at this node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePriceTerm {
    /// Node index (raw id).
    pub node: u32,
    /// `F_{b,i}`: the consumer-independent per-rate cost at the node.
    pub flow_cost: f64,
    /// Start of this term's class range in [`PriceTermTable::class_terms`].
    pub class_start: u32,
    /// End (exclusive) of this term's class range.
    pub class_end: u32,
}

/// Precomputed CSR-style term tables for price aggregation and link usage.
///
/// # Examples
///
/// ```
/// use lrgp_model::workloads::base_workload;
/// use lrgp_model::{FlowId, PriceTermTable};
///
/// let problem = base_workload();
/// let table = PriceTermTable::new(&problem);
/// let flow = FlowId::new(0);
/// // The node terms mirror Problem::nodes_of_flow exactly.
/// assert_eq!(table.node_terms(flow).len(), problem.nodes_of_flow(flow).len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTermTable {
    /// `(link index, L_{l,i})` for every flow, concatenated.
    link_terms: Vec<(u32, f64)>,
    /// Per-flow offsets into `link_terms` (length `num_flows + 1`).
    link_offsets: Vec<u32>,
    /// Node terms for every flow, concatenated.
    node_terms: Vec<NodePriceTerm>,
    /// Per-flow offsets into `node_terms` (length `num_flows + 1`).
    node_offsets: Vec<u32>,
    /// `(class index, G_{b,j})`, indexed by the ranges in `node_terms`.
    class_terms: Vec<(u32, f64)>,
    /// `(flow index, L_{l,i})` for every link, concatenated.
    usage_terms: Vec<(u32, f64)>,
    /// Per-link offsets into `usage_terms` (length `num_links + 1`).
    usage_offsets: Vec<u32>,
    /// Per-flow rate-solve classification (length `num_flows`).
    cohorts: Vec<FlowCohort>,
    /// `(class index, utility weight)` for every flow, concatenated in
    /// [`Problem::classes_of_flow`] order.
    utility_terms: Vec<(u32, f64)>,
    /// Per-flow offsets into `utility_terms` (length `num_flows + 1`).
    utility_offsets: Vec<u32>,
    /// `(link index, L_{l,i} · loss_l)` for every flow, concatenated in
    /// [`Problem::links_of_flow`] order: the reliability column. Empty when
    /// the problem carries no [`crate::ReliabilitySpec`].
    rho_link_terms: Vec<(u32, f64)>,
    /// Per-flow offsets into `rho_link_terms` (length `num_flows + 1` when
    /// a spec is attached, empty otherwise).
    rho_link_offsets: Vec<u32>,
}

impl PriceTermTable {
    /// Builds the tables by walking every flow and link of `problem` in
    /// accessor order.
    pub fn new(problem: &Problem) -> Self {
        let mut link_terms = Vec::new();
        let mut link_offsets = Vec::with_capacity(problem.num_flows() + 1);
        let mut node_terms = Vec::new();
        let mut node_offsets = Vec::with_capacity(problem.num_flows() + 1);
        let mut class_terms = Vec::with_capacity(problem.num_classes());
        let mut cohorts = Vec::with_capacity(problem.num_flows());
        let mut utility_terms = Vec::with_capacity(problem.num_classes());
        let mut utility_offsets = Vec::with_capacity(problem.num_flows() + 1);
        link_offsets.push(0);
        node_offsets.push(0);
        utility_offsets.push(0);
        for flow in problem.flow_ids() {
            for &(link, cost) in problem.links_of_flow(flow) {
                link_terms.push((link.index() as u32, cost));
            }
            link_offsets.push(link_terms.len() as u32);
            for &(node, flow_cost) in problem.nodes_of_flow(flow) {
                let class_start = class_terms.len() as u32;
                for class in problem.classes_of_flow_at_node(flow, node) {
                    class_terms
                        .push((class.index() as u32, problem.class(class).consumer_cost));
                }
                node_terms.push(NodePriceTerm {
                    node: node.index() as u32,
                    flow_cost,
                    class_start,
                    class_end: class_terms.len() as u32,
                });
            }
            node_offsets.push(node_terms.len() as u32);
            let mut cohort = None;
            for &c in problem.classes_of_flow(flow) {
                let u = problem.class(c).utility;
                utility_terms.push((c.index() as u32, u.weight()));
                let shape = match u {
                    Utility::Log { .. } => FlowCohort::Log,
                    Utility::Power { exponent, .. } => FlowCohort::Power { exponent },
                    _ => FlowCohort::Generic,
                };
                cohort = Some(match cohort {
                    None => shape,
                    Some(prev) if prev == shape => prev,
                    Some(_) => FlowCohort::Generic,
                });
            }
            // A flow with no classes gets no closed form: whichever subset
            // of consumers is admitted, the generic path handles it.
            cohorts.push(cohort.unwrap_or(FlowCohort::Generic));
            utility_offsets.push(utility_terms.len() as u32);
        }
        let mut usage_terms = Vec::new();
        let mut usage_offsets = Vec::with_capacity(problem.num_links() + 1);
        usage_offsets.push(0);
        for link in problem.link_ids() {
            for &flow in problem.flows_on_link(link) {
                usage_terms.push((flow.index() as u32, problem.link_cost(link, flow)));
            }
            usage_offsets.push(usage_terms.len() as u32);
        }
        let mut rho_link_terms = Vec::new();
        let mut rho_link_offsets = Vec::new();
        if problem.reliability().is_some() {
            rho_link_offsets.reserve(problem.num_flows() + 1);
            rho_link_offsets.push(0);
            for flow in problem.flow_ids() {
                for &(link, cost) in problem.links_of_flow(flow) {
                    rho_link_terms
                        .push((link.index() as u32, cost * problem.link_loss(link)));
                }
                rho_link_offsets.push(rho_link_terms.len() as u32);
            }
        }
        Self {
            link_terms,
            link_offsets,
            node_terms,
            node_offsets,
            class_terms,
            usage_terms,
            usage_offsets,
            cohorts,
            utility_terms,
            utility_offsets,
            rho_link_terms,
            rho_link_offsets,
        }
    }

    /// `flow`'s link terms, in [`Problem::links_of_flow`] order.
    pub fn link_terms(&self, flow: FlowId) -> &[(u32, f64)] {
        csr_row(&self.link_terms, &self.link_offsets, flow.index())
    }

    /// `flow`'s node terms, in [`Problem::nodes_of_flow`] order.
    pub fn node_terms(&self, flow: FlowId) -> &[NodePriceTerm] {
        csr_row(&self.node_terms, &self.node_offsets, flow.index())
    }

    /// The class terms of one node term, in
    /// [`Problem::classes_of_flow_at_node`] order.
    pub fn class_terms(&self, term: &NodePriceTerm) -> &[(u32, f64)] {
        self.class_terms
            .get(term.class_start as usize..term.class_end as usize)
            .unwrap_or(&[])
    }

    /// `link`'s usage terms `(flow index, L_{l,i})`, in
    /// [`Problem::flows_on_link`] order.
    pub fn link_usage_terms(&self, link: LinkId) -> &[(u32, f64)] {
        csr_row(&self.usage_terms, &self.usage_offsets, link.index())
    }

    /// `flow`'s rate-solve cohort, classified at build time.
    pub fn cohort(&self, flow: FlowId) -> FlowCohort {
        self.cohorts[flow.index()]
    }

    /// `flow`'s `(class index, utility weight)` pairs, in
    /// [`Problem::classes_of_flow`] order. The weighted-population mass
    /// `S = Σ n_j w_j` of a [`FlowCohort::Log`] or [`FlowCohort::Power`]
    /// flow is a dot product of this slice against the population vector.
    pub fn utility_terms(&self, flow: FlowId) -> &[(u32, f64)] {
        csr_row(&self.utility_terms, &self.utility_offsets, flow.index())
    }

    /// `flow`'s reliability link terms `(link index, L_{l,i} · loss_l)`, in
    /// [`Problem::links_of_flow`] order. The ρ best-response price of a flow
    /// is `redundancy · r_i` times the dot product of this slice against the
    /// link-price vector. Empty when the problem carries no
    /// [`crate::ReliabilitySpec`].
    pub fn rho_link_terms(&self, flow: FlowId) -> &[(u32, f64)] {
        csr_row(&self.rho_link_terms, &self.rho_link_offsets, flow.index())
    }
}

/// Row `i` of a CSR layout: `terms[offsets[i]..offsets[i + 1]]`, empty for
/// an out-of-range id or a corrupt offset pair. Ids are validated when the
/// table is built, so the total formulation costs nothing — it exists to
/// keep the per-delta aggregation paths free of panic branches.
fn csr_row<'a, T>(terms: &'a [T], offsets: &[u32], i: usize) -> &'a [T] {
    match (offsets.get(i), offsets.get(i + 1)) {
        (Some(&lo), Some(&hi)) => terms.get(lo as usize..hi as usize).unwrap_or(&[]),
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ProblemBuilder, RateBounds};
    use crate::utility::Utility;
    use crate::workloads;

    /// src → link → sink with two classes at the sink plus one flow-only
    /// node.
    fn fixture() -> Problem {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e6);
        let sink = b.add_node(9e5);
        let relay = b.add_node(5e5);
        let l = b.add_link_between(1e4, src, sink);
        let f = b.add_flow(src, RateBounds::new(10.0, 1000.0).unwrap());
        b.set_link_cost(f, l, 2.0);
        b.set_node_cost(f, sink, 3.0);
        b.set_node_cost(f, relay, 1.5);
        b.add_class(f, sink, 100, Utility::log(20.0), 19.0);
        b.add_class(f, sink, 50, Utility::log(5.0), 7.0);
        b.build().unwrap()
    }

    #[test]
    fn mirrors_problem_accessors() {
        let p = fixture();
        let t = PriceTermTable::new(&p);
        let f = FlowId::new(0);
        assert_eq!(t.link_terms(f), &[(0, 2.0)]);
        let nodes = t.node_terms(f);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].node, 1);
        assert_eq!(nodes[0].flow_cost, 3.0);
        assert_eq!(t.class_terms(&nodes[0]), &[(0, 19.0), (1, 7.0)]);
        assert_eq!(nodes[1].node, 2);
        assert_eq!(nodes[1].flow_cost, 1.5);
        assert!(t.class_terms(&nodes[1]).is_empty());
        assert_eq!(t.link_usage_terms(crate::ids::LinkId::new(0)), &[(0, 2.0)]);
    }

    #[test]
    fn covers_every_flow_and_link_of_a_real_workload() {
        let p = workloads::base_workload();
        let t = PriceTermTable::new(&p);
        let mut classes_seen = 0;
        for flow in p.flow_ids() {
            assert_eq!(t.link_terms(flow).len(), p.links_of_flow(flow).len());
            let node_terms = t.node_terms(flow);
            assert_eq!(node_terms.len(), p.nodes_of_flow(flow).len());
            for (term, &(node, f_cost)) in node_terms.iter().zip(p.nodes_of_flow(flow)) {
                assert_eq!(term.node as usize, node.index());
                assert_eq!(term.flow_cost.to_bits(), f_cost.to_bits());
                let expected: Vec<(u32, f64)> = p
                    .classes_of_flow_at_node(flow, node)
                    .map(|c| (c.index() as u32, p.class(c).consumer_cost))
                    .collect();
                assert_eq!(t.class_terms(term), expected.as_slice());
                classes_seen += expected.len();
            }
        }
        // Every class is attached to exactly one (flow, node) pair.
        assert_eq!(classes_seen, p.num_classes());
        for link in p.link_ids() {
            assert_eq!(t.link_usage_terms(link).len(), p.flows_on_link(link).len());
        }
    }

    #[test]
    fn cohorts_classify_by_class_shapes() {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e9);
        let sink = b.add_node(1e9);
        let bounds = RateBounds::new(10.0, 1000.0).unwrap();
        let all_log = b.add_flow(src, bounds);
        let uniform_pow = b.add_flow(src, bounds);
        let mixed_pow = b.add_flow(src, bounds);
        let mixed = b.add_flow(src, bounds);
        let classless = b.add_flow(src, bounds);
        for f in [all_log, uniform_pow, mixed_pow, mixed, classless] {
            b.set_node_cost(f, sink, 1.0);
        }
        b.add_class(all_log, sink, 10, Utility::log(20.0), 1.0);
        b.add_class(all_log, sink, 10, Utility::log(5.0), 1.0);
        b.add_class(uniform_pow, sink, 10, Utility::power(3.0, 0.5), 1.0);
        b.add_class(uniform_pow, sink, 10, Utility::power(7.0, 0.5), 1.0);
        b.add_class(mixed_pow, sink, 10, Utility::power(3.0, 0.25), 1.0);
        b.add_class(mixed_pow, sink, 10, Utility::power(3.0, 0.75), 1.0);
        b.add_class(mixed, sink, 10, Utility::log(20.0), 1.0);
        b.add_class(mixed, sink, 10, Utility::power(3.0, 0.5), 1.0);
        let p = b.build().unwrap();
        let t = PriceTermTable::new(&p);
        assert_eq!(t.cohort(all_log), FlowCohort::Log);
        assert_eq!(t.cohort(uniform_pow), FlowCohort::Power { exponent: 0.5 });
        assert_eq!(t.cohort(mixed_pow), FlowCohort::Generic);
        assert_eq!(t.cohort(mixed), FlowCohort::Generic);
        assert_eq!(t.cohort(classless), FlowCohort::Generic);
    }

    #[test]
    fn utility_terms_mirror_classes_of_flow() {
        let p = workloads::base_workload();
        let t = PriceTermTable::new(&p);
        let mut seen = 0;
        for flow in p.flow_ids() {
            let expected: Vec<(u32, f64)> = p
                .classes_of_flow(flow)
                .iter()
                .map(|&c| (c.index() as u32, p.class(c).utility.weight()))
                .collect();
            assert_eq!(t.utility_terms(flow), expected.as_slice());
            seen += expected.len();
        }
        assert_eq!(seen, p.num_classes());
    }

    #[test]
    fn rho_link_terms_weight_costs_by_loss() {
        let p = fixture();
        let t = PriceTermTable::new(&p);
        assert!(
            t.rho_link_terms(FlowId::new(0)).is_empty(),
            "no spec attached → no reliability column"
        );
        let spec = crate::ReliabilitySpec::uniform(
            1,
            1,
            crate::RhoBounds::new(0.5, 0.99).unwrap(),
            0.25,
            1.0,
        );
        let lossy = p.with_reliability(spec).unwrap();
        let t = PriceTermTable::new(&lossy);
        // Link cost 2.0 weighted by loss 0.25.
        assert_eq!(t.rho_link_terms(FlowId::new(0)), &[(0, 0.5)]);
        assert!(t.rho_link_terms(FlowId::new(9)).is_empty());
    }

    #[test]
    fn rebuild_after_flow_removal_zeroes_its_costs() {
        let p = fixture();
        let pruned = p.without_flow(FlowId::new(0));
        let t = PriceTermTable::new(&pruned);
        // `without_flow` keeps the entries but zeroes the coefficients; the
        // rebuilt table must reflect that, not the original costs.
        assert!(t.link_terms(FlowId::new(0)).iter().all(|&(_, c)| c == 0.0));
        assert!(t.node_terms(FlowId::new(0)).iter().all(|term| term.flow_cost == 0.0));
    }
}