//! Typed identifiers for the entities of the problem model.
//!
//! All identifiers are dense indices (`u32`) into the corresponding vectors
//! of a [`crate::Problem`]; the newtypes exist so that a flow index can never
//! be used where a class index is expected ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The dense index as `usize`, for direct vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies a message flow (producer stream).
    FlowId,
    "flow"
);
id_type!(
    /// Identifies a consumer class. Each class is associated with exactly one
    /// flow and attaches to exactly one node.
    ClassId,
    "class"
);
id_type!(
    /// Identifies an overlay node (broker).
    NodeId,
    "node"
);
id_type!(
    /// Identifies a unidirectional overlay link.
    LinkId,
    "link"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_and_accessors() {
        let f = FlowId::new(3);
        assert_eq!(f.index(), 3);
        assert_eq!(f.raw(), 3);
        assert_eq!(u32::from(f), 3);
        assert_eq!(FlowId::from(3u32), f);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(FlowId::new(1).to_string(), "flow1");
        assert_eq!(ClassId::new(2).to_string(), "class2");
        assert_eq!(NodeId::new(0).to_string(), "node0");
        assert_eq!(LinkId::new(9).to_string(), "link9");
    }

    #[test]
    fn ordering_and_hash() {
        assert!(NodeId::new(1) < NodeId::new(2));
        let set: HashSet<_> = [ClassId::new(1), ClassId::new(1), ClassId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
