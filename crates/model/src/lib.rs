//! Problem model for the LRGP reproduction.
//!
//! This crate defines the *inputs* of the optimization problem from
//! "Utility Optimization for Event-Driven Distributed Infrastructures"
//! (Lumezanu, Bhola, Astley — ICDCS 2006): overlay nodes and links with
//! capacities, message flows with rate bounds and resource costs, consumer
//! classes with utilities, plus allocations and their evaluation, and the
//! paper's experimental workloads.
//!
//! # Overview
//!
//! * [`ids`] — typed identifiers ([`FlowId`], [`ClassId`], [`NodeId`],
//!   [`LinkId`]).
//! * [`utility`] — the class utility functions `U_j(r)` (log, power,
//!   saturating, linear).
//! * [`problem`] — the validated [`Problem`] specification and its
//!   [`ProblemBuilder`].
//! * [`allocation`] — [`Allocation`] (rates + populations), objective
//!   evaluation and feasibility checking.
//! * [`workloads`] — Table 1's base workload, the §4.3 scaling transforms,
//!   §4.5 utility variants, a random generator, and link-bottleneck
//!   workloads (including lossy variants for the joint rate–reliability
//!   extension).
//! * [`delta`] — [`ProblemDelta`], batched first-class problem changes.
//! * [`analysis`] — utility/utilization breakdowns and fairness metrics.
//! * [`io`] — versioned JSON save/load for problems and allocations.
//!
//! # Examples
//!
//! ```
//! use lrgp_model::{workloads, Allocation};
//!
//! let problem = workloads::base_workload();
//! let allocation = Allocation::lower_bounds(&problem);
//! assert!(allocation.is_feasible(&problem, 0.0));
//! assert_eq!(allocation.total_utility(&problem), 0.0); // nobody admitted yet
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod analysis;
pub mod delta;
pub mod ids;
pub mod io;
pub mod problem;
pub mod terms;
pub mod utility;
pub mod workloads;

pub use allocation::{Allocation, FeasibilityReport, Violation};
pub use analysis::AllocationReport;
pub use delta::{DeltaOp, ProblemDelta};
pub use ids::{ClassId, FlowId, LinkId, NodeId};
pub use problem::{
    ClassSpec, FlowSpec, LinkSpec, NodeSpec, Problem, ProblemBuilder, RateBounds, ReliabilitySpec,
    RhoBounds, ValidationError,
};
pub use terms::{FlowCohort, NodePriceTerm, PriceTermTable};
pub use utility::{Utility, UtilityShape};
