//! Resource allocations and their evaluation.
//!
//! An [`Allocation`] assigns a rate to every flow and a population to every
//! consumer class. The functions here evaluate the paper's objective (1) and
//! check the constraint system (2)–(5) against a [`Problem`].

use crate::ids::{ClassId, FlowId, LinkId, NodeId};
use crate::problem::Problem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete assignment of flow rates and class populations.
///
/// Populations are stored as `f64` to support analytical (fractional)
/// relaxations; LRGP's greedy admission and the annealing baseline only ever
/// produce integral values. Use [`Allocation::populations_are_integral`] to
/// assert integrality.
///
/// # Examples
///
/// ```
/// use lrgp_model::{workloads, Allocation};
/// let p = workloads::base_workload();
/// let mut a = Allocation::lower_bounds(&p);
/// assert_eq!(a.rates().len(), p.num_flows());
/// a.set_population(lrgp_model::ClassId::new(0), 10.0);
/// assert!(a.total_utility(&p) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    rates: Vec<f64>,
    populations: Vec<f64>,
}

impl Allocation {
    /// Creates an allocation from raw vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the problem dimensions.
    pub fn from_parts(problem: &Problem, rates: Vec<f64>, populations: Vec<f64>) -> Self {
        assert_eq!(rates.len(), problem.num_flows(), "rate vector length mismatch");
        assert_eq!(
            populations.len(),
            problem.num_classes(),
            "population vector length mismatch"
        );
        Self { rates, populations }
    }

    /// The all-minimum allocation: every rate at `r_i^min`, every population
    /// zero. Always satisfies constraints (2) and (3); satisfies (4)/(5) in
    /// any problem whose minimum rates alone are feasible.
    pub fn lower_bounds(problem: &Problem) -> Self {
        Self {
            rates: problem.flow_ids().map(|f| problem.flow(f).bounds.min).collect(),
            populations: vec![0.0; problem.num_classes()],
        }
    }

    /// The all-maximum allocation: every rate at `r_i^max`, every population
    /// at `n_j^max`. Generally infeasible; useful as a search bound.
    pub fn upper_bounds(problem: &Problem) -> Self {
        Self {
            rates: problem.flow_ids().map(|f| problem.flow(f).bounds.max).collect(),
            populations: problem
                .class_ids()
                .map(|c| problem.class(c).max_population as f64)
                .collect(),
        }
    }

    /// Rate of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn rate(&self, flow: FlowId) -> f64 {
        self.rates[flow.index()]
    }

    /// Sets the rate of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_rate(&mut self, flow: FlowId, rate: f64) {
        self.rates[flow.index()] = rate;
    }

    /// Population of `class`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn population(&self, class: ClassId) -> f64 {
        self.populations[class.index()]
    }

    /// Sets the population of `class`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_population(&mut self, class: ClassId, population: f64) {
        self.populations[class.index()] = population;
    }

    /// All rates, indexed by flow id.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// All populations, indexed by class id.
    pub fn populations(&self) -> &[f64] {
        &self.populations
    }

    /// `true` if every population is a whole number.
    pub fn populations_are_integral(&self) -> bool {
        self.populations.iter().all(|n| n.fract() == 0.0)
    }

    /// The objective (1): `Σ_i Σ_{j∈C_i} n_j · U_j(r_i)`.
    pub fn total_utility(&self, problem: &Problem) -> f64 {
        let mut total = 0.0;
        for class in problem.class_ids() {
            let spec = problem.class(class);
            let n = self.populations[class.index()];
            if n > 0.0 {
                total += n * spec.utility.value(self.rates[spec.flow.index()]);
            }
        }
        total
    }

    /// Resource used at `node` (left-hand side of constraint (5)):
    /// `Σ_{i∈nodeMap(b)} (F_{b,i} r_i + Σ_{j∈attachMap_i(b)} G_{b,j} n_j r_i)`.
    pub fn node_usage(&self, problem: &Problem, node: NodeId) -> f64 {
        let mut used = 0.0;
        for &flow in problem.flows_at_node(node) {
            let r = self.rates[flow.index()];
            used += problem.flow_node_cost(node, flow) * r;
        }
        for &class in problem.classes_at_node(node) {
            let spec = problem.class(class);
            let r = self.rates[spec.flow.index()];
            used += spec.consumer_cost * self.populations[class.index()] * r;
        }
        used
    }

    /// Resource used on `link` (left-hand side of constraint (4)):
    /// `Σ_{i∈linkMap(l)} L_{l,i} r_i`.
    pub fn link_usage(&self, problem: &Problem, link: LinkId) -> f64 {
        problem
            .flows_on_link(link)
            .iter()
            .map(|&flow| problem.link_cost(link, flow) * self.rates[flow.index()])
            .sum()
    }

    /// Checks all constraints and returns a report of every violation.
    ///
    /// `tol` is an absolute slack: a usage exceeding capacity by at most
    /// `tol` (or a rate/population outside its bounds by at most `tol`) is
    /// not reported. Use `0.0` for exact checking.
    pub fn check_feasibility(&self, problem: &Problem, tol: f64) -> FeasibilityReport {
        let mut violations = Vec::new();
        for flow in problem.flow_ids() {
            let bounds = problem.flow(flow).bounds;
            let r = self.rates[flow.index()];
            if !bounds.contains(r, tol) {
                violations.push(Violation::RateOutOfBounds { flow, rate: r, bounds });
            }
        }
        for class in problem.class_ids() {
            let n = self.populations[class.index()];
            let max = problem.class(class).max_population as f64;
            if n < -tol || n > max + tol {
                violations.push(Violation::PopulationOutOfBounds { class, population: n, max });
            }
        }
        for node in problem.node_ids() {
            let used = self.node_usage(problem, node);
            let cap = problem.node(node).capacity;
            if used > cap + tol {
                violations.push(Violation::NodeOverload { node, usage: used, capacity: cap });
            }
        }
        for link in problem.link_ids() {
            let used = self.link_usage(problem, link);
            let cap = problem.link(link).capacity;
            if used > cap + tol {
                violations.push(Violation::LinkOverload { link, usage: used, capacity: cap });
            }
        }
        FeasibilityReport { violations }
    }

    /// `true` when [`Self::check_feasibility`] finds no violations.
    pub fn is_feasible(&self, problem: &Problem, tol: f64) -> bool {
        self.check_feasibility(problem, tol).is_feasible()
    }
}

/// A single constraint violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A flow rate lies outside its bounds (constraint (3)).
    RateOutOfBounds {
        /// The offending flow.
        flow: FlowId,
        /// Its current rate.
        rate: f64,
        /// The declared bounds.
        bounds: crate::problem::RateBounds,
    },
    /// A class population lies outside `[0, n_j^max]` (constraint (2)).
    PopulationOutOfBounds {
        /// The offending class.
        class: ClassId,
        /// Its current population.
        population: f64,
        /// The maximum `n_j^max`.
        max: f64,
    },
    /// A node's usage exceeds its capacity (constraint (5)).
    NodeOverload {
        /// The overloaded node.
        node: NodeId,
        /// Resource in use.
        usage: f64,
        /// The node capacity `c_b`.
        capacity: f64,
    },
    /// A link's usage exceeds its capacity (constraint (4)).
    LinkOverload {
        /// The overloaded link.
        link: LinkId,
        /// Resource in use.
        usage: f64,
        /// The link capacity `c_l`.
        capacity: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RateOutOfBounds { flow, rate, bounds } => write!(
                f,
                "{flow} rate {rate} outside [{}, {}]",
                bounds.min, bounds.max
            ),
            Violation::PopulationOutOfBounds { class, population, max } => {
                write!(f, "{class} population {population} outside [0, {max}]")
            }
            Violation::NodeOverload { node, usage, capacity } => {
                write!(f, "{node} overloaded: {usage} > {capacity}")
            }
            Violation::LinkOverload { link, usage, capacity } => {
                write!(f, "{link} overloaded: {usage} > {capacity}")
            }
        }
    }
}

/// The result of a feasibility check: all violations found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    violations: Vec<Violation>,
}

impl FeasibilityReport {
    /// `true` when no constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in problem order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

impl fmt::Display for FeasibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return f.write_str("feasible");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ProblemBuilder, RateBounds};
    use crate::utility::Utility;

    /// One flow (bounds [10, 1000]) into one sink with F = 3 and one class
    /// (n_max = 100, G = 19, U = 20·log(1+r)), node capacity 1e5, plus one
    /// link with L = 2 and capacity 1e3.
    fn fixture() -> Problem {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e6);
        let sink = b.add_node(1e5);
        let l = b.add_link_between(1e3, src, sink);
        let f = b.add_flow(src, RateBounds::new(10.0, 1000.0).unwrap());
        b.set_node_cost(f, sink, 3.0);
        b.set_link_cost(f, l, 2.0);
        b.add_class(f, sink, 100, Utility::log(20.0), 19.0);
        b.build().unwrap()
    }

    #[test]
    fn lower_and_upper_bound_allocations() {
        let p = fixture();
        let lo = Allocation::lower_bounds(&p);
        assert_eq!(lo.rates(), &[10.0]);
        assert_eq!(lo.populations(), &[0.0]);
        assert!(lo.populations_are_integral());
        let hi = Allocation::upper_bounds(&p);
        assert_eq!(hi.rates(), &[1000.0]);
        assert_eq!(hi.populations(), &[100.0]);
    }

    #[test]
    fn utility_matches_hand_computation() {
        let p = fixture();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 99.0);
        a.set_population(ClassId::new(0), 7.0);
        let expected = 7.0 * 20.0 * (100.0f64).ln();
        assert!((a.total_utility(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn node_usage_includes_flow_and_consumer_terms() {
        let p = fixture();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 50.0);
        a.set_population(ClassId::new(0), 4.0);
        // F·r + G·n·r = 3·50 + 19·4·50
        let expected = 3.0 * 50.0 + 19.0 * 4.0 * 50.0;
        assert!((a.node_usage(&p, NodeId::new(1)) - expected).abs() < 1e-9);
        // Source node has no costs.
        assert_eq!(a.node_usage(&p, NodeId::new(0)), 0.0);
    }

    #[test]
    fn link_usage_scales_with_rate() {
        let p = fixture();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 123.0);
        assert!((a.link_usage(&p, LinkId::new(0)) - 246.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_detects_each_violation_kind() {
        let p = fixture();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 2000.0); // out of bounds AND overloads
        a.set_population(ClassId::new(0), 150.0); // above n_max
        let report = a.check_feasibility(&p, 0.0);
        assert!(!report.is_feasible());
        let kinds: Vec<_> = report
            .violations()
            .iter()
            .map(|v| match v {
                Violation::RateOutOfBounds { .. } => "rate",
                Violation::PopulationOutOfBounds { .. } => "pop",
                Violation::NodeOverload { .. } => "node",
                Violation::LinkOverload { .. } => "link",
            })
            .collect();
        assert!(kinds.contains(&"rate"));
        assert!(kinds.contains(&"pop"));
        assert!(kinds.contains(&"node"));
        assert!(kinds.contains(&"link"));
        assert!(report.to_string().contains("violation"));
    }

    #[test]
    fn feasibility_tolerance_absorbs_slack() {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e6);
        let sink = b.add_node(30.0); // exactly F·r at r = 10
        let f = b.add_flow(src, RateBounds::new(10.0, 1000.0).unwrap());
        b.set_node_cost(f, sink, 3.0);
        b.add_class(f, sink, 100, Utility::log(20.0), 19.0);
        let p = b.build().unwrap();
        let mut a = Allocation::lower_bounds(&p);
        a.set_rate(FlowId::new(0), 10.0 + 1e-9); // overloads the node by 3e-9
        assert!(!a.is_feasible(&p, 0.0));
        assert!(a.check_feasibility(&p, 1e-6).is_feasible());
    }

    #[test]
    fn lower_bounds_feasible_in_fixture() {
        let p = fixture();
        let a = Allocation::lower_bounds(&p);
        let report = a.check_feasibility(&p, 0.0);
        assert!(report.is_feasible(), "{report}");
        assert_eq!(report.to_string(), "feasible");
    }

    #[test]
    fn upper_bounds_infeasible_in_fixture() {
        let p = fixture();
        assert!(!Allocation::upper_bounds(&p).is_feasible(&p, 0.0));
    }

    #[test]
    fn fractional_population_detected() {
        let p = fixture();
        let mut a = Allocation::lower_bounds(&p);
        a.set_population(ClassId::new(0), 1.5);
        assert!(!a.populations_are_integral());
    }

    #[test]
    #[should_panic(expected = "rate vector length mismatch")]
    fn from_parts_checks_lengths() {
        let p = fixture();
        let _ = Allocation::from_parts(&p, vec![], vec![0.0]);
    }

    #[test]
    fn zero_population_skips_utility_evaluation() {
        // Power utilities at rate 0 would contribute 0 anyway, but the n = 0
        // guard also protects against NaN-producing custom shapes.
        let p = fixture();
        let a = Allocation::lower_bounds(&p);
        assert_eq!(a.total_utility(&p), 0.0);
    }
}
