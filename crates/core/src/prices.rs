//! Deprecated location of [`PriceVector`] and price aggregation.
//!
//! The aggregation module merged with the former `lrgp::price` update rules
//! into [`crate::kernel::price`]; this re-export keeps the old path
//! compiling for one release.

pub use crate::kernel::price::PriceVector;
