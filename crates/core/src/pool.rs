//! The persistent worker pool behind [`Parallelism::Threads`] and
//! [`Parallelism::Auto`].
//!
//! Before this module existed, every sharded phase spawned fresh
//! [`std::thread::scope`] workers and joined them — per step, per phase.
//! The tracked benchmarks showed that spawn/join cost dominating the kernel
//! work at every measured scale, making `Threads` a regression over
//! `Sequential`. The pool inverts the lifecycle: workers are spawned **once
//! per engine** (one fewer than the plan's maximum concurrency — the caller
//! is always shard 0), park on a condvar between steps, and receive work
//! through a preallocated job slot. A steady-state step performs **no
//! thread spawning, no channel allocation, and no `O(problem)` copying**:
//! job inputs are *moved* into the slot (pointer swaps) and moved back out
//! after the phase.
//!
//! # Handoff protocol
//!
//! ```text
//! caller                                   worker w (of W)
//! ──────────────────────────────────────   ─────────────────────────────
//! job.write()  ← move inputs in
//! gate.lock(): epoch += 1,
//!   participants = shards − 1,
//!   remaining = participants
//! go.notify_all()            ──────────▶   go.wait() sees new epoch
//! job.read()   ← run shard 0 inline        job.read() ← run shard w + 1
//! (drop read guard)                        slot[w].lock() ← results
//! gate.lock():                             gate.lock(): remaining −= 1
//!   while remaining > 0:      ◀──────────  done.notify_all() when 0
//!     done.wait()
//! job.write()  ← move inputs back out
//! slot[w].lock() ← drain results, in shard order
//! ```
//!
//! The caller never holds the job's write lock while workers run, and
//! workers only read it; the per-worker result slots are uncontended by
//! construction (each worker touches only its own, and the caller drains
//! them only after `remaining == 0`). Workers that are not participants of
//! an epoch just record the epoch and park again, so a phase with fewer
//! shards than workers cannot lose a wakeup.
//!
//! # Panic containment
//!
//! Every shard — on workers *and* the caller's inline shard — runs under
//! [`std::panic::catch_unwind`]. A panicking kernel therefore cannot
//! poison a lock or leave `remaining` undrained: the worker stores the
//! payload in its result slot and parks normally, and the caller re-raises
//! the first payload (inline first, then ascending worker index — a
//! deterministic choice) with [`std::panic::resume_unwind`] *after* moving
//! the job inputs back out. The engine keeps its buffers, the pool keeps
//! its workers, and the next step runs normally — the same contract the
//! old scoped-thread path had through `join_worker`, plus reusability.
//!
//! # Dispatch policy
//!
//! Sharding and *dispatching* are separate decisions. The shard layout
//! ([`shard_spans`]) depends only on the element count and the plan's
//! worker count, and the results are applied in shard order, so executing
//! the shards on parked workers or inline on the caller is bit-identical
//! by construction. The pool dispatches to its workers only when the
//! hardware actually offers a second execution context
//! ([`std::thread::available_parallelism`], resolved once at pool
//! construction); on a single-core host every shard runs inline, which is
//! the fastest valid schedule there. Tests force cross-thread dispatch
//! through [`Engine::force_pool_dispatch`](crate::Engine::force_pool_dispatch)
//! to exercise the real handoff regardless of the host.
//!
//! [`Parallelism::Threads`]: crate::plan::Parallelism::Threads
//! [`Parallelism::Auto`]: crate::plan::Parallelism::Auto

use crate::kernel::admission::{
    allocate_consumers_into, AdmissionPolicy, PopulationMode,
};
use crate::kernel::price::PriceVector;
use crate::kernel::rate::{solve_rate, AggregateUtility};
use crate::kernel::reliability::{solve_flow_rho, solve_flow_rho_vectorized};
use crate::kernel::vector::{solve_flow_rate_from_table, GroupedAggregate};
use crate::plan::Numerics;
use lrgp_model::{ClassId, FlowId, NodeId, PriceTermTable, Problem};
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::{Builder, JoinHandle, ThreadId};

/// The contiguous half-open spans that partition a work list of `len`
/// elements into at most `workers` shards.
///
/// Guarantees, for every `len` and `workers` (including `len == 0`,
/// `len == 1`, and `workers > len`):
///
/// * the spans are disjoint, ascending, and their concatenation is exactly
///   `0..len` — no overlap, no gap, order preserved;
/// * every span is non-empty, and there are `min(workers, ceil(len/chunk))`
///   of them where `chunk = ceil(len / workers)`;
/// * span sizes differ by at most `chunk − floor(len/chunk)` (all spans are
///   `chunk` long except a possibly shorter final one).
///
/// Both the pool dispatch and the sequential fallback iterate these spans
/// in order, which is what makes the two schedules bit-identical.
pub fn shard_spans(len: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    let chunk = shard_chunk(len, workers);
    let count = if chunk == 0 { 0 } else { len.div_ceil(chunk) };
    (0..count).map(move |s| s * chunk..((s + 1) * chunk).min(len))
}

/// The shard chunk size for `len` elements over at most `workers` shards
/// (0 when `len == 0`).
pub fn shard_chunk(len: usize, workers: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(workers.max(1))
    }
}

/// The number of non-empty shards [`shard_spans`] yields.
pub fn shard_count(len: usize, workers: usize) -> usize {
    let chunk = shard_chunk(len, workers);
    if chunk == 0 {
        0
    } else {
        len.div_ceil(chunk)
    }
}

/// Locks a mutex, treating poisoning as spurious: every shard runs under
/// `catch_unwind`, so a poisoned pool lock can only come from a panic in
/// the pool's own bookkeeping, and the data is still structurally sound.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One node's reusable admission scratch: the previously *sorted* BC order
/// (kept as the next recompute's starting permutation) and the population
/// decisions of the last recompute.
///
/// Wrapped in a `Mutex` inside [`crate::exec::StepState`] so disjoint
/// shards of pooled workers can re-admit their nodes concurrently; each
/// node belongs to exactly one shard, so the locks are uncontended by
/// construction, and the sequential path bypasses them entirely with
/// `Mutex::get_mut`.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdmissionOrder {
    /// The node's classes with their BC ratios, in last-recompute sorted
    /// order (seeded from `classes_at_node` order).
    pub(crate) order: Vec<(ClassId, f64)>,
    /// The populations decided by the last recompute (admission order).
    pub(crate) populations: Vec<(ClassId, f64)>,
}

/// The rate phase's job: everything a worker needs to solve a shard of
/// dirty flows, moved in from the engine for the duration of the phase.
pub(crate) struct RateJob {
    pub(crate) problem: Arc<Problem>,
    pub(crate) terms: Arc<PriceTermTable>,
    /// The sorted dirty-flow list (moved from the executor).
    pub(crate) dirty: Vec<u32>,
    /// Previous-iteration rates (read-only: the solver's fallback input).
    pub(crate) rates: Vec<f64>,
    /// Previous-iteration populations (read-only).
    pub(crate) populations: Vec<f64>,
    /// Previous-iteration prices (read-only).
    pub(crate) prices: PriceVector,
    /// Shard chunk size ([`shard_chunk`] of the dirty length).
    pub(crate) chunk: usize,
    /// Which solver family to run: the bitwise-reproducible scalar kernel
    /// or the lane-batched cohort-dispatched one.
    pub(crate) numerics: Numerics,
    /// Panic-injection test hook: solving this flow id panics.
    #[cfg(test)]
    pub(crate) panic_on_flow: Option<u32>,
}

impl RateJob {
    /// Solves shard `shard`'s dirty flows into `out` as `(flow, rate)`
    /// pairs, in dirty-list order.
    pub(crate) fn run_shard(
        &self,
        shard: usize,
        out: &mut Vec<(u32, f64)>,
        agg: &mut AggregateUtility,
        grouped: &mut GroupedAggregate,
    ) {
        out.clear();
        let lo = shard * self.chunk;
        if self.chunk == 0 || lo >= self.dirty.len() {
            return;
        }
        let hi = (lo + self.chunk).min(self.dirty.len());
        for &f in self.dirty.get(lo..hi).unwrap_or(&[]) {
            #[cfg(test)]
            if self.panic_on_flow == Some(f) {
                std::panic::panic_any(format!("injected rate-kernel panic on flow {f}"));
            }
            let flow = FlowId::new(f);
            let next = if self.numerics.vectorized() {
                solve_flow_rate_from_table(
                    &self.problem,
                    &self.terms,
                    &self.prices,
                    &self.populations,
                    flow,
                    self.rates[f as usize],
                    grouped,
                )
            } else {
                agg.refill_for_flow(&self.problem, flow, &self.populations);
                let price =
                    self.prices.aggregate_price_from_table(&self.terms, flow, &self.populations);
                solve_rate(agg, price, self.problem.flow(flow).bounds, self.rates[f as usize])
            };
            out.push((f, next));
        }
    }
}

/// The reliability phase's job: a shard of dirty flows whose ρ
/// best-response is re-solved against the current link prices and the
/// freshly solved rates (see [`crate::kernel::reliability`]). Dispatched
/// only under [`crate::plan::Reliability::Joint`] on problems carrying a
/// [`lrgp_model::ReliabilitySpec`].
pub(crate) struct ReliabilityJob {
    pub(crate) problem: Arc<Problem>,
    pub(crate) terms: Arc<PriceTermTable>,
    /// The sorted dirty-flow list (moved from the executor).
    pub(crate) dirty: Vec<u32>,
    /// Previous-iteration reliabilities (read-only: the solver's fallback).
    pub(crate) rhos: Vec<f64>,
    /// This-iteration rates (read-only: they scale the ρ price).
    pub(crate) rates: Vec<f64>,
    /// Previous-iteration populations (read-only).
    pub(crate) populations: Vec<f64>,
    /// Previous-iteration prices (read-only).
    pub(crate) prices: PriceVector,
    /// The spec's redundancy factor.
    pub(crate) redundancy: f64,
    /// Shard chunk size ([`shard_chunk`] of the dirty length).
    pub(crate) chunk: usize,
    /// Which solver family to run.
    pub(crate) numerics: Numerics,
}

impl ReliabilityJob {
    /// Solves shard `shard`'s dirty flows' ρ into `out` as `(flow, rho)`
    /// pairs, in dirty-list order.
    pub(crate) fn run_shard(&self, shard: usize, out: &mut Vec<(u32, f64)>) {
        out.clear();
        let lo = shard * self.chunk;
        if self.chunk == 0 || lo >= self.dirty.len() {
            return;
        }
        let hi = (lo + self.chunk).min(self.dirty.len());
        let link_prices = self.prices.link_prices();
        for &f in self.dirty.get(lo..hi).unwrap_or(&[]) {
            let flow = FlowId::new(f);
            let bounds = self.problem.rho_bounds(flow).unwrap_or_default();
            let next = if self.numerics.vectorized() {
                solve_flow_rho_vectorized(
                    &self.terms,
                    flow,
                    link_prices,
                    &self.populations,
                    self.rates[f as usize],
                    bounds,
                    self.redundancy,
                    self.rhos[f as usize],
                )
            } else {
                solve_flow_rho(
                    &self.terms,
                    flow,
                    link_prices,
                    &self.populations,
                    self.rates[f as usize],
                    bounds,
                    self.redundancy,
                    self.rhos[f as usize],
                )
            };
            out.push((f, next));
        }
    }
}

/// The admission phase's job: a shard of dirty nodes to re-admit against
/// the freshly solved rates. Workers lock only the [`AdmissionOrder`]s of
/// their own shard's nodes.
pub(crate) struct AdmissionJob {
    pub(crate) problem: Arc<Problem>,
    /// The sorted dirty-node list (moved from the executor).
    pub(crate) dirty: Vec<u32>,
    /// This-iteration rates (read-only).
    pub(crate) rates: Vec<f64>,
    /// Per-node admission scratch (moved from the executor).
    pub(crate) orders: Vec<Mutex<AdmissionOrder>>,
    pub(crate) mode: PopulationMode,
    pub(crate) policy: AdmissionPolicy,
    /// Shard chunk size ([`shard_chunk`] of the dirty length).
    pub(crate) chunk: usize,
}

impl AdmissionJob {
    /// Re-admits shard `shard`'s dirty nodes, updating their
    /// [`AdmissionOrder`]s in place and pushing `(node, used, bc)` into
    /// `out` in dirty-list order.
    pub(crate) fn run_shard(&self, shard: usize, out: &mut Vec<(u32, f64, f64)>) {
        out.clear();
        let lo = shard * self.chunk;
        if self.chunk == 0 || lo >= self.dirty.len() {
            return;
        }
        let hi = (lo + self.chunk).min(self.dirty.len());
        for &b in self.dirty.get(lo..hi).unwrap_or(&[]) {
            let mut slot = lock_unpoisoned(&self.orders[b as usize]);
            let slot = &mut *slot;
            let (used, bc) = allocate_consumers_into(
                &self.problem,
                NodeId::new(b),
                &self.rates,
                self.mode,
                self.policy,
                &mut slot.order,
                &mut slot.populations,
            );
            out.push((b, used, bc));
        }
    }
}

/// A phase's work order, parked in the pool's job slot while workers run.
pub(crate) enum Job {
    /// No phase in flight; the slot's resting state.
    Idle,
    /// Phase 1: solve dirty rates.
    Rates(RateJob),
    /// Phase 1b: re-solve dirty flows' reliabilities (Joint plans only).
    Reliabilities(ReliabilityJob),
    /// Phase 2a: re-run dirty admissions.
    Admissions(AdmissionJob),
}

/// A worker's result slot. Uncontended by construction: the worker writes
/// it while the caller waits on `done`, and the caller drains it after
/// `remaining == 0`.
struct WorkerSlot {
    /// Rate-phase results, `(flow, rate)` in shard order.
    rates_out: Vec<(u32, f64)>,
    /// Reliability-phase results, `(flow, rho)` in shard order.
    rhos_out: Vec<(u32, f64)>,
    /// Admission-phase results, `(node, used, bc)` in shard order.
    admissions_out: Vec<(u32, f64, f64)>,
    /// Per-worker rate scratch, reused across steps.
    agg: AggregateUtility,
    /// Per-worker grouped-aggregate scratch for vectorized rate shards.
    grouped: GroupedAggregate,
    /// A caught panic payload from the last shard, if any.
    panic: Option<Box<dyn Any + Send>>,
    /// Number of shards this worker has executed (test instrumentation).
    jobs_completed: u64,
    /// The worker's OS thread id, set once at startup (test
    /// instrumentation: stable ids prove reuse rather than respawn).
    thread_id: Option<ThreadId>,
}

impl WorkerSlot {
    fn new() -> Self {
        Self {
            rates_out: Vec::new(),
            rhos_out: Vec::new(),
            admissions_out: Vec::new(),
            agg: AggregateUtility::default(),
            grouped: GroupedAggregate::default(),
            panic: None,
            jobs_completed: 0,
            thread_id: None,
        }
    }
}

/// Wake/park bookkeeping, guarded by one mutex.
struct Gate {
    /// Bumped once per dispatched phase; workers park until it moves.
    epoch: u64,
    /// Workers participating in the current epoch (shards − 1). Workers
    /// with index ≥ this just record the epoch and park again.
    participants: usize,
    /// Participants that have not yet finished the current epoch.
    remaining: usize,
    /// Set once at teardown; workers exit their loop on the next wake.
    shutdown: bool,
}

struct PoolShared {
    gate: Mutex<Gate>,
    /// Workers park here between phases.
    go: Condvar,
    /// The caller parks here until `remaining == 0`.
    done: Condvar,
    /// The phase's inputs; written by the caller, read by participants.
    job: RwLock<Job>,
    /// One result slot per worker.
    slots: Vec<Mutex<WorkerSlot>>,
    /// Test hook: dispatch to workers even on single-core hosts.
    force_dispatch: AtomicBool,
}

/// A persistent, parked worker pool. Created once per engine; workers
/// live until the pool is dropped.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// `available_parallelism()` resolved once at construction.
    hardware_threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("hardware_threads", &self.hardware_threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` parked worker threads. Spawn failures degrade the
    /// pool (fewer workers) instead of panicking; a pool that ends up with
    /// zero workers simply never dispatches.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            gate: Mutex::new(Gate {
                epoch: 0,
                participants: 0,
                remaining: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            job: RwLock::new(Job::Idle),
            slots: (0..workers).map(|_| Mutex::new(WorkerSlot::new())).collect(),
            force_dispatch: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = Builder::new()
                .name(format!("lrgp-pool-{w}"))
                .spawn(move || worker_loop(worker_shared, w));
            if let Ok(handle) = spawned {
                handles.push(handle);
            }
        }
        let hardware_threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { shared, handles, hardware_threads }
    }

    /// Number of live worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// `true` when a multi-shard phase should hand shards to the parked
    /// workers rather than run them inline: there must be workers to hand
    /// to, and either a second hardware execution context or the test
    /// force flag (see the module docs on why inline is otherwise both
    /// valid and faster).
    pub(crate) fn dispatches(&self) -> bool {
        !self.handles.is_empty()
            && (self.hardware_threads > 1
                || self.shared.force_dispatch.load(Ordering::Relaxed))
    }

    /// Test hook: force cross-thread dispatch regardless of the host's
    /// hardware parallelism.
    pub(crate) fn set_force_dispatch(&self, force: bool) {
        self.shared.force_dispatch.store(force, Ordering::Relaxed);
    }

    /// The worker threads' OS ids, in worker order (test instrumentation).
    pub(crate) fn worker_thread_ids(&self) -> Vec<ThreadId> {
        self.handles.iter().map(|h| h.thread().id()).collect()
    }

    /// Shards executed per worker since construction (test
    /// instrumentation).
    pub(crate) fn jobs_completed(&self) -> Vec<u64> {
        self.shared
            .slots
            .iter()
            .map(|s| lock_unpoisoned(s).jobs_completed)
            .collect()
    }

    /// Runs `job` across `shards` shards: shards `1..shards` on workers,
    /// shard 0 inline through `inline` (also under `catch_unwind`).
    /// Returns the job (with all moved-in inputs intact) and the first
    /// caught panic payload, inline's first, then by ascending worker
    /// index.
    ///
    /// The caller must have checked [`Self::dispatches`] and must pass
    /// `shards − 1 <= self.workers()`.
    pub(crate) fn run(
        &self,
        job: Job,
        shards: usize,
        inline: impl FnOnce(&Job),
    ) -> (Job, Option<Box<dyn Any + Send>>) {
        let participants = shards.saturating_sub(1).min(self.handles.len());
        debug_assert!(shards.saturating_sub(1) <= self.handles.len());
        {
            let mut slot = self
                .shared
                .job
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *slot = job;
        }
        {
            let mut gate = lock_unpoisoned(&self.shared.gate);
            gate.epoch += 1;
            gate.participants = participants;
            gate.remaining = participants;
            self.shared.go.notify_all();
        }
        let inline_panic = {
            let guard = self.shared.job.read().unwrap_or_else(PoisonError::into_inner);
            catch_unwind(AssertUnwindSafe(|| inline(&guard))).err()
        };
        {
            let mut gate = lock_unpoisoned(&self.shared.gate);
            while gate.remaining > 0 {
                gate = self
                    .shared
                    .done
                    .wait(gate)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let job = {
            let mut slot = self
                .shared
                .job
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *slot, Job::Idle)
        };
        let mut first_panic = inline_panic;
        for w in 0..participants {
            let mut slot = lock_unpoisoned(&self.shared.slots[w]);
            if first_panic.is_none() {
                first_panic = slot.panic.take();
            } else {
                slot.panic = None;
            }
        }
        (job, first_panic)
    }

    /// Drains worker `w`'s rate-phase results into `apply`, in shard
    /// order. Call with ascending `w` after [`Self::run`].
    pub(crate) fn drain_rates(&self, w: usize, apply: &mut impl FnMut(u32, f64)) {
        let mut slot = lock_unpoisoned(&self.shared.slots[w]);
        for &(f, rate) in &slot.rates_out {
            apply(f, rate);
        }
        slot.rates_out.clear();
    }

    /// Drains worker `w`'s reliability-phase results into `apply`, in shard
    /// order. Call with ascending `w` after [`Self::run`].
    pub(crate) fn drain_rhos(&self, w: usize, apply: &mut impl FnMut(u32, f64)) {
        let mut slot = lock_unpoisoned(&self.shared.slots[w]);
        for &(f, rho) in &slot.rhos_out {
            apply(f, rho);
        }
        slot.rhos_out.clear();
    }

    /// Drains worker `w`'s admission-phase results into `apply`, in shard
    /// order. Call with ascending `w` after [`Self::run`].
    pub(crate) fn drain_admissions(&self, w: usize, apply: &mut impl FnMut(u32, f64, f64)) {
        let mut slot = lock_unpoisoned(&self.shared.slots[w]);
        for &(b, used, bc) in &slot.admissions_out {
            apply(b, used, bc);
        }
        slot.admissions_out.clear();
    }

    /// Clears every worker's pending results without applying them: the
    /// panic path, where partial shard outputs must not leak into the next
    /// step's drains.
    pub(crate) fn discard_outputs(&self) {
        for slot in &self.shared.slots {
            let mut slot = lock_unpoisoned(slot);
            slot.rates_out.clear();
            slot.rhos_out.clear();
            slot.admissions_out.clear();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = lock_unpoisoned(&self.shared.gate);
            gate.shutdown = true;
            self.shared.go.notify_all();
        }
        for handle in self.handles.drain(..) {
            // Worker panics are caught and parked in slots; a join error
            // here could only come from pool bookkeeping and must not
            // double-panic during drop.
            let _ = handle.join();
        }
    }
}

/// The body of one pooled worker: park, run the assigned shard of the
/// current job, publish results, repeat until shutdown.
fn worker_loop(shared: Arc<PoolShared>, w: usize) {
    {
        let mut slot = lock_unpoisoned(&shared.slots[w]);
        slot.thread_id = Some(std::thread::current().id());
    }
    let mut seen = 0u64;
    loop {
        let participate = {
            let mut gate = lock_unpoisoned(&shared.gate);
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen {
                    seen = gate.epoch;
                    break w < gate.participants;
                }
                gate = shared.go.wait(gate).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if !participate {
            continue;
        }
        {
            let guard = shared.job.read().unwrap_or_else(PoisonError::into_inner);
            let mut slot = lock_unpoisoned(&shared.slots[w]);
            let slot = &mut *slot;
            // Worker w runs shard w + 1; the caller is always shard 0.
            let shard = w + 1;
            let outcome = match &*guard {
                Job::Idle => Ok(()),
                Job::Rates(job) => catch_unwind(AssertUnwindSafe(|| {
                    job.run_shard(shard, &mut slot.rates_out, &mut slot.agg, &mut slot.grouped)
                })),
                Job::Reliabilities(job) => catch_unwind(AssertUnwindSafe(|| {
                    job.run_shard(shard, &mut slot.rhos_out)
                })),
                Job::Admissions(job) => catch_unwind(AssertUnwindSafe(|| {
                    job.run_shard(shard, &mut slot.admissions_out)
                })),
            };
            if let Err(payload) = outcome {
                // A panicking shard publishes no results.
                slot.rates_out.clear();
                slot.rhos_out.clear();
                slot.admissions_out.clear();
                slot.panic = Some(payload);
            }
            slot.jobs_completed += 1;
        }
        let mut gate = lock_unpoisoned(&shared.gate);
        gate.remaining -= 1;
        if gate.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// The engine's handle on its pool: `None` when the plan can never use
/// more than one execution context. Cloning an engine spawns a fresh pool
/// of the same size — workers are never shared between engines.
#[derive(Debug, Default)]
pub(crate) struct PoolHandle {
    pool: Option<WorkerPool>,
}

impl PoolHandle {
    /// A pool sized for `max_concurrency` total execution contexts
    /// (caller + workers); `<= 1` means no pool at all.
    pub(crate) fn for_concurrency(max_concurrency: usize) -> Self {
        if max_concurrency <= 1 {
            Self { pool: None }
        } else {
            Self { pool: Some(WorkerPool::new(max_concurrency - 1)) }
        }
    }

    /// The pool, if one exists.
    pub(crate) fn get(&self) -> Option<&WorkerPool> {
        self.pool.as_ref()
    }
}

impl Clone for PoolHandle {
    fn clone(&self) -> Self {
        match &self.pool {
            None => Self { pool: None },
            Some(pool) => Self::for_concurrency(pool.workers() + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spans_cover_exactly() {
        for len in 0..40usize {
            for workers in 1..10usize {
                let spans: Vec<_> = shard_spans(len, workers).collect();
                let mut covered = Vec::new();
                for s in &spans {
                    assert!(!s.is_empty(), "empty span for len {len} workers {workers}");
                    covered.extend(s.clone());
                }
                let expect: Vec<usize> = (0..len).collect();
                assert_eq!(covered, expect, "len {len} workers {workers}");
                assert!(spans.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn shard_spans_degenerate_cases() {
        assert_eq!(shard_spans(0, 4).count(), 0);
        assert_eq!(shard_spans(1, 8).collect::<Vec<_>>(), vec![0..1]);
        assert_eq!(shard_spans(3, 8).count(), 3);
        assert_eq!(shard_chunk(0, 3), 0);
        assert_eq!(shard_count(0, 3), 0);
        assert_eq!(shard_count(10, 3), 3);
    }

    #[test]
    fn pool_runs_and_reuses_workers() {
        let pool = WorkerPool::new(2);
        pool.set_force_dispatch(true);
        assert_eq!(pool.workers(), 2);
        let ids_before = pool.worker_thread_ids();
        for _ in 0..50 {
            let (job, panic) = pool.run(Job::Idle, 3, |_| {});
            assert!(matches!(job, Job::Idle));
            assert!(panic.is_none());
        }
        assert_eq!(pool.worker_thread_ids(), ids_before, "workers respawned");
        let jobs = pool.jobs_completed();
        assert_eq!(jobs.len(), 2);
        assert!(jobs.iter().all(|&j| j == 50), "jobs per worker: {jobs:?}");
    }

    #[test]
    fn fewer_shards_than_workers_leaves_spares_parked() {
        let pool = WorkerPool::new(4);
        pool.set_force_dispatch(true);
        for _ in 0..20 {
            let (_, panic) = pool.run(Job::Idle, 2, |_| {});
            assert!(panic.is_none());
        }
        let jobs = pool.jobs_completed();
        assert_eq!(jobs[0], 20, "worker 0 participates in 2-shard phases");
        assert_eq!(&jobs[1..], &[0, 0, 0], "spare workers must stay parked");
    }

    #[test]
    fn inline_panic_is_reported_and_pool_survives() {
        let pool = WorkerPool::new(1);
        pool.set_force_dispatch(true);
        let (_, panic) = pool.run(Job::Idle, 2, |_| panic!("inline boom"));
        let payload = panic.expect("inline panic must surface");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "inline boom");
        // Pool still serviceable.
        let (_, panic) = pool.run(Job::Idle, 2, |_| {});
        assert!(panic.is_none());
    }
}
