//! Iteration traces recorded by the engine.
//!
//! The paper's figures plot the total system utility per iteration (Figs.
//! 1–4); debugging and the ablation benches additionally want rate, price,
//! population and γ traces. Recording everything on large workloads is
//! wasteful, so each channel is opt-in through [`TraceConfig`].

use lrgp_num::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Which per-entity channels to record besides the always-on utility trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record one series per flow with its rate.
    pub rates: bool,
    /// Record one series per node with its price.
    pub node_prices: bool,
    /// Record one series per link with its price.
    pub link_prices: bool,
    /// Record one series per class with its population.
    pub populations: bool,
    /// Record one series per node with its current γ.
    pub gammas: bool,
}

impl TraceConfig {
    /// Enables every channel (small workloads / debugging).
    pub fn full() -> Self {
        Self { rates: true, node_prices: true, link_prices: true, populations: true, gammas: true }
    }
}

/// The recorded trace of an engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Total system utility after each iteration (objective (1)).
    pub utility: TimeSeries,
    /// Per-flow rate series, when enabled.
    pub rates: Option<Vec<TimeSeries>>,
    /// Per-node price series, when enabled.
    pub node_prices: Option<Vec<TimeSeries>>,
    /// Per-link price series, when enabled.
    pub link_prices: Option<Vec<TimeSeries>>,
    /// Per-class population series, when enabled.
    pub populations: Option<Vec<TimeSeries>>,
    /// Per-node γ series, when enabled.
    pub gammas: Option<Vec<TimeSeries>>,
}

impl Trace {
    /// Creates an empty trace for a system of the given dimensions.
    pub fn new(config: TraceConfig, flows: usize, nodes: usize, links: usize, classes: usize) -> Self {
        let mk = |on: bool, n: usize, tag: &str| {
            on.then(|| (0..n).map(|i| TimeSeries::new(format!("{tag}{i}"))).collect())
        };
        Self {
            utility: TimeSeries::new("utility"),
            rates: mk(config.rates, flows, "rate/flow"),
            node_prices: mk(config.node_prices, nodes, "price/node"),
            link_prices: mk(config.link_prices, links, "price/link"),
            populations: mk(config.populations, classes, "population/class"),
            gammas: mk(config.gammas, nodes, "gamma/node"),
        }
    }

    /// Extends the per-flow and per-class channels to the given counts
    /// (problem deltas can append flows and classes mid-run; nodes and
    /// links are fixed). New series start empty, so after a growth the
    /// per-element series lengths differ: an appended flow's series covers
    /// only the iterations since it joined.
    pub fn grow(&mut self, flows: usize, classes: usize) {
        let extend = |series: &mut Option<Vec<TimeSeries>>, n: usize, tag: &str| {
            if let Some(series) = series.as_mut() {
                for i in series.len()..n {
                    series.push(TimeSeries::new(format!("{tag}{i}")));
                }
            }
        };
        extend(&mut self.rates, flows, "rate/flow");
        extend(&mut self.populations, classes, "population/class");
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.utility.len()
    }

    /// `true` before the first iteration is recorded.
    pub fn is_empty(&self) -> bool {
        self.utility.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_records_only_utility() {
        let t = Trace::new(TraceConfig::default(), 2, 3, 1, 4);
        assert!(t.rates.is_none());
        assert!(t.node_prices.is_none());
        assert!(t.link_prices.is_none());
        assert!(t.populations.is_none());
        assert!(t.gammas.is_none());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn full_config_allocates_all_channels() {
        let t = Trace::new(TraceConfig::full(), 2, 3, 1, 4);
        assert_eq!(t.rates.as_ref().unwrap().len(), 2);
        assert_eq!(t.node_prices.as_ref().unwrap().len(), 3);
        assert_eq!(t.link_prices.as_ref().unwrap().len(), 1);
        assert_eq!(t.populations.as_ref().unwrap().len(), 4);
        assert_eq!(t.gammas.as_ref().unwrap().len(), 3);
        assert_eq!(t.rates.as_ref().unwrap()[1].name(), "rate/flow1");
    }
}
