//! The synchronous LRGP engine (§3, Algorithms 1–3).
//!
//! One [`Engine::step`] performs a full LRGP iteration:
//!
//! 1. **Rate allocation** at every flow source (Algorithm 1), using the
//!    prices and populations published in the previous iteration.
//! 2. **Consumer allocation** at every node (Algorithm 2, greedy by
//!    benefit–cost ratio) using the freshly computed rates.
//! 3. **Price computation**: node prices via Eq. 12 with per-node γ control,
//!    link prices via Eq. 13.
//!
//! The iteration itself is implemented once, in the dirty-set executor
//! ([`crate::exec`]); the engine derives an [`ExecutionPlan`] from its
//! configuration and delegates every step to it. Sequential, threaded,
//! incremental and full-recompute execution are plan choices over the same
//! loop, all bit-identical (see [`crate::plan`]).
//!
//! The engine records the total-utility trace and supports the paper's
//! dynamics experiments (changing the problem mid-run, Fig. 3) through the
//! first-class delta API ([`Engine::apply_delta`]) and enactment policies
//! (§2.1).

use crate::exec::StepState;
use crate::gamma::{GammaController, GammaMode};
use crate::kernel::admission::{AdmissionPolicy, PopulationMode};
use crate::kernel::price::{NodePriceRule, PriceVector};
use crate::plan::{AutoModel, ExecutionPlan, IncrementalMode, Numerics, Parallelism, Reliability};
use crate::pool::PoolHandle;
use crate::trace::{Trace, TraceConfig};
use lrgp_model::{Allocation, DeltaOp, FlowId, Problem, ProblemDelta, ValidationError};
use lrgp_num::series::ConvergenceCriterion;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Starting point for the flow rates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InitialRate {
    /// Every flow starts at `r_i^max` (optimistic; reproduces the paper's
    /// initial oscillation in Fig. 1).
    #[default]
    Max,
    /// Every flow starts at `r_i^min` (conservative).
    Min,
    /// Every flow starts at the given rate, clamped into its bounds.
    Value(f64),
}

impl InitialRate {
    /// The starting rate for a flow with the given bounds.
    fn rate_for(self, bounds: lrgp_model::RateBounds) -> f64 {
        match self {
            InitialRate::Max => bounds.max,
            InitialRate::Min => bounds.min,
            InitialRate::Value(v) => bounds.clamp(v),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrgpConfig {
    /// Node price step-size control (γ₁ = γ₂ = γ as in §4.2).
    pub gamma: GammaMode,
    /// Node price law (Eq. 12 by default; pure gradient as an ablation).
    pub node_price_rule: NodePriceRule,
    /// Link price step size γ_l (Eq. 13). Irrelevant for workloads without
    /// links.
    pub link_gamma: f64,
    /// Initial flow rates.
    pub initial_rate: InitialRate,
    /// Initial node prices.
    pub initial_node_price: f64,
    /// Initial link prices.
    pub initial_link_price: f64,
    /// Whether populations are integral (paper) or fractional (relaxation).
    pub population_mode: PopulationMode,
    /// Greedy admission variant (paper stops at the first blocked class).
    pub admission_policy: AdmissionPolicy,
    /// Convergence test applied by [`Engine::run_until_converged`].
    pub convergence: ConvergenceCriterion,
    /// Which trace channels to record.
    pub trace: TraceConfig,
    /// How the step's three phases are executed (sequential by default;
    /// the sharded parallel path is bit-identical, see [`crate::plan`]).
    pub parallelism: Parallelism,
    /// Whether [`Engine::step`] carries dirty sets across iterations
    /// (off by default — the full recompute is the reference; the
    /// incremental path is bit-identical, see [`crate::exec`]).
    pub incremental: IncrementalMode,
    /// Which numeric kernels the step dispatches to (Strict by default —
    /// bitwise-reproducible scalar code; the vectorized path trades the
    /// bitwise guarantee for bounded drift, see [`crate::plan::Numerics`]).
    #[serde(default)]
    pub numerics: Numerics,
    /// Whether the step solves per-flow delivery reliability jointly with
    /// the rate (Off by default — the classic rate-only pipeline, bitwise
    /// identical to the pre-reliability engine; see
    /// [`crate::plan::Reliability`]). Joint requires a problem carrying a
    /// [`lrgp_model::ReliabilitySpec`] to have any effect.
    #[serde(default)]
    pub reliability: Reliability,
}

impl Default for LrgpConfig {
    fn default() -> Self {
        Self {
            gamma: GammaMode::default(),
            node_price_rule: NodePriceRule::default(),
            link_gamma: 1e-3,
            initial_rate: InitialRate::default(),
            initial_node_price: 0.0,
            initial_link_price: 0.0,
            population_mode: PopulationMode::default(),
            admission_policy: AdmissionPolicy::default(),
            convergence: ConvergenceCriterion::paper_default(),
            trace: TraceConfig::default(),
            parallelism: Parallelism::default(),
            incremental: IncrementalMode::default(),
            numerics: Numerics::default(),
            reliability: Reliability::default(),
        }
    }
}

/// Outcome of [`Engine::run_until_converged`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Iteration at which the convergence criterion was first satisfied
    /// (`None` if the budget ran out first). Counted from the start of the
    /// run call, 1-based: `Some(k)` means the criterion held after `k`
    /// iterations.
    pub converged_at: Option<usize>,
    /// Iterations actually executed by the call.
    pub iterations: usize,
    /// Total utility after the last executed iteration.
    pub utility: f64,
}

/// The synchronous LRGP optimizer.
///
/// # Examples
///
/// ```
/// use lrgp::{Engine, LrgpConfig};
/// use lrgp_model::workloads;
///
/// let problem = workloads::base_workload();
/// let mut engine = Engine::new(problem, LrgpConfig::default());
/// let outcome = engine.run_until_converged(250);
/// assert!(outcome.utility > 0.0);
/// let allocation = engine.allocation();
/// assert!(allocation.is_feasible(engine.problem(), 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    /// Shared with pooled jobs (pointer-swap handoff, see [`crate::pool`]);
    /// the engine holds the only long-lived reference, so problem edits
    /// simply install a new `Arc`.
    problem: Arc<Problem>,
    config: LrgpConfig,
    plan: ExecutionPlan,
    /// The persistent worker pool (empty handle under a sequential plan).
    /// Workers are spawned once here and parked between steps; cloning the
    /// engine respawns a same-sized pool.
    pool: PoolHandle,
    rates: Vec<f64>,
    /// Per-flow delivery reliabilities ρ. Pinned at each flow's `ρ_max`
    /// (1.0 without a [`lrgp_model::ReliabilitySpec`]) until a
    /// [`Reliability::Joint`] plan starts re-solving them; under
    /// [`Reliability::Off`] the vector is carried but never read by the
    /// step, keeping the rate-only trace bitwise unchanged.
    rhos: Vec<f64>,
    populations: Vec<f64>,
    prices: PriceVector,
    gamma_controllers: Vec<GammaController>,
    iteration: usize,
    trace: Trace,
    /// Built at construction so the first step pays only its (all-dirty)
    /// kernel work; dropped whenever the problem's cost structure or the
    /// optimizer state is replaced wholesale, then lazily rebuilt on the
    /// next step.
    state: Option<StepState>,
}

/// Deprecated name of [`Engine`], from when the crate had one engine type
/// per execution strategy.
#[deprecated(since = "0.2.0", note = "renamed to `Engine`")]
pub type LrgpEngine = Engine;

impl Engine {
    /// Creates an engine over `problem` with the given configuration.
    pub fn new(problem: Problem, config: LrgpConfig) -> Self {
        let rates = initial_rates(&problem, config.initial_rate);
        let rhos = initial_rhos(&problem);
        let prices =
            PriceVector::uniform(&problem, config.initial_node_price, config.initial_link_price);
        let gamma_controllers = (0..problem.num_nodes())
            .map(|_| GammaController::new(config.gamma, config.initial_node_price))
            .collect();
        let trace = Trace::new(
            config.trace,
            problem.num_flows(),
            problem.num_nodes(),
            problem.num_links(),
            problem.num_classes(),
        );
        let state = Some(StepState::new(&problem));
        let mut plan = ExecutionPlan::from_config(&config);
        // Calibrate Auto's cost model once, from the problem's dimensions
        // (deterministic — no wall-clock measurement).
        plan.auto = AutoModel::calibrated_for(&problem);
        let pool = PoolHandle::for_concurrency(plan.max_concurrency());
        Self {
            populations: vec![0.0; problem.num_classes()],
            plan,
            pool,
            problem: Arc::new(problem),
            config,
            rates,
            rhos,
            prices,
            gamma_controllers,
            iteration: 0,
            trace,
            state,
        }
    }

    /// Executes one full LRGP iteration and returns the total utility after
    /// it.
    ///
    /// The step runs under the engine's [`ExecutionPlan`]: depending on
    /// [`LrgpConfig::parallelism`] the three phases run on this thread or
    /// sharded over scoped workers, and depending on
    /// [`LrgpConfig::incremental`] they recompute everything or only the
    /// dirty subset; all plans call the same per-element kernels on the
    /// same previous-iteration inputs, so the results (and the recorded
    /// trace) are bit-identical (see [`crate::plan`]).
    pub fn step(&mut self) -> f64 {
        let Self {
            problem,
            config,
            plan,
            pool,
            rates,
            rhos,
            populations,
            prices,
            gamma_controllers,
            state,
            ..
        } = self;
        let state = state.get_or_insert_with(|| StepState::new(problem));
        let utility = plan.execute(
            state,
            problem,
            config,
            pool,
            rates,
            rhos,
            populations,
            prices,
            gamma_controllers,
        );
        self.record_step(utility);
        utility
    }

    /// The step state, if the engine has one since the last invalidation
    /// (test hook).
    #[cfg(test)]
    pub(crate) fn step_state(&self) -> Option<&StepState> {
        self.state.as_ref()
    }

    /// The execution plan derived from the configuration at construction.
    pub fn plan(&self) -> ExecutionPlan {
        self.plan
    }

    /// Worker count the configured [`Parallelism`] resolves to for this
    /// problem's size (1 means the sequential path).
    pub fn effective_workers(&self) -> usize {
        let units = self
            .problem
            .num_flows()
            .max(self.problem.num_nodes())
            .max(self.problem.num_links());
        self.plan.workers_for(units)
    }

    /// Forces (or un-forces) the worker pool to dispatch shards even on a
    /// single-CPU host, where it would otherwise run them inline on the
    /// caller. Test diagnostic — lets the concurrency suites exercise the
    /// real cross-thread handoff regardless of the machine they run on.
    #[doc(hidden)]
    pub fn force_pool_dispatch(&self, force: bool) {
        if let Some(pool) = self.pool.get() {
            pool.set_force_dispatch(force);
        }
    }

    /// The OS thread ids of the pool's workers (empty under a sequential
    /// plan). Test diagnostic — stress tests assert the same threads are
    /// reused across steps rather than respawned.
    #[doc(hidden)]
    pub fn pool_worker_ids(&self) -> Vec<std::thread::ThreadId> {
        self.pool.get().map(|p| p.worker_thread_ids()).unwrap_or_default()
    }

    /// Per-worker counts of pooled jobs completed since construction (empty
    /// under a sequential plan). Test diagnostic.
    #[doc(hidden)]
    pub fn pool_jobs_completed(&self) -> Vec<u64> {
        self.pool.get().map(|p| p.jobs_completed()).unwrap_or_default()
    }

    /// Overrides the calibrated [`AutoModel`] driving
    /// [`Parallelism::Auto`]'s sequential/threads crossover. Test hook —
    /// lets suites pin the crossover at a known size.
    #[doc(hidden)]
    pub fn set_auto_model(&mut self, model: AutoModel) {
        self.plan.auto = model;
    }

    /// Arms the pooled rate kernel to panic at `flow` (test hook for the
    /// panic-propagation regression suite).
    #[cfg(test)]
    pub(crate) fn arm_rate_panic(&mut self, flow: Option<u32>) {
        if let Some(state) = self.state.as_mut() {
            state.set_panic_on_flow(flow);
        }
    }

    /// Advances the iteration counter and records the enabled trace
    /// channels.
    fn record_step(&mut self, utility: f64) {
        self.iteration += 1;
        self.trace.utility.push(utility);
        if let Some(series) = self.trace.rates.as_mut() {
            for (s, &r) in series.iter_mut().zip(&self.rates) {
                s.push(r);
            }
        }
        if let Some(series) = self.trace.node_prices.as_mut() {
            for (s, &p) in series.iter_mut().zip(self.prices.node_prices()) {
                s.push(p);
            }
        }
        if let Some(series) = self.trace.link_prices.as_mut() {
            for (s, &p) in series.iter_mut().zip(self.prices.link_prices()) {
                s.push(p);
            }
        }
        if let Some(series) = self.trace.populations.as_mut() {
            for (s, &n) in series.iter_mut().zip(&self.populations) {
                s.push(n);
            }
        }
        if let Some(series) = self.trace.gammas.as_mut() {
            for (s, ctl) in series.iter_mut().zip(&self.gamma_controllers) {
                s.push(ctl.gamma());
            }
        }
    }

    /// Runs exactly `iterations` steps; returns the final utility (0.0 if
    /// `iterations` is 0 and nothing has run yet).
    pub fn run(&mut self, iterations: usize) -> f64 {
        let mut last = self.trace.utility.last().unwrap_or(0.0);
        for _ in 0..iterations {
            last = self.step();
        }
        last
    }

    /// Runs until the configured convergence criterion holds on the utility
    /// trace or `max_iterations` steps have executed, whichever is first.
    pub fn run_until_converged(&mut self, max_iterations: usize) -> RunOutcome {
        let mut last = self.trace.utility.last().unwrap_or(0.0);
        for k in 1..=max_iterations {
            last = self.step();
            if self.config.convergence.is_met(&self.trace.utility) {
                return RunOutcome { converged_at: Some(k), iterations: k, utility: last };
            }
        }
        RunOutcome { converged_at: None, iterations: max_iterations, utility: last }
    }

    /// The current allocation (rates + populations).
    pub fn allocation(&self) -> Allocation {
        Allocation::from_parts(&self.problem, self.rates.clone(), self.populations.clone())
    }

    /// Total utility of the current allocation.
    pub fn total_utility(&self) -> f64 {
        self.allocation().total_utility(&self.problem)
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The engine configuration.
    pub fn config(&self) -> &LrgpConfig {
        &self.config
    }

    /// Number of iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Current prices.
    pub fn prices(&self) -> &PriceVector {
        &self.prices
    }

    /// Per-flow delivery reliabilities ρ, indexed by flow id. All `ρ_max`
    /// (1.0 without a [`lrgp_model::ReliabilitySpec`]) unless a
    /// [`Reliability::Joint`] plan has stepped; see
    /// [`crate::kernel::reliability`].
    pub fn rhos(&self) -> &[f64] {
        &self.rhos
    }

    /// The reliability term `Σ_f mass_f · ln(ρ_f)` of the current state
    /// under the joint model (0.0 when the problem has no
    /// [`lrgp_model::ReliabilitySpec`] or no consumer is admitted) — the
    /// component [`Engine::step`] adds to the rate utility under
    /// [`Reliability::Joint`].
    pub fn reliability_utility(&self) -> f64 {
        crate::exec::reliability_utility(&self.problem, &self.rhos, &self.populations)
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-node γ controllers, indexed by node id (snapshot support).
    pub(crate) fn gamma_controllers(&self) -> &[GammaController] {
        &self.gamma_controllers
    }

    /// Overwrites the optimizer state (snapshot support). Lengths are the
    /// caller's responsibility; [`crate::snapshot`] validates them against
    /// the problem.
    pub(crate) fn load_state(
        &mut self,
        rates: Vec<f64>,
        populations: Vec<f64>,
        prices: PriceVector,
        gamma_controllers: Vec<GammaController>,
        iteration: usize,
    ) {
        self.rates = rates;
        self.populations = populations;
        self.prices = prices;
        self.gamma_controllers = gamma_controllers;
        self.iteration = iteration;
        // Snapshots predate the reliability dimension and do not carry ρ;
        // restore the deterministic initial vector.
        self.rhos = initial_rhos(&self.problem);
        // The caches no longer describe the stored state; rebuild from
        // scratch on the next step.
        self.state = None;
    }

    /// Current γ of `node`'s price controller.
    pub fn node_gamma(&self, node: lrgp_model::NodeId) -> f64 {
        self.gamma_controllers[node.index()].gamma()
    }

    /// Applies a batched [`ProblemDelta`] to the engine's problem,
    /// preserving prices, rates, populations, γ controllers and the trace
    /// across the change.
    ///
    /// The optimizer state is reconciled with the changed problem exactly
    /// as [`Engine::replace_problem`] would (rates clamped into the final
    /// bounds, populations capped at the final maxima, new flows starting
    /// at their [`LrgpConfig::initial_rate`]), so
    /// `engine.apply_delta(&delta)` and
    /// `engine.replace_problem(delta.apply(engine.problem())?)` continue
    /// bit-identically. Unlike `replace_problem`, capacity / population /
    /// rate-bound edits keep the incremental executor's caches and inject
    /// precise dirty marks instead of invalidating everything, so under an
    /// incremental plan the next step costs work proportional to what the
    /// delta touched. Flow additions, removals and path-cost edits change
    /// the cost structure and still invalidate wholesale.
    ///
    /// Applying a delta *before* the first step re-derives the initial
    /// optimizer state, making the engine bit-identical to one freshly
    /// constructed on the changed problem.
    ///
    /// # Errors
    ///
    /// Whatever [`ProblemDelta::apply`] reports; on error the engine is
    /// unchanged.
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn apply_delta(&mut self, delta: &ProblemDelta) -> Result<(), ValidationError> {
        if delta.is_empty() {
            return Ok(());
        }
        let next = delta.apply(&self.problem)?;
        if self.iteration == 0 {
            // Nothing has run: re-derive the initial state from the changed
            // problem, as a fresh construction would.
            self.rates = initial_rates(&next, self.config.initial_rate);
            self.rhos = initial_rhos(&next);
            self.populations = vec![0.0; next.num_classes()];
            self.trace = Trace::new(
                self.config.trace,
                next.num_flows(),
                next.num_nodes(),
                next.num_links(),
                next.num_classes(),
            );
            self.problem = Arc::new(next);
            self.plan.auto = AutoModel::calibrated_for(&self.problem);
            self.state = Some(StepState::new(&self.problem));
            return Ok(());
        }
        if delta.grows_problem() || delta.changes_costs() {
            // The cost structure (and possibly the id space) changed: the
            // term tables and caches are rebuilt and the next step treats
            // everything as dirty, exactly like a freshly constructed
            // engine would.
            for f in self.problem.num_flows()..next.num_flows() {
                let flow = FlowId::new(f as u32);
                let bounds = next.flow(flow).bounds;
                self.rates.push(self.config.initial_rate.rate_for(bounds));
                self.rhos.push(next.rho_bounds(flow).map_or(1.0, |b| b.max));
            }
            self.populations.resize(next.num_classes(), 0.0);
            self.trace.grow(next.num_flows(), next.num_classes());
            self.problem = Arc::new(next);
            // Dimensions changed, so the Auto crossover may have moved; the
            // pool itself is sized by `max_concurrency`, which is
            // hardware-capped and does not depend on the problem.
            self.plan.auto = AutoModel::calibrated_for(&self.problem);
            self.clamp_state_into_problem();
            self.state = None;
            return Ok(());
        }
        // Capacity / population / rate-bound edits keep the cost structure:
        // reconcile only the touched state and hand the executor precise
        // dirty marks. Clamps run against the *final* problem so a batched
        // delta matches a wholesale replacement bitwise.
        self.problem = Arc::new(next);
        for op in delta.ops() {
            match op {
                DeltaOp::SetNodeCapacity { node, .. } => {
                    if let Some(state) = self.state.as_mut() {
                        state.note_capacity_change(*node);
                    }
                }
                DeltaOp::SetLinkCapacity { .. } => {
                    // The link price update always runs and reads the
                    // capacity directly; no cached quantity depends on it.
                }
                DeltaOp::SetMaxPopulation { class, .. } => {
                    let max = self.problem.class(*class).max_population as f64;
                    let slot = &mut self.populations[class.index()];
                    let clamped = slot.min(max);
                    let moved = clamped.to_bits() != slot.to_bits();
                    *slot = clamped;
                    if let Some(state) = self.state.as_mut() {
                        state.note_population_change(&self.problem, *class, moved);
                    }
                }
                DeltaOp::SetRateBounds { flow, .. } => {
                    let bounds = self.problem.flow(*flow).bounds;
                    let slot = &mut self.rates[flow.index()];
                    let clamped = bounds.clamp(*slot);
                    let moved = clamped.to_bits() != slot.to_bits();
                    *slot = clamped;
                    if let Some(state) = self.state.as_mut() {
                        state.note_bounds_change(&self.problem, *flow, moved);
                    }
                }
                DeltaOp::AddFlow { .. }
                | DeltaOp::RemoveFlow { .. }
                | DeltaOp::SetFlowNodeCost { .. }
                | DeltaOp::SetLinkLoss { .. }
                | DeltaOp::SetRhoBounds { .. } => {
                    // Excluded by the `changes_costs` branch above (the
                    // reliability edits rebuild the loss-weighted term rows).
                }
            }
        }
        Ok(())
    }

    /// Clamps rates into the current problem's bounds and populations under
    /// its maxima, so the next iteration starts feasible.
    fn clamp_state_into_problem(&mut self) {
        for f in self.problem.flow_ids() {
            self.rates[f.index()] = self.problem.flow(f).bounds.clamp(self.rates[f.index()]);
            self.rhos[f.index()] = match self.problem.rho_bounds(f) {
                Some(bounds) => bounds.clamp(self.rhos[f.index()]),
                None => 1.0,
            };
        }
        for c in self.problem.class_ids() {
            let max = self.problem.class(c).max_population as f64;
            self.populations[c.index()] = self.populations[c.index()].min(max);
        }
    }

    /// Replaces the problem mid-run, preserving prices, rates, populations,
    /// γ controllers and the trace. The new problem must have identical
    /// dimensions (same id spaces) — use the [`Problem::without_flow`] /
    /// capacity-editing transforms, which keep ids stable. This is the
    /// wholesale escape hatch (and the oracle [`Engine::apply_delta`] is
    /// checked against); deltas should prefer `apply_delta`, which keeps
    /// the incremental caches alive where it can.
    ///
    /// # Panics
    ///
    /// Panics if any dimension differs.
    pub fn replace_problem(&mut self, problem: Problem) {
        assert_eq!(problem.num_flows(), self.problem.num_flows(), "flow count must not change");
        assert_eq!(problem.num_nodes(), self.problem.num_nodes(), "node count must not change");
        assert_eq!(problem.num_links(), self.problem.num_links(), "link count must not change");
        assert_eq!(
            problem.num_classes(),
            self.problem.num_classes(),
            "class count must not change"
        );
        self.problem = Arc::new(problem);
        // Clamp state into the new problem's bounds so the next iteration
        // starts feasible.
        self.clamp_state_into_problem();
        // Term tables and dirty sets were built against the old problem;
        // the next step rebuilds them and treats everything as dirty,
        // exactly like a freshly constructed engine would.
        self.state = None;
    }

    /// Removes `flow` from the system (its source leaves, §4.2 Fig. 3):
    /// rate collapses to zero, its classes stop being admitted, its resource
    /// costs vanish. Ids remain valid.
    #[deprecated(
        since = "0.2.0",
        note = "use `Engine::apply_delta` with `ProblemDelta::remove_flow`"
    )]
    pub fn remove_flow(&mut self, flow: FlowId) {
        let pruned = self.problem.without_flow(flow);
        self.replace_problem(pruned);
    }
}

/// The initial rate vector for `problem` under the configured policy.
fn initial_rates(problem: &Problem, initial: InitialRate) -> Vec<f64> {
    problem.flow_ids().map(|f| initial.rate_for(problem.flow(f).bounds)).collect()
}

/// The initial reliability vector: every flow starts at its `ρ_max`
/// (mirroring [`InitialRate::Max`]), or 1.0 — lossless delivery — without a
/// [`lrgp_model::ReliabilitySpec`].
fn initial_rhos(problem: &Problem) -> Vec<f64> {
    problem.flow_ids().map(|f| problem.rho_bounds(f).map_or(1.0, |b| b.max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::{self, base_workload};
    use lrgp_model::{ClassId, NodeId, RateBounds};

    fn quick_config() -> LrgpConfig {
        LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() }
    }

    #[test]
    fn engine_runs_and_produces_positive_utility() {
        let mut e = Engine::new(base_workload(), quick_config());
        let u = e.run(50);
        assert!(u > 0.0, "utility {u}");
        assert_eq!(e.iteration(), 50);
        assert_eq!(e.trace().len(), 50);
    }

    #[test]
    fn allocation_feasible_after_every_iteration() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        for _ in 0..60 {
            e.step();
            let a = e.allocation();
            let report = a.check_feasibility(e.problem(), 1e-6);
            assert!(report.is_feasible(), "iteration {}: {report}", e.iteration());
        }
    }

    #[test]
    fn populations_integral_by_default() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.run(30);
        assert!(e.allocation().populations_are_integral());
    }

    #[test]
    fn fractional_mode_may_split_consumers() {
        let cfg = LrgpConfig {
            population_mode: PopulationMode::Fractional,
            ..LrgpConfig::default()
        };
        let mut e = Engine::new(base_workload(), cfg);
        e.run(30);
        // Fractional utility dominates integral utility for same dynamics.
        assert!(e.total_utility() > 0.0);
    }

    #[test]
    fn converges_on_base_workload() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let out = e.run_until_converged(250);
        assert!(out.converged_at.is_some(), "did not converge in 250 iterations");
        let k = out.converged_at.unwrap();
        assert!(k <= 100, "converged too slowly: {k}");
        assert!(out.utility > 1e5, "implausibly low utility {}", out.utility);
    }

    #[test]
    fn adaptive_gamma_converges_no_slower_than_small_fixed_gamma() {
        let adaptive = {
            let mut e = Engine::new(base_workload(), LrgpConfig::default());
            e.run_until_converged(1000)
        };
        let fixed_small = {
            let cfg = LrgpConfig { gamma: GammaMode::fixed(0.01), ..LrgpConfig::default() };
            let mut e = Engine::new(base_workload(), cfg);
            e.run_until_converged(1000)
        };
        let a = adaptive.converged_at.unwrap_or(usize::MAX);
        let f = fixed_small.converged_at.unwrap_or(usize::MAX);
        assert!(a <= f, "adaptive {a} vs fixed-0.01 {f}");
    }

    #[test]
    fn undamped_gamma_oscillates_more_than_damped() {
        let amplitude = |gamma: f64| {
            let cfg = LrgpConfig { gamma: GammaMode::fixed(gamma), ..LrgpConfig::default() };
            let mut e = Engine::new(base_workload(), cfg);
            e.run(250);
            // Amplitude over the last 50 iterations.
            let tail = e.trace().utility.window(200, 250);
            let max = tail.iter().cloned().fold(f64::MIN, f64::max);
            let min = tail.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let undamped = amplitude(1.0);
        let damped = amplitude(0.1);
        assert!(
            undamped > damped,
            "expected γ=1 amplitude ({undamped}) > γ=0.1 amplitude ({damped})"
        );
    }

    #[test]
    fn utility_scales_linearly_with_cnode_copies() {
        let run = |w: workloads::Table2Workload| {
            let mut e = Engine::new(w.build(), LrgpConfig::default());
            e.run_until_converged(250).utility
        };
        let base = run(workloads::Table2Workload::Base);
        let doubled = run(workloads::Table2Workload::Flows6Cnodes6);
        let ratio = doubled / base;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "6f/6c should be ~2x base: base {base}, doubled {doubled}"
        );
    }

    #[test]
    fn removing_a_flow_drops_then_recovers_utility() {
        let mut e = Engine::new(base_workload(), quick_config());
        e.run(150);
        let before = e.total_utility();
        // Remove the rank-100 flow, as in Fig. 3.
        e.apply_delta(&ProblemDelta::new().remove_flow(FlowId::new(5))).unwrap();
        e.run(100);
        let after = e.total_utility();
        assert!(after > 0.0);
        assert!(
            after < before,
            "utility should drop after removing the top flow: {before} -> {after}"
        );
        // Flow 5's rate and populations are zeroed.
        assert_eq!(e.allocation().rate(FlowId::new(5)), 0.0);
        for &c in e.problem().classes_of_flow(FlowId::new(5)) {
            assert_eq!(e.allocation().population(c), 0.0);
        }
        // Still feasible.
        assert!(e.allocation().is_feasible(e.problem(), 1e-6));
    }

    #[test]
    fn trace_channels_populate_when_enabled() {
        let mut e = Engine::new(base_workload(), quick_config());
        e.run(5);
        let t = e.trace();
        assert_eq!(t.rates.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.node_prices.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.populations.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.gammas.as_ref().unwrap()[0].len(), 5);
    }

    #[test]
    fn initial_rate_variants() {
        let p = base_workload();
        let min = Engine::new(
            p.clone(),
            LrgpConfig { initial_rate: InitialRate::Min, ..Default::default() },
        );
        assert!(min.allocation().rates().iter().all(|&r| r == 10.0));
        let max = Engine::new(p.clone(), LrgpConfig::default());
        assert!(max.allocation().rates().iter().all(|&r| r == 1000.0));
        let fixed = Engine::new(
            p,
            LrgpConfig { initial_rate: InitialRate::Value(5000.0), ..Default::default() },
        );
        assert!(fixed.allocation().rates().iter().all(|&r| r == 1000.0)); // clamped
    }

    #[test]
    fn node_gamma_visible_and_clamped() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.run(50);
        for n in e.problem().node_ids() {
            let g = e.node_gamma(n);
            assert!((0.001..=0.1).contains(&g), "gamma {g} out of clamp");
        }
    }

    #[test]
    #[should_panic(expected = "flow count must not change")]
    fn replace_problem_rejects_dimension_change() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.replace_problem(workloads::paper_workload(
            lrgp_model::UtilityShape::Log,
            2,
            1,
        ));
    }

    #[test]
    fn high_rank_classes_admitted_first() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.run_until_converged(250);
        let a = e.allocation();
        // The rank-100 class pair (18, 19) should reach a substantial
        // fraction of its population before rank-1 classes see anyone.
        let top = a.population(ClassId::new(18)) + a.population(ClassId::new(19));
        let bottom = a.population(ClassId::new(4)) + a.population(ClassId::new(5));
        assert!(top > bottom, "rank-100 ({top}) vs rank-1 ({bottom})");
        assert!(top > 0.0);
    }

    #[test]
    fn prices_remain_nonnegative_throughout() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        for _ in 0..100 {
            e.step();
            assert!(e.prices().node_prices().iter().all(|&p| p >= 0.0));
        }
        let _ = e.node_gamma(NodeId::new(0));
    }

    #[test]
    fn unstepped_delta_matches_fresh_engine_bitwise() {
        let p = base_workload();
        let delta = ProblemDelta::new()
            .set_node_capacity(NodeId::new(6), 5e5)
            .resize_class(ClassId::new(0), 17)
            .set_rate_bounds(FlowId::new(1), RateBounds::new(5.0, 250.0).unwrap());
        let mut delta_first = Engine::new(p.clone(), LrgpConfig::default());
        delta_first.apply_delta(&delta).unwrap();
        let final_problem = delta.apply(&p).unwrap();
        let mut fresh = Engine::new(final_problem, LrgpConfig::default());
        for k in 0..120 {
            let a = delta_first.step();
            let b = fresh.step();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at iteration {k}");
        }
        assert_eq!(delta_first.allocation(), fresh.allocation());
    }

    #[test]
    fn targeted_delta_matches_replace_problem_bitwise() {
        let delta = ProblemDelta::new()
            .set_node_capacity(NodeId::new(7), 1.2e5)
            .resize_class(ClassId::new(4), 3)
            .set_rate_bounds(FlowId::new(0), RateBounds::new(10.0, 400.0).unwrap());
        let configs = [
            LrgpConfig::default(),
            LrgpConfig { incremental: IncrementalMode::On, ..LrgpConfig::default() },
        ];
        for config in configs {
            let mut via_delta = Engine::new(base_workload(), config);
            let mut via_replace = Engine::new(base_workload(), config);
            for _ in 0..90 {
                via_delta.step();
                via_replace.step();
            }
            via_delta.apply_delta(&delta).unwrap();
            via_replace.replace_problem(delta.apply(via_replace.problem()).unwrap());
            for k in 0..150 {
                let a = via_delta.step();
                let b = via_replace.step();
                assert_eq!(a.to_bits(), b.to_bits(), "diverged at iteration {k}");
            }
            assert_eq!(via_delta.allocation(), via_replace.allocation());
            assert_eq!(via_delta.prices(), via_replace.prices());
        }
    }

    #[test]
    fn add_flow_mid_run_grows_the_engine() {
        let p = base_workload();
        let source = p.flow(FlowId::new(0)).source;
        let sink = p.class(ClassId::new(0)).node;
        let spec = lrgp_model::FlowSpec {
            source,
            bounds: RateBounds::new(5.0, 500.0).unwrap(),
            link_costs: vec![],
            node_costs: vec![(sink, 1.0)],
        };
        let class = lrgp_model::ClassSpec {
            flow: FlowId::new(0),
            node: sink,
            max_population: 40,
            utility: lrgp_model::Utility::log(50.0),
            consumer_cost: 2.0,
        };
        let mut e = Engine::new(p.clone(), quick_config());
        e.run(150);
        let flows_before = e.problem().num_flows();
        e.apply_delta(&ProblemDelta::new().add_flow(spec, vec![class])).unwrap();
        assert_eq!(e.problem().num_flows(), flows_before + 1);
        e.run(150);
        let new_flow = FlowId::new(flows_before as u32);
        assert!(e.allocation().rate(new_flow) > 0.0);
        assert!(e.allocation().is_feasible(e.problem(), 1e-6));
        // The grown trace channel recorded only the post-delta iterations.
        assert_eq!(e.trace().rates.as_ref().unwrap()[flows_before].len(), 150);
    }

    #[test]
    fn failed_delta_leaves_engine_unchanged() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.run(40);
        let before = e.allocation();
        let bad = ProblemDelta::new()
            .resize_class(ClassId::new(2), 1)
            .set_node_capacity(NodeId::new(999), 1.0);
        assert!(e.apply_delta(&bad).is_err());
        assert_eq!(e.allocation(), before);
        let next = e.step();
        assert!(next > 0.0);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        e.run(10);
        let before = e.allocation();
        e.apply_delta(&ProblemDelta::new()).unwrap();
        assert_eq!(e.allocation(), before);
    }
}
