//! The synchronous LRGP engine (§3, Algorithms 1–3).
//!
//! One [`LrgpEngine::step`] performs a full LRGP iteration:
//!
//! 1. **Rate allocation** at every flow source (Algorithm 1), using the
//!    prices and populations published in the previous iteration.
//! 2. **Consumer allocation** at every node (Algorithm 2, greedy by
//!    benefit–cost ratio) using the freshly computed rates.
//! 3. **Price computation**: node prices via Eq. 12 with per-node γ control,
//!    link prices via Eq. 13.
//!
//! The engine records the total-utility trace and supports the paper's
//! dynamics experiments (removing a flow mid-run, Fig. 3) and enactment
//! policies (§2.1).

use crate::admission::{allocate_consumers, AdmissionPolicy, PopulationMode};
use crate::gamma::{GammaController, GammaMode};
use crate::incremental::{IncrementalMode, IncrementalState};
use crate::parallel::Parallelism;
use crate::price::{update_link_price, update_node_price_with_rule, NodePriceRule};
use crate::prices::PriceVector;
use crate::rate::{allocate_rate_for_flow, allocate_rates};
use crate::trace::{Trace, TraceConfig};
use lrgp_model::{Allocation, ClassId, FlowId, LinkId, NodeId, Problem};
use lrgp_num::series::ConvergenceCriterion;
use serde::{Deserialize, Serialize};

/// Per-node result of the sharded admission phase: the node, its class
/// populations, and its next price.
type NodeOutcome = (NodeId, Vec<(ClassId, f64)>, f64);

/// Starting point for the flow rates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InitialRate {
    /// Every flow starts at `r_i^max` (optimistic; reproduces the paper's
    /// initial oscillation in Fig. 1).
    #[default]
    Max,
    /// Every flow starts at `r_i^min` (conservative).
    Min,
    /// Every flow starts at the given rate, clamped into its bounds.
    Value(f64),
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrgpConfig {
    /// Node price step-size control (γ₁ = γ₂ = γ as in §4.2).
    pub gamma: GammaMode,
    /// Node price law (Eq. 12 by default; pure gradient as an ablation).
    pub node_price_rule: NodePriceRule,
    /// Link price step size γ_l (Eq. 13). Irrelevant for workloads without
    /// links.
    pub link_gamma: f64,
    /// Initial flow rates.
    pub initial_rate: InitialRate,
    /// Initial node prices.
    pub initial_node_price: f64,
    /// Initial link prices.
    pub initial_link_price: f64,
    /// Whether populations are integral (paper) or fractional (relaxation).
    pub population_mode: PopulationMode,
    /// Greedy admission variant (paper stops at the first blocked class).
    pub admission_policy: AdmissionPolicy,
    /// Convergence test applied by [`LrgpEngine::run_until_converged`].
    pub convergence: ConvergenceCriterion,
    /// Which trace channels to record.
    pub trace: TraceConfig,
    /// How the step's three phases are executed (sequential by default;
    /// the sharded parallel path is bit-identical, see [`crate::parallel`]).
    pub parallelism: Parallelism,
    /// Whether [`LrgpEngine::step`] uses the incremental dirty-set path
    /// (off by default — the full recompute is the reference; the
    /// incremental path is bit-identical, see [`crate::incremental`]).
    pub incremental: IncrementalMode,
}

impl Default for LrgpConfig {
    fn default() -> Self {
        Self {
            gamma: GammaMode::default(),
            node_price_rule: NodePriceRule::default(),
            link_gamma: 1e-3,
            initial_rate: InitialRate::default(),
            initial_node_price: 0.0,
            initial_link_price: 0.0,
            population_mode: PopulationMode::default(),
            admission_policy: AdmissionPolicy::default(),
            convergence: ConvergenceCriterion::paper_default(),
            trace: TraceConfig::default(),
            parallelism: Parallelism::default(),
            incremental: IncrementalMode::default(),
        }
    }
}

/// Outcome of [`LrgpEngine::run_until_converged`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Iteration at which the convergence criterion was first satisfied
    /// (`None` if the budget ran out first). Counted from the start of the
    /// run call, 1-based: `Some(k)` means the criterion held after `k`
    /// iterations.
    pub converged_at: Option<usize>,
    /// Iterations actually executed by the call.
    pub iterations: usize,
    /// Total utility after the last executed iteration.
    pub utility: f64,
}

/// The synchronous LRGP optimizer.
///
/// # Examples
///
/// ```
/// use lrgp::{LrgpConfig, LrgpEngine};
/// use lrgp_model::workloads;
///
/// let problem = workloads::base_workload();
/// let mut engine = LrgpEngine::new(problem, LrgpConfig::default());
/// let outcome = engine.run_until_converged(250);
/// assert!(outcome.utility > 0.0);
/// let allocation = engine.allocation();
/// assert!(allocation.is_feasible(engine.problem(), 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct LrgpEngine {
    problem: Problem,
    config: LrgpConfig,
    rates: Vec<f64>,
    populations: Vec<f64>,
    prices: PriceVector,
    gamma_controllers: Vec<GammaController>,
    iteration: usize,
    trace: Trace,
    /// Built at construction when the config enables incremental stepping;
    /// dropped whenever the problem or the optimizer state is replaced
    /// wholesale, then lazily rebuilt on the next incremental step.
    incremental: Option<IncrementalState>,
}

impl LrgpEngine {
    /// Creates an engine over `problem` with the given configuration.
    pub fn new(problem: Problem, config: LrgpConfig) -> Self {
        let rates = problem
            .flow_ids()
            .map(|f| {
                let b = problem.flow(f).bounds;
                match config.initial_rate {
                    InitialRate::Max => b.max,
                    InitialRate::Min => b.min,
                    InitialRate::Value(v) => b.clamp(v),
                }
            })
            .collect();
        let prices =
            PriceVector::uniform(&problem, config.initial_node_price, config.initial_link_price);
        let gamma_controllers = (0..problem.num_nodes())
            .map(|_| GammaController::new(config.gamma, config.initial_node_price))
            .collect();
        let trace = Trace::new(
            config.trace,
            problem.num_flows(),
            problem.num_nodes(),
            problem.num_links(),
            problem.num_classes(),
        );
        // Precompute the term tables and caches up front so the first
        // incremental step pays only its (all-dirty) kernel work.
        let incremental = config.incremental.enabled().then(|| IncrementalState::new(&problem));
        Self {
            populations: vec![0.0; problem.num_classes()],
            problem,
            config,
            rates,
            prices,
            gamma_controllers,
            iteration: 0,
            trace,
            incremental,
        }
    }

    /// Executes one full LRGP iteration and returns the total utility after
    /// it.
    ///
    /// Depending on [`LrgpConfig::parallelism`] the three phases run on this
    /// thread or sharded over scoped workers; both paths call the same
    /// per-element kernels on the same previous-iteration inputs, so the
    /// results (and the recorded trace) are bit-identical either way.
    pub fn step(&mut self) -> f64 {
        if self.config.incremental.enabled() {
            return self.step_incremental();
        }
        let workers = self.effective_workers();
        if workers > 1 {
            self.step_parallel(workers)
        } else {
            self.step_sequential()
        }
    }

    /// Dirty-set step ([`crate::incremental`]): bit-identical to the
    /// baseline paths, but only recomputes what changed. The incremental
    /// state is normally built at engine construction; after an
    /// invalidation (problem/state replacement) it is rebuilt here.
    fn step_incremental(&mut self) -> f64 {
        let Self { problem, config, rates, populations, prices, gamma_controllers, incremental, .. } =
            self;
        let state = incremental.get_or_insert_with(|| IncrementalState::new(problem));
        let utility = state.step(problem, config, rates, populations, prices, gamma_controllers);
        self.record_step(utility);
        utility
    }

    /// The incremental state, if the engine has stepped incrementally since
    /// the last invalidation (test hook).
    #[cfg(test)]
    pub(crate) fn incremental_state(&self) -> Option<&IncrementalState> {
        self.incremental.as_ref()
    }

    /// Worker count the configured [`Parallelism`] resolves to for this
    /// problem's size (1 means the sequential path).
    pub fn effective_workers(&self) -> usize {
        let units = self
            .problem
            .num_flows()
            .max(self.problem.num_nodes())
            .max(self.problem.num_links());
        self.config.parallelism.workers_for(units)
    }

    /// Single-threaded reference step.
    fn step_sequential(&mut self) -> f64 {
        // 1. Rate allocation at every source (Algorithm 1).
        self.rates = allocate_rates(&self.problem, &self.prices, &self.populations, &self.rates);

        // 2 + 3a. Consumer allocation and node price update at every node
        // (Algorithm 2).
        for node in self.problem.node_ids() {
            let admission = allocate_consumers(
                &self.problem,
                node,
                &self.rates,
                self.config.population_mode,
                self.config.admission_policy,
            );
            for &(class, n) in &admission.populations {
                self.populations[class.index()] = n;
            }
            let ctl = &mut self.gamma_controllers[node.index()];
            let gamma = ctl.gamma();
            let next = update_node_price_with_rule(
                self.config.node_price_rule,
                self.prices.node(node),
                admission.benefit_cost,
                admission.used,
                self.problem.node(node).capacity,
                gamma,
                gamma,
            );
            ctl.observe_price(next);
            self.prices.set_node(node, next);
        }

        // 3b. Link price update (Algorithm 3).
        let allocation = self.allocation();
        for link in self.problem.link_ids() {
            let usage = allocation.link_usage(&self.problem, link);
            let next = update_link_price(
                self.prices.link(link),
                usage,
                self.problem.link(link).capacity,
                self.config.link_gamma,
            );
            self.prices.set_link(link, next);
        }

        let utility = allocation.total_utility(&self.problem);
        self.record_step(utility);
        utility
    }

    /// Sharded step: each phase partitions its elements into contiguous
    /// id-order chunks, one chunk per worker, and applies the results in id
    /// order. The main thread keeps the first chunk for itself (spawning a
    /// thread costs more than a small chunk of kernel work, and the inline
    /// chunk overlaps the spawn latency of the others). Every kernel reads
    /// only previous-iteration state (the rates written in phase 1 are
    /// "previous" for phases 2–3, exactly as in the sequential step), so the
    /// outputs are bit-identical to [`Self::step_sequential`]; see
    /// [`crate::parallel`] for the argument.
    fn step_parallel(&mut self, workers: usize) -> f64 {
        // 1. Rate allocation, sharded per flow.
        let num_flows = self.problem.num_flows();
        let flow_chunk = num_flows.div_ceil(workers).max(1);
        self.rates = {
            let problem = &self.problem;
            let prices = &self.prices;
            let populations = &self.populations;
            let previous = &self.rates;
            let solve_chunk = |start: usize, end: usize| {
                (start..end)
                    .map(|i| {
                        allocate_rate_for_flow(
                            problem,
                            prices,
                            populations,
                            FlowId::new(i as u32),
                            previous[i],
                        )
                    })
                    .collect::<Vec<f64>>()
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..num_flows)
                    .step_by(flow_chunk)
                    .skip(1)
                    .map(|start| {
                        let end = (start + flow_chunk).min(num_flows);
                        scope.spawn(move || solve_chunk(start, end))
                    })
                    .collect();
                // In-order reduction: the inline first chunk, then each
                // worker's chunk, concatenate back into flow-id order.
                let mut rates = solve_chunk(0, flow_chunk.min(num_flows));
                rates.reserve(num_flows - rates.len());
                for handle in handles {
                    rates.extend(crate::parallel::join_worker(handle));
                }
                rates
            })
        };

        // 2 + 3a. Consumer allocation and node price update, sharded per
        // node. Classes partition among nodes, so the population writes of
        // different nodes never overlap; each worker owns its slice of γ
        // controllers via `chunks_mut`.
        let num_nodes = self.problem.num_nodes();
        let node_chunk = num_nodes.div_ceil(workers).max(1);
        {
            let Self { problem, config, rates, populations, prices, gamma_controllers, .. } =
                self;
            let problem = &*problem;
            let rates = &*rates;
            let config = *config;
            let prices_read = &*prices;
            let run_chunk = |start: usize, controllers: &mut [GammaController]| {
                controllers
                    .iter_mut()
                    .enumerate()
                    .map(|(offset, ctl)| {
                        let node = NodeId::new((start + offset) as u32);
                        let admission = allocate_consumers(
                            problem,
                            node,
                            rates,
                            config.population_mode,
                            config.admission_policy,
                        );
                        let gamma = ctl.gamma();
                        let next = update_node_price_with_rule(
                            config.node_price_rule,
                            prices_read.node(node),
                            admission.benefit_cost,
                            admission.used,
                            problem.node(node).capacity,
                            gamma,
                            gamma,
                        );
                        ctl.observe_price(next);
                        (node, admission.populations, next)
                    })
                    .collect::<Vec<NodeOutcome>>()
            };
            let (head, rest) = gamma_controllers.split_at_mut(node_chunk.min(num_nodes));
            let outcomes: Vec<Vec<NodeOutcome>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = rest
                        .chunks_mut(node_chunk)
                        .enumerate()
                        .map(|(chunk_index, controllers)| {
                            let start = (chunk_index + 1) * node_chunk;
                            scope.spawn(move || run_chunk(start, controllers))
                        })
                        .collect();
                    let mut outcomes = vec![run_chunk(0, head)];
                    outcomes
                        .extend(handles.into_iter().map(crate::parallel::join_worker));
                    outcomes
                });
            for chunk in outcomes {
                for (node, node_populations, next) in chunk {
                    for (class, n) in node_populations {
                        populations[class.index()] = n;
                    }
                    prices.set_node(node, next);
                }
            }
        }

        // 3b. Link price update, sharded per link.
        let allocation = self.allocation();
        let num_links = self.problem.num_links();
        if num_links > 0 {
            let link_chunk = num_links.div_ceil(workers).max(1);
            let next_prices: Vec<f64> = {
                let problem = &self.problem;
                let prices = &self.prices;
                let allocation = &allocation;
                let link_gamma = self.config.link_gamma;
                let price_chunk = |start: usize, end: usize| {
                    (start..end)
                        .map(|i| {
                            let link = LinkId::new(i as u32);
                            let usage = allocation.link_usage(problem, link);
                            update_link_price(
                                prices.link(link),
                                usage,
                                problem.link(link).capacity,
                                link_gamma,
                            )
                        })
                        .collect::<Vec<f64>>()
                };
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..num_links)
                        .step_by(link_chunk)
                        .skip(1)
                        .map(|start| {
                            let end = (start + link_chunk).min(num_links);
                            scope.spawn(move || price_chunk(start, end))
                        })
                        .collect();
                    let mut out = price_chunk(0, link_chunk.min(num_links));
                    out.reserve(num_links - out.len());
                    for handle in handles {
                        out.extend(crate::parallel::join_worker(handle));
                    }
                    out
                })
            };
            for (i, price) in next_prices.into_iter().enumerate() {
                self.prices.set_link(LinkId::new(i as u32), price);
            }
        }

        let utility = allocation.total_utility(&self.problem);
        self.record_step(utility);
        utility
    }

    /// Advances the iteration counter and records the enabled trace
    /// channels (shared by both step paths).
    fn record_step(&mut self, utility: f64) {
        self.iteration += 1;
        self.trace.utility.push(utility);
        if let Some(series) = self.trace.rates.as_mut() {
            for (s, &r) in series.iter_mut().zip(&self.rates) {
                s.push(r);
            }
        }
        if let Some(series) = self.trace.node_prices.as_mut() {
            for (s, &p) in series.iter_mut().zip(self.prices.node_prices()) {
                s.push(p);
            }
        }
        if let Some(series) = self.trace.link_prices.as_mut() {
            for (s, &p) in series.iter_mut().zip(self.prices.link_prices()) {
                s.push(p);
            }
        }
        if let Some(series) = self.trace.populations.as_mut() {
            for (s, &n) in series.iter_mut().zip(&self.populations) {
                s.push(n);
            }
        }
        if let Some(series) = self.trace.gammas.as_mut() {
            for (s, ctl) in series.iter_mut().zip(&self.gamma_controllers) {
                s.push(ctl.gamma());
            }
        }
    }

    /// Runs exactly `iterations` steps; returns the final utility (0.0 if
    /// `iterations` is 0 and nothing has run yet).
    pub fn run(&mut self, iterations: usize) -> f64 {
        let mut last = self.trace.utility.last().unwrap_or(0.0);
        for _ in 0..iterations {
            last = self.step();
        }
        last
    }

    /// Runs until the configured convergence criterion holds on the utility
    /// trace or `max_iterations` steps have executed, whichever is first.
    pub fn run_until_converged(&mut self, max_iterations: usize) -> RunOutcome {
        let mut last = self.trace.utility.last().unwrap_or(0.0);
        for k in 1..=max_iterations {
            last = self.step();
            if self.config.convergence.is_met(&self.trace.utility) {
                return RunOutcome { converged_at: Some(k), iterations: k, utility: last };
            }
        }
        RunOutcome { converged_at: None, iterations: max_iterations, utility: last }
    }

    /// The current allocation (rates + populations).
    pub fn allocation(&self) -> Allocation {
        Allocation::from_parts(&self.problem, self.rates.clone(), self.populations.clone())
    }

    /// Total utility of the current allocation.
    pub fn total_utility(&self) -> f64 {
        self.allocation().total_utility(&self.problem)
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The engine configuration.
    pub fn config(&self) -> &LrgpConfig {
        &self.config
    }

    /// Number of iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Current prices.
    pub fn prices(&self) -> &PriceVector {
        &self.prices
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-node γ controllers, indexed by node id (snapshot support).
    pub(crate) fn gamma_controllers(&self) -> &[GammaController] {
        &self.gamma_controllers
    }

    /// Overwrites the optimizer state (snapshot support). Lengths are the
    /// caller's responsibility; [`crate::snapshot`] validates them against
    /// the problem.
    pub(crate) fn load_state(
        &mut self,
        rates: Vec<f64>,
        populations: Vec<f64>,
        prices: PriceVector,
        gamma_controllers: Vec<GammaController>,
        iteration: usize,
    ) {
        self.rates = rates;
        self.populations = populations;
        self.prices = prices;
        self.gamma_controllers = gamma_controllers;
        self.iteration = iteration;
        // The caches no longer describe the stored state; rebuild from
        // scratch on the next incremental step.
        self.incremental = None;
    }

    /// Current γ of `node`'s price controller.
    pub fn node_gamma(&self, node: lrgp_model::NodeId) -> f64 {
        self.gamma_controllers[node.index()].gamma()
    }

    /// Replaces the problem mid-run, preserving prices, rates, populations,
    /// γ controllers and the trace. The new problem must have identical
    /// dimensions (same id spaces) — use the [`Problem::without_flow`] /
    /// capacity-editing transforms, which keep ids stable.
    ///
    /// # Panics
    ///
    /// Panics if any dimension differs.
    pub fn replace_problem(&mut self, problem: Problem) {
        assert_eq!(problem.num_flows(), self.problem.num_flows(), "flow count must not change");
        assert_eq!(problem.num_nodes(), self.problem.num_nodes(), "node count must not change");
        assert_eq!(problem.num_links(), self.problem.num_links(), "link count must not change");
        assert_eq!(
            problem.num_classes(),
            self.problem.num_classes(),
            "class count must not change"
        );
        // Clamp state into the new problem's bounds so the next iteration
        // starts feasible.
        for f in problem.flow_ids() {
            self.rates[f.index()] = problem.flow(f).bounds.clamp(self.rates[f.index()]);
        }
        for c in problem.class_ids() {
            let max = problem.class(c).max_population as f64;
            self.populations[c.index()] = self.populations[c.index()].min(max);
        }
        self.problem = problem;
        // Term tables and dirty sets were built against the old problem;
        // the next incremental step rebuilds them and treats everything as
        // dirty, exactly like a freshly constructed engine would.
        self.incremental = None;
    }

    /// Removes `flow` from the system (its source leaves, §4.2 Fig. 3):
    /// rate collapses to zero, its classes stop being admitted, its resource
    /// costs vanish. Ids remain valid.
    pub fn remove_flow(&mut self, flow: FlowId) {
        let pruned = self.problem.without_flow(flow);
        self.replace_problem(pruned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::{self, base_workload};
    use lrgp_model::{ClassId, NodeId};

    fn quick_config() -> LrgpConfig {
        LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() }
    }

    #[test]
    fn engine_runs_and_produces_positive_utility() {
        let mut e = LrgpEngine::new(base_workload(), quick_config());
        let u = e.run(50);
        assert!(u > 0.0, "utility {u}");
        assert_eq!(e.iteration(), 50);
        assert_eq!(e.trace().len(), 50);
    }

    #[test]
    fn allocation_feasible_after_every_iteration() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        for _ in 0..60 {
            e.step();
            let a = e.allocation();
            let report = a.check_feasibility(e.problem(), 1e-6);
            assert!(report.is_feasible(), "iteration {}: {report}", e.iteration());
        }
    }

    #[test]
    fn populations_integral_by_default() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        e.run(30);
        assert!(e.allocation().populations_are_integral());
    }

    #[test]
    fn fractional_mode_may_split_consumers() {
        let cfg = LrgpConfig {
            population_mode: PopulationMode::Fractional,
            ..LrgpConfig::default()
        };
        let mut e = LrgpEngine::new(base_workload(), cfg);
        e.run(30);
        // Fractional utility dominates integral utility for same dynamics.
        assert!(e.total_utility() > 0.0);
    }

    #[test]
    fn converges_on_base_workload() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        let out = e.run_until_converged(250);
        assert!(out.converged_at.is_some(), "did not converge in 250 iterations");
        let k = out.converged_at.unwrap();
        assert!(k <= 100, "converged too slowly: {k}");
        assert!(out.utility > 1e5, "implausibly low utility {}", out.utility);
    }

    #[test]
    fn adaptive_gamma_converges_no_slower_than_small_fixed_gamma() {
        let adaptive = {
            let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
            e.run_until_converged(1000)
        };
        let fixed_small = {
            let cfg = LrgpConfig { gamma: GammaMode::fixed(0.01), ..LrgpConfig::default() };
            let mut e = LrgpEngine::new(base_workload(), cfg);
            e.run_until_converged(1000)
        };
        let a = adaptive.converged_at.unwrap_or(usize::MAX);
        let f = fixed_small.converged_at.unwrap_or(usize::MAX);
        assert!(a <= f, "adaptive {a} vs fixed-0.01 {f}");
    }

    #[test]
    fn undamped_gamma_oscillates_more_than_damped() {
        let amplitude = |gamma: f64| {
            let cfg = LrgpConfig { gamma: GammaMode::fixed(gamma), ..LrgpConfig::default() };
            let mut e = LrgpEngine::new(base_workload(), cfg);
            e.run(250);
            // Amplitude over the last 50 iterations.
            let tail = e.trace().utility.window(200, 250);
            let max = tail.iter().cloned().fold(f64::MIN, f64::max);
            let min = tail.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let undamped = amplitude(1.0);
        let damped = amplitude(0.1);
        assert!(
            undamped > damped,
            "expected γ=1 amplitude ({undamped}) > γ=0.1 amplitude ({damped})"
        );
    }

    #[test]
    fn utility_scales_linearly_with_cnode_copies() {
        let run = |w: workloads::Table2Workload| {
            let mut e = LrgpEngine::new(w.build(), LrgpConfig::default());
            e.run_until_converged(250).utility
        };
        let base = run(workloads::Table2Workload::Base);
        let doubled = run(workloads::Table2Workload::Flows6Cnodes6);
        let ratio = doubled / base;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "6f/6c should be ~2x base: base {base}, doubled {doubled}"
        );
    }

    #[test]
    fn removing_a_flow_drops_then_recovers_utility() {
        let mut e = LrgpEngine::new(base_workload(), quick_config());
        e.run(150);
        let before = e.total_utility();
        e.remove_flow(FlowId::new(5)); // the rank-100 flow, as in Fig. 3
        e.run(100);
        let after = e.total_utility();
        assert!(after > 0.0);
        assert!(
            after < before,
            "utility should drop after removing the top flow: {before} -> {after}"
        );
        // Flow 5's rate and populations are zeroed.
        assert_eq!(e.allocation().rate(FlowId::new(5)), 0.0);
        for &c in e.problem().classes_of_flow(FlowId::new(5)) {
            assert_eq!(e.allocation().population(c), 0.0);
        }
        // Still feasible.
        assert!(e.allocation().is_feasible(e.problem(), 1e-6));
    }

    #[test]
    fn trace_channels_populate_when_enabled() {
        let mut e = LrgpEngine::new(base_workload(), quick_config());
        e.run(5);
        let t = e.trace();
        assert_eq!(t.rates.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.node_prices.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.populations.as_ref().unwrap()[0].len(), 5);
        assert_eq!(t.gammas.as_ref().unwrap()[0].len(), 5);
    }

    #[test]
    fn initial_rate_variants() {
        let p = base_workload();
        let min = LrgpEngine::new(
            p.clone(),
            LrgpConfig { initial_rate: InitialRate::Min, ..Default::default() },
        );
        assert!(min.allocation().rates().iter().all(|&r| r == 10.0));
        let max = LrgpEngine::new(p.clone(), LrgpConfig::default());
        assert!(max.allocation().rates().iter().all(|&r| r == 1000.0));
        let fixed = LrgpEngine::new(
            p,
            LrgpConfig { initial_rate: InitialRate::Value(5000.0), ..Default::default() },
        );
        assert!(fixed.allocation().rates().iter().all(|&r| r == 1000.0)); // clamped
    }

    #[test]
    fn node_gamma_visible_and_clamped() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        e.run(50);
        for n in e.problem().node_ids() {
            let g = e.node_gamma(n);
            assert!((0.001..=0.1).contains(&g), "gamma {g} out of clamp");
        }
    }

    #[test]
    #[should_panic(expected = "flow count must not change")]
    fn replace_problem_rejects_dimension_change() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        e.replace_problem(workloads::paper_workload(
            lrgp_model::UtilityShape::Log,
            2,
            1,
        ));
    }

    #[test]
    fn high_rank_classes_admitted_first() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        e.run_until_converged(250);
        let a = e.allocation();
        // The rank-100 class pair (18, 19) should reach a substantial
        // fraction of its population before rank-1 classes see anyone.
        let top = a.population(ClassId::new(18)) + a.population(ClassId::new(19));
        let bottom = a.population(ClassId::new(4)) + a.population(ClassId::new(5));
        assert!(top > bottom, "rank-100 ({top}) vs rank-1 ({bottom})");
        assert!(top > 0.0);
    }

    #[test]
    fn prices_remain_nonnegative_throughout() {
        let mut e = LrgpEngine::new(base_workload(), LrgpConfig::default());
        for _ in 0..100 {
            e.step();
            assert!(e.prices().node_prices().iter().all(|&p| p >= 0.0));
        }
        let _ = e.node_gamma(NodeId::new(0));
    }
}
