//! Sharded parallel execution of the LRGP step.
//!
//! One LRGP iteration is embarrassingly parallel *within* each of its three
//! phases: rate allocation is independent per flow source (Algorithm 1),
//! greedy admission and the node price update are independent per node
//! (Algorithm 2 + Eq. 12; every class is attached to exactly one node, so
//! population writes never conflict), and the link price update is
//! independent per link (Eq. 13). The engine shards each phase over
//! [`std::thread::scope`] workers in contiguous id-order chunks and applies
//! the per-element results in id order.
//!
//! # Determinism guarantee
//!
//! For a fixed problem and configuration the parallel engine's trace is
//! **bit-identical** to the sequential engine's, regardless of worker count
//! or scheduling. This holds by construction rather than by tolerance:
//!
//! * every per-element kernel (`rate::allocate_rate_for_flow`,
//!   `admission::allocate_consumers`, `price::update_node_price_with_rule`,
//!   `price::update_link_price`) is a pure function of the *previous*
//!   iteration's published state, so workers read frozen inputs;
//! * elements are partitioned by id, writes target disjoint slots, and the
//!   chunk results are reduced back in id order;
//! * every floating-point *summation* (per-flow aggregate prices, per-link
//!   usage, total utility) runs inside one kernel in the same element order
//!   as the sequential engine — the sharding never reassociates a sum.
//!
//! The differential harness in `tests/differential.rs` enforces this with
//! `f64::to_bits` equality at every iteration over randomized problems.
//!
//! # Composition with incremental evaluation
//!
//! The dirty-set step ([`crate::incremental`]) shards the *dirty* element
//! lists instead of the full id ranges, resolving its worker count with
//! [`Parallelism::workers_for`] on the dirty count — a step with ten dirty
//! flows stays sequential under [`Parallelism::Auto`] even on a
//! thousand-flow problem. The same determinism argument applies unchanged:
//! the dirty lists are sorted ascending, chunks are contiguous sublists,
//! and skipped elements keep their previous-iteration bits, so the parallel
//! incremental trace is bit-identical to the sequential baseline too (same
//! harness, same `to_bits` check).

use crate::engine::{LrgpConfig, LrgpEngine, RunOutcome};
use crate::prices::PriceVector;
use crate::trace::Trace;
use lrgp_model::{Allocation, Problem};
use serde::{Deserialize, Serialize};

/// Minimum number of per-phase work units before [`Parallelism::Auto`]
/// bothers spawning workers; below this the per-step thread-spawn cost
/// dominates the kernel work.
const AUTO_MIN_UNITS: usize = 192;

/// Worker-count ceiling for [`Parallelism::Auto`] (spawn cost grows linearly
/// with workers while per-step work is fixed).
const AUTO_MAX_WORKERS: usize = 8;

/// Joins a scoped worker, re-raising its panic payload unchanged.
///
/// Equivalent to `handle.join().expect(...)` but preserves the worker's
/// original panic payload instead of replacing it with a new message, and
/// keeps panicking escape hatches out of library code (the
/// `library-unwrap` lint invariant).
pub(crate) fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// How the engine executes the three phases of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single-threaded reference execution (the default).
    #[default]
    Sequential,
    /// Shard each phase over exactly this many scoped worker threads
    /// (values are clamped to at least 1 and at most one worker per
    /// element).
    Threads(usize),
    /// Pick a worker count from [`std::thread::available_parallelism`], or
    /// stay sequential when the problem is too small to amortize the
    /// per-step spawn cost.
    Auto,
}

impl Parallelism {
    /// Resolves the worker count for a phase of `units` independent
    /// elements. A result of 1 means the sequential path.
    pub fn workers_for(self, units: usize) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, units.max(1)),
            Parallelism::Auto => {
                if units < AUTO_MIN_UNITS {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .min(AUTO_MAX_WORKERS)
                        .min(units)
                }
            }
        }
    }
}

/// An [`LrgpEngine`] that always runs the sharded parallel step.
///
/// This is a thin, deliberately transparent wrapper: the parallel path lives
/// inside [`LrgpEngine::step`] (selected by [`LrgpConfig::parallelism`]) so
/// both engines share every line of kernel code, and this type only pins the
/// configuration to a parallel mode. Construction promotes
/// [`Parallelism::Sequential`] to [`Parallelism::Auto`]; use
/// [`ParallelLrgpEngine::with_threads`] for an explicit worker count.
///
/// # Examples
///
/// ```
/// use lrgp::{LrgpConfig, LrgpEngine, ParallelLrgpEngine};
/// use lrgp_model::workloads;
///
/// let problem = workloads::base_workload();
/// let mut sequential = LrgpEngine::new(problem.clone(), LrgpConfig::default());
/// let mut parallel = ParallelLrgpEngine::with_threads(problem, LrgpConfig::default(), 4);
/// for _ in 0..10 {
///     // Bit-identical, not merely approximately equal.
///     assert_eq!(sequential.step().to_bits(), parallel.step().to_bits());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelLrgpEngine {
    inner: LrgpEngine,
}

impl ParallelLrgpEngine {
    /// Creates a parallel engine. A `config` requesting
    /// [`Parallelism::Sequential`] is promoted to [`Parallelism::Auto`];
    /// any explicit parallel mode is kept as-is.
    pub fn new(problem: Problem, mut config: LrgpConfig) -> Self {
        if config.parallelism == Parallelism::Sequential {
            config.parallelism = Parallelism::Auto;
        }
        Self { inner: LrgpEngine::new(problem, config) }
    }

    /// Creates a parallel engine sharding over exactly `threads` workers.
    pub fn with_threads(problem: Problem, mut config: LrgpConfig, threads: usize) -> Self {
        config.parallelism = Parallelism::Threads(threads);
        Self { inner: LrgpEngine::new(problem, config) }
    }

    /// Executes one sharded LRGP iteration; returns the total utility.
    pub fn step(&mut self) -> f64 {
        self.inner.step()
    }

    /// Runs exactly `iterations` steps; returns the final utility.
    pub fn run(&mut self, iterations: usize) -> f64 {
        self.inner.run(iterations)
    }

    /// Runs until convergence or `max_iterations`, whichever is first.
    pub fn run_until_converged(&mut self, max_iterations: usize) -> RunOutcome {
        self.inner.run_until_converged(max_iterations)
    }

    /// The current allocation (rates + populations).
    pub fn allocation(&self) -> Allocation {
        self.inner.allocation()
    }

    /// Total utility of the current allocation.
    pub fn total_utility(&self) -> f64 {
        self.inner.total_utility()
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        self.inner.problem()
    }

    /// The engine configuration (with the pinned parallel mode).
    pub fn config(&self) -> &LrgpConfig {
        self.inner.config()
    }

    /// Number of iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.inner.iteration()
    }

    /// Current prices.
    pub fn prices(&self) -> &PriceVector {
        self.inner.prices()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        self.inner.trace()
    }

    /// Borrows the underlying engine.
    pub fn engine(&self) -> &LrgpEngine {
        &self.inner
    }

    /// Mutably borrows the underlying engine (for dynamics scenarios such
    /// as [`LrgpEngine::remove_flow`]).
    pub fn engine_mut(&mut self) -> &mut LrgpEngine {
        &mut self.inner
    }

    /// Unwraps into the underlying engine.
    pub fn into_inner(self) -> LrgpEngine {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_worker() {
        assert_eq!(Parallelism::Sequential.workers_for(10_000), 1);
    }

    #[test]
    fn threads_clamp_to_units_and_one() {
        assert_eq!(Parallelism::Threads(0).workers_for(100), 1);
        assert_eq!(Parallelism::Threads(4).workers_for(100), 4);
        assert_eq!(Parallelism::Threads(64).workers_for(3), 3);
        assert_eq!(Parallelism::Threads(4).workers_for(0), 1);
    }

    #[test]
    fn auto_stays_sequential_on_small_problems() {
        assert_eq!(Parallelism::Auto.workers_for(8), 1);
        assert!(Parallelism::Auto.workers_for(100_000) >= 1);
    }

    #[test]
    fn parallelism_serde_round_trip() {
        for p in [Parallelism::Sequential, Parallelism::Threads(6), Parallelism::Auto] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
