//! Deprecated location of [`Parallelism`] and the parallel engine wrapper.
//!
//! Sharded execution is now an [`crate::plan::ExecutionPlan`] axis rather
//! than a separate engine: construct an [`Engine`](crate::Engine) with
//! [`LrgpConfig::parallelism`] set and every step shards automatically (see
//! [`crate::plan`] for the determinism argument). This module keeps the old
//! wrapper compiling for one release.

pub use crate::plan::Parallelism;

use crate::engine::{Engine, LrgpConfig, RunOutcome};
use crate::kernel::price::PriceVector;
use crate::trace::Trace;
use lrgp_model::{Allocation, Problem};

/// An [`Engine`] pinned to a parallel execution plan.
///
/// Deprecated: the wrapper only rewrites [`LrgpConfig::parallelism`] before
/// construction. Set the field directly and use [`Engine`].
#[deprecated(
    since = "0.2.0",
    note = "set `LrgpConfig::parallelism` and use `Engine` directly"
)]
#[derive(Debug, Clone)]
pub struct ParallelLrgpEngine {
    inner: Engine,
}

#[allow(deprecated)]
impl ParallelLrgpEngine {
    /// Creates a parallel engine. A `config` requesting
    /// [`Parallelism::Sequential`] is promoted to [`Parallelism::Auto`];
    /// any explicit parallel mode is kept as-is.
    pub fn new(problem: Problem, mut config: LrgpConfig) -> Self {
        if config.parallelism == Parallelism::Sequential {
            config.parallelism = Parallelism::Auto;
        }
        Self { inner: Engine::new(problem, config) }
    }

    /// Creates a parallel engine sharding over exactly `threads` workers.
    pub fn with_threads(problem: Problem, mut config: LrgpConfig, threads: usize) -> Self {
        config.parallelism = Parallelism::Threads(threads);
        Self { inner: Engine::new(problem, config) }
    }

    /// Executes one sharded LRGP iteration; returns the total utility.
    pub fn step(&mut self) -> f64 {
        self.inner.step()
    }

    /// Runs exactly `iterations` steps; returns the final utility.
    pub fn run(&mut self, iterations: usize) -> f64 {
        self.inner.run(iterations)
    }

    /// Runs until convergence or `max_iterations`, whichever is first.
    pub fn run_until_converged(&mut self, max_iterations: usize) -> RunOutcome {
        self.inner.run_until_converged(max_iterations)
    }

    /// The current allocation (rates + populations).
    pub fn allocation(&self) -> Allocation {
        self.inner.allocation()
    }

    /// Total utility of the current allocation.
    pub fn total_utility(&self) -> f64 {
        self.inner.total_utility()
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        self.inner.problem()
    }

    /// The engine configuration (with the pinned parallel mode).
    pub fn config(&self) -> &LrgpConfig {
        self.inner.config()
    }

    /// Number of iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.inner.iteration()
    }

    /// Current prices.
    pub fn prices(&self) -> &PriceVector {
        self.inner.prices()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        self.inner.trace()
    }

    /// Borrows the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.inner
    }

    /// Mutably borrows the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.inner
    }

    /// Unwraps into the underlying engine.
    pub fn into_inner(self) -> Engine {
        self.inner
    }
}
