//! Greedy consumer admission (§3.2, Eq. 10) and the node benefit–cost ratio
//! (§3.3, Eq. 11).
//!
//! Given the current flow rates, each consumer-hosting node sorts its
//! classes by benefit–cost ratio `BC_j = U_j(r_i) / (G_{b,j} · r_i)` and
//! admits consumers in that order until a class saturates (`n_j = n_j^max`)
//! or the node constraint would be violated. The paper's greedy stops at the
//! first class blocked by the constraint; the first-fit-decreasing variant
//! (which continues down the list to try cheaper classes) is available as an
//! ablation via [`AdmissionPolicy::FirstFitDecreasing`].

use lrgp_model::{ClassId, NodeId, Problem};
use serde::{Deserialize, Serialize};

/// Whether populations are whole consumers or may end in a fractional
/// consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PopulationMode {
    /// Whole consumers only (the paper's model: `n_j` increases by 1).
    #[default]
    Integral,
    /// The last admitted consumer of a class may be fractional. Useful as an
    /// analytical relaxation: it upper-bounds the integral greedy utility at
    /// the node.
    Fractional,
}

/// How the greedy proceeds when the node constraint blocks the current
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Stop allocating at this node entirely (the paper's Algorithm, §3.2).
    #[default]
    StopAtFirstBlock,
    /// Skip the blocked class and keep trying cheaper classes further down
    /// the benefit–cost order (first-fit decreasing). Never worse in
    /// admitted utility than stopping; used for the admission ablation.
    FirstFitDecreasing,
}

/// The benefit–cost ratio `BC_j` of one class at rate `rate` (Eq. 10): the
/// utility gained per unit of node resource spent when admitting one more
/// consumer.
///
/// Returns 0 for non-positive rates (a removed flow carries no benefit).
pub fn benefit_cost(problem: &Problem, class: ClassId, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    let spec = problem.class(class);
    spec.utility.value(rate) / (spec.consumer_cost * rate)
}

/// Result of running the greedy admission at one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAdmission {
    /// Per-class populations decided at this node, in
    /// [`Problem::classes_at_node`] order.
    pub populations: Vec<(ClassId, f64)>,
    /// `used_b(t)`: node resource consumed after allocation, including the
    /// consumer-independent flow costs `F_{b,i} · r_i`.
    pub used: f64,
    /// `BC(b, t)` (Eq. 11): the highest benefit–cost ratio among classes
    /// that did not reach `n_j^max`; 0 when every class saturated (no
    /// unadmitted demand remains to price).
    pub benefit_cost: f64,
}

/// Runs the greedy consumer allocation at `node` given the rates of the
/// current iteration (`rates` is indexed by flow id).
///
/// The returned populations respect the node constraint whenever the flow
/// costs alone fit in the capacity; if they do not (`used > c_b` with all
/// `n_j = 0`), all classes stay empty and the overload is visible in
/// [`NodeAdmission::used`], which drives the price up through Eq. 12's
/// second branch.
pub fn allocate_consumers(
    problem: &Problem,
    node: NodeId,
    rates: &[f64],
    mode: PopulationMode,
    policy: AdmissionPolicy,
) -> NodeAdmission {
    let mut order: Vec<(ClassId, f64)> =
        problem.classes_at_node(node).iter().map(|&c| (c, 0.0)).collect();
    let mut populations = Vec::with_capacity(order.len());
    let (used, benefit_cost) =
        allocate_consumers_into(problem, node, rates, mode, policy, &mut order, &mut populations);
    NodeAdmission { populations, used, benefit_cost }
}

/// The greedy admission kernel of [`allocate_consumers`], writing into
/// caller-owned scratch so the engine's hot loop allocates nothing.
///
/// `order` must hold exactly the classes of `node` (any permutation; the
/// paired `f64`s are stale benefit–cost values and are overwritten).
/// `populations` is cleared and refilled. Returns `(used, benefit_cost)`.
///
/// The comparator below is a *strict total order* (`f64::total_cmp`, ties
/// broken by class id, ids unique), so the sorted result is unique no matter
/// how `order` was permuted on entry — which is what lets the incremental
/// engine keep each node's previously sorted order as the starting point
/// (`sort_by` is adaptive and near-sorted input re-sorts in linear time)
/// while staying bit-identical to a from-scratch sort.
pub fn allocate_consumers_into(
    problem: &Problem,
    node: NodeId,
    rates: &[f64],
    mode: PopulationMode,
    policy: AdmissionPolicy,
    order: &mut [(ClassId, f64)],
    populations: &mut Vec<(ClassId, f64)>,
) -> (f64, f64) {
    // Consumer-independent flow cost at this node.
    let flow_cost: f64 = problem
        .flows_at_node(node)
        .iter()
        .map(|&flow| problem.flow_node_cost(node, flow) * rates[flow.index()])
        .sum();
    let capacity = problem.node(node).capacity;

    // Classes ordered by decreasing benefit–cost ratio. Ties broken by
    // class id for determinism; `total_cmp` keeps the comparator a total
    // order even for NaN/degenerate ratios (a NaN BC — e.g. an unbounded
    // rate — must not make the sort order unspecified).
    for entry in order.iter_mut() {
        let r = rates[problem.class(entry.0).flow.index()];
        entry.1 = benefit_cost(problem, entry.0, r);
    }
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut remaining = capacity - flow_cost;
    let mut used = flow_cost;
    populations.clear();
    let mut node_bc: f64 = 0.0;
    let mut blocked = false;

    for &(class, bc) in order.iter() {
        let spec = problem.class(class);
        let rate = rates[spec.flow.index()];
        let max = spec.max_population as f64;
        if max == 0.0 || rate <= 0.0 {
            populations.push((class, 0.0));
            continue;
        }
        let per_consumer = spec.consumer_cost * rate;
        let admitted = if blocked || remaining <= 0.0 {
            0.0
        } else {
            let affordable = remaining / per_consumer;
            match mode {
                PopulationMode::Integral => affordable.floor().min(max),
                PopulationMode::Fractional => affordable.min(max),
            }
        };
        let admitted = admitted.max(0.0);
        if admitted < max {
            // This class still has unadmitted demand; it is eligible for
            // the node benefit–cost ratio (Eq. 11) ...
            node_bc = node_bc.max(bc);
            // ... and, if the capacity (not n_max) is what stopped it, the
            // paper's greedy halts the whole allocation here.
            if !blocked
                && remaining > 0.0
                && matches!(policy, AdmissionPolicy::StopAtFirstBlock)
            {
                blocked = true;
            }
            if remaining <= 0.0 {
                blocked = matches!(policy, AdmissionPolicy::StopAtFirstBlock);
            }
        }
        remaining -= admitted * per_consumer;
        used += admitted * per_consumer;
        populations.push((class, admitted));
    }

    (used, node_bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};

    /// One node of capacity `cap`; `specs` gives (n_max, rank, G) per class;
    /// every class consumes its own flow at fixed rate 100 and F = 0 unless
    /// `f_cost` is set.
    fn one_node(cap: f64, f_cost: f64, specs: &[(u32, f64, f64)]) -> (Problem, Vec<f64>) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(cap);
        let mut rates = Vec::new();
        for &(n_max, rank, g) in specs {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, f_cost);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(100.0);
        }
        (b.build().unwrap(), rates)
    }

    fn pops(adm: &NodeAdmission) -> Vec<f64> {
        let mut v: Vec<(ClassId, f64)> = adm.populations.clone();
        v.sort_by_key(|(c, _)| *c);
        v.into_iter().map(|(_, n)| n).collect()
    }

    #[test]
    fn benefit_cost_matches_formula() {
        let (p, _) = one_node(1e6, 0.0, &[(10, 20.0, 19.0)]);
        let bc = benefit_cost(&p, ClassId::new(0), 99.0);
        let expected = 20.0 * 100.0f64.ln() / (19.0 * 99.0);
        assert!((bc - expected).abs() < 1e-12);
        assert_eq!(benefit_cost(&p, ClassId::new(0), 0.0), 0.0);
        assert_eq!(benefit_cost(&p, ClassId::new(0), -5.0), 0.0);
    }

    #[test]
    fn greedy_admits_in_benefit_cost_order() {
        // Capacity fits 30 consumers at cost 19·100 = 1900 each.
        let cap = 30.0 * 1900.0;
        let (p, rates) = one_node(cap, 0.0, &[(20, 5.0, 19.0), (20, 50.0, 19.0)]);
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        // Class 1 (rank 50) saturates at 20; class 0 gets the remaining 10.
        assert_eq!(pops(&adm), vec![10.0, 20.0]);
        // Node BC: class 0 is the unsaturated one.
        let expected_bc = benefit_cost(&p, ClassId::new(0), 100.0);
        assert!((adm.benefit_cost - expected_bc).abs() < 1e-12);
        assert!((adm.used - cap).abs() < 1e-9);
    }

    #[test]
    fn paper_greedy_stops_at_first_blocked_class() {
        // Class 1 (high BC) consumers cost 19·100; class 0 (low BC, cheap G)
        // cost 1·100. Capacity fits 5 expensive consumers + change that can
        // only fit cheap ones.
        let cap = 5.0 * 1900.0 + 500.0;
        // bc(class1) = 500·log(101)/1900 ≈ 1.21 > bc(class0) = 5·log(101)/100 ≈ 0.23
        let (p, rates) = one_node(cap, 0.0, &[(100, 5.0, 1.0), (100, 500.0, 19.0)]);
        let stop = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        // Paper greedy: admits 5 of class 1, blocked, stops: class 0 gets 0.
        assert_eq!(pops(&stop), vec![0.0, 5.0]);
        let ffd = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::FirstFitDecreasing,
        );
        // FFD continues: 500 / 100 = 5 cheap consumers.
        assert_eq!(pops(&ffd), vec![5.0, 5.0]);
        assert!(ffd.used > stop.used);
    }

    #[test]
    fn fractional_mode_fills_capacity_exactly() {
        let cap = 10.5 * 1900.0;
        let (p, rates) = one_node(cap, 0.0, &[(100, 50.0, 19.0)]);
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Fractional,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert!((pops(&adm)[0] - 10.5).abs() < 1e-9);
        assert!((adm.used - cap).abs() < 1e-6);
    }

    #[test]
    fn integral_mode_floors() {
        let cap = 10.7 * 1900.0;
        let (p, rates) = one_node(cap, 0.0, &[(100, 50.0, 19.0)]);
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert_eq!(pops(&adm)[0], 10.0);
    }

    #[test]
    fn flow_costs_reduce_budget_and_overload_reports_used() {
        // Flow costs alone exceed capacity: nobody admitted, used > cap.
        let (p, rates) = one_node(100.0, 50.0, &[(10, 5.0, 19.0), (10, 7.0, 19.0)]);
        // Two flows each at rate 100 with F = 50 ⇒ flow cost 10_000.
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert_eq!(pops(&adm), vec![0.0, 0.0]);
        assert!((adm.used - 10_000.0).abs() < 1e-9);
        // All classes unsaturated ⇒ BC is the max individual ratio.
        let bc_max = benefit_cost(&p, ClassId::new(1), 100.0);
        assert!((adm.benefit_cost - bc_max).abs() < 1e-12);
    }

    #[test]
    fn saturating_everything_yields_zero_node_bc() {
        let cap = 1e9;
        let (p, rates) = one_node(cap, 0.0, &[(3, 5.0, 19.0), (4, 7.0, 19.0)]);
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert_eq!(pops(&adm), vec![3.0, 4.0]);
        assert_eq!(adm.benefit_cost, 0.0);
    }

    #[test]
    fn zero_rate_flow_classes_are_skipped() {
        let (p, mut rates) = one_node(1e6, 0.0, &[(10, 5.0, 19.0), (10, 7.0, 19.0)]);
        rates[1] = 0.0;
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        let v = pops(&adm);
        assert_eq!(v[1], 0.0);
        assert!(v[0] > 0.0);
    }

    #[test]
    fn zero_max_population_classes_never_admit_nor_price() {
        let (p, rates) = one_node(1e6, 0.0, &[(0, 1e9, 19.0)]);
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert_eq!(pops(&adm), vec![0.0]);
        assert_eq!(adm.benefit_cost, 0.0);
    }

    #[test]
    fn admission_never_violates_capacity_when_flows_fit() {
        for cap in [1000.0, 5e4, 9e5, 3.7e6] {
            let (p, rates) =
                one_node(cap, 1.0, &[(500, 5.0, 19.0), (800, 50.0, 19.0), (200, 2.0, 7.0)]);
            for mode in [PopulationMode::Integral, PopulationMode::Fractional] {
                for policy in
                    [AdmissionPolicy::StopAtFirstBlock, AdmissionPolicy::FirstFitDecreasing]
                {
                    let adm = allocate_consumers(&p, NodeId::new(0), &rates, mode, policy);
                    assert!(
                        adm.used <= cap + 1e-6,
                        "cap {cap} violated: used {}",
                        adm.used
                    );
                }
            }
        }
    }

    #[test]
    fn nan_benefit_cost_is_handled_totally_and_deterministically() {
        // A NaN utility weight drives BC to NaN while every cost stays
        // finite. The old `partial_cmp(..).unwrap_or(Equal)` comparator was
        // *inconsistent* on such input (NaN "equal" to everything while real
        // ratios still ordered), leaving the sort order unspecified;
        // `total_cmp` keeps the order total, so the allocation must be
        // deterministic and must not panic.
        let cap = 30.0 * 1900.0;
        let (p, rates) = one_node(cap, 0.0, &[(20, f64::NAN, 19.0), (20, 50.0, 19.0)]);
        assert!(benefit_cost(&p, ClassId::new(0), 100.0).is_nan());
        let run = || {
            allocate_consumers(
                &p,
                NodeId::new(0),
                &rates,
                PopulationMode::Integral,
                AdmissionPolicy::StopAtFirstBlock,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "NaN BC must not make the order unspecified");
        // Under the total order NaN sorts above every real ratio, so the
        // degenerate class saturates first (20 consumers) and the finite one
        // takes the remaining 10 slots.
        assert_eq!(pops(&a), vec![20.0, 10.0]);
        assert!((a.used - cap).abs() < 1e-9);
        // Eq. 11's max ignores NaN: the node BC is the finite class's ratio.
        let expected_bc = benefit_cost(&p, ClassId::new(1), 100.0);
        assert_eq!(a.benefit_cost.to_bits(), expected_bc.to_bits());
    }

    #[test]
    fn scratch_kernel_matches_allocate_consumers_from_any_permutation() {
        let (p, rates) = one_node(
            12.0 * 1900.0,
            1.0,
            &[(500, 5.0, 19.0), (800, 50.0, 19.0), (200, 2.0, 7.0)],
        );
        let reference = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        // Feed the kernel every rotation of the class list with stale BC
        // values: the strict total order must produce the identical result.
        let classes: Vec<ClassId> = p.classes_at_node(NodeId::new(0)).to_vec();
        for rot in 0..classes.len() {
            let mut order: Vec<(ClassId, f64)> =
                classes.iter().cycle().skip(rot).take(classes.len()).map(|&c| (c, -1.0)).collect();
            let mut populations = Vec::new();
            let (used, bc) = allocate_consumers_into(
                &p,
                NodeId::new(0),
                &rates,
                PopulationMode::Integral,
                AdmissionPolicy::StopAtFirstBlock,
                &mut order,
                &mut populations,
            );
            assert_eq!(used.to_bits(), reference.used.to_bits());
            assert_eq!(bc.to_bits(), reference.benefit_cost.to_bits());
            assert_eq!(populations, reference.populations, "rotation {rot}");
        }
    }

    #[test]
    fn node_with_no_classes_reports_flow_cost_only() {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(1e4);
        let other = b.add_node(1e6);
        let src = b.add_node(1e6);
        let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
        b.set_node_cost(f, sink, 2.0);
        b.set_node_cost(f, other, 2.0);
        b.add_class(f, other, 10, Utility::log(5.0), 19.0);
        let p = b.build().unwrap();
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &[100.0],
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        assert!(adm.populations.is_empty());
        assert!((adm.used - 200.0).abs() < 1e-12);
        assert_eq!(adm.benefit_cost, 0.0);
    }
}
