//! The per-flow reliability best-response for joint rate–reliability
//! allocation (after Lee, Chiang, Calderbank, "Jointly optimal congestion
//! and contention control").
//!
//! When a [`lrgp_model::ReliabilitySpec`] is attached to the problem and the
//! plan selects [`crate::plan::Reliability::Joint`], each flow carries a
//! delivery-reliability variable `ρ_i ∈ [ρ_min, ρ_max] ⊆ (0, 1]` alongside
//! its rate. The flow's utility gains a concave reliability term
//!
//! ```text
//! V_i(ρ_i) = mass_i · ln(ρ_i),     mass_i = Σ_j n_j · w_j
//! ```
//!
//! (the same weighted population mass the log-rate solve uses), and pushing
//! reliability above the link's native delivery rate costs redundant
//! transmissions: the flow's usage of link `l` inflates by
//! `redundancy · loss_l · ρ_i`. Differentiating the Lagrangian in `ρ_i`
//! gives a closed-form best-response against the current link prices,
//! exactly mirroring the structure of
//! [`crate::kernel::vector::solve_log_rate`]:
//!
//! ```text
//! ρ_i* = clamp( mass_i / price_i ),
//! price_i = redundancy · r_i · Σ_l L_{l,i} · loss_l · λ_l
//! ```
//!
//! The coupling with the rate solve is handled by alternating best-response:
//! the rate kernel is untouched, and the two variables interact only through
//! the link prices (inflated usage raises `λ_l`, which lowers both `r` and
//! `ρ` on the next sweep). Like every kernel, both the strict and the
//! vectorized form are pure, allocation-free functions of their borrowed
//! inputs; the strict form folds terms left-to-right for bitwise
//! reproducibility, the vectorized form reuses [`dot_gather`]'s lane-batched
//! reduction and stays within the documented drift bound.

use lrgp_model::{FlowId, PriceTermTable, RhoBounds};

use crate::kernel::vector::{dot_gather, weighted_population_mass};

/// Weighted population mass `Σ_j n_j · w_j` of a flow's utility terms as a
/// strict left fold, plus whether any class has positive population.
///
/// Bitwise-reproducible counterpart of
/// [`weighted_population_mass`]; the two agree within the vectorized drift
/// bound and are bit-identical for ≤ [`crate::kernel::vector::LANES`] terms.
///
/// # Panics
///
/// Panics if a term's class index is out of range for `populations`.
pub fn rho_mass(terms: &[(u32, f64)], populations: &[f64]) -> (f64, bool) {
    let mut mass = 0.0;
    let mut active = false;
    for &(class, weight) in terms {
        let n = populations[class as usize];
        if n > 0.0 {
            active = true;
        }
        mass += weight * n;
    }
    (mass, active)
}

/// The reliability price `redundancy · rate · Σ_l (L_{l,i} · loss_l) · λ_l`
/// of a flow against the current link prices, as a strict left fold over the
/// flow's loss-weighted link terms ([`PriceTermTable::rho_link_terms`]).
///
/// Returns `0.0` for problems without a reliability spec (the term row is
/// empty), so callers never need to special-case the lossless problem.
///
/// # Panics
///
/// Panics if a term's link index is out of range for `link_prices`.
pub fn rho_price_from_table(
    table: &PriceTermTable,
    flow: FlowId,
    rate: f64,
    redundancy: f64,
    link_prices: &[f64],
) -> f64 {
    let mut sum = 0.0;
    for &(link, weight) in table.rho_link_terms(flow) {
        sum += weight * link_prices[link as usize];
    }
    redundancy * rate * sum
}

/// Lane-batched form of [`rho_price_from_table`] for the
/// [`crate::plan::Numerics::Vectorized`] axis: the gather-dot reduction is
/// reassociated, everything else is identical.
///
/// # Panics
///
/// Panics if a term's link index is out of range for `link_prices`.
pub fn rho_price_from_table_vectorized(
    table: &PriceTermTable,
    flow: FlowId,
    rate: f64,
    redundancy: f64,
    link_prices: &[f64],
) -> f64 {
    redundancy * rate * dot_gather(table.rho_link_terms(flow), link_prices)
}

/// Closed-form reliability best-response `ρ* = clamp(mass / price)` for the
/// logarithmic reliability utility `mass · ln(ρ)`.
///
/// Branch structure mirrors [`crate::kernel::vector::solve_log_rate`]: with
/// no active consumers the flow retreats to `bounds.min` under a positive
/// price and pins to the clamped `fallback` otherwise, and a zero price with
/// consumers saturates at `bounds.max` (extra delivery is free). Strictly
/// decreasing in `price` on the interior, and always within `bounds` by
/// construction.
pub fn solve_rho(mass: f64, active: bool, price: f64, bounds: RhoBounds, fallback: f64) -> f64 {
    debug_assert!(price >= 0.0, "prices are projected onto [0, ∞)");
    if !active {
        return if price > 0.0 { bounds.min } else { bounds.clamp(fallback) };
    }
    if price == 0.0 {
        return bounds.max;
    }
    bounds.clamp(mass / price)
}

/// Full per-flow reliability solve in strict numerics: strict mass fold,
/// strict price fold, then the closed form. Pure and allocation-free; this
/// is the unit of work the executor and the worker pool shard over.
///
/// # Panics
///
/// Panics if a term's class or link index is out of range for `populations`
/// or `link_prices`.
#[allow(clippy::too_many_arguments)]
pub fn solve_flow_rho(
    table: &PriceTermTable,
    flow: FlowId,
    link_prices: &[f64],
    populations: &[f64],
    rate: f64,
    bounds: RhoBounds,
    redundancy: f64,
    previous_rho: f64,
) -> f64 {
    let (mass, active) = rho_mass(table.utility_terms(flow), populations);
    let price = rho_price_from_table(table, flow, rate, redundancy, link_prices);
    solve_rho(mass, active, price, bounds, previous_rho)
}

/// Lane-batched sibling of [`solve_flow_rho`]: both reductions go through
/// [`dot_gather`], the branch structure and clamping are identical.
///
/// # Panics
///
/// Panics if a term's class or link index is out of range for `populations`
/// or `link_prices`.
#[allow(clippy::too_many_arguments)]
pub fn solve_flow_rho_vectorized(
    table: &PriceTermTable,
    flow: FlowId,
    link_prices: &[f64],
    populations: &[f64],
    rate: f64,
    bounds: RhoBounds,
    redundancy: f64,
    previous_rho: f64,
) -> f64 {
    let (mass, active) = weighted_population_mass(table.utility_terms(flow), populations);
    let price = rho_price_from_table_vectorized(table, flow, rate, redundancy, link_prices);
    solve_rho(mass, active, price, bounds, previous_rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads;
    use proptest::prelude::*;

    fn bounds() -> RhoBounds {
        RhoBounds::new(0.5, 0.999).unwrap()
    }

    #[test]
    fn solve_rho_mirrors_log_rate_branches() {
        let b = bounds();
        // Inactive flow: positive price retreats to min, zero price holds the
        // clamped fallback.
        assert_eq!(solve_rho(0.0, false, 2.0, b, 0.9).to_bits(), b.min.to_bits());
        assert_eq!(solve_rho(0.0, false, 0.0, b, 0.9).to_bits(), 0.9f64.to_bits());
        assert_eq!(solve_rho(0.0, false, 0.0, b, 2.0).to_bits(), b.max.to_bits());
        // Active flow at zero price saturates.
        assert_eq!(solve_rho(3.0, true, 0.0, b, 0.5).to_bits(), b.max.to_bits());
        // Interior solution is the exact quotient.
        let rho = solve_rho(3.0, true, 4.0, b, 0.5);
        assert_eq!(rho.to_bits(), (3.0f64 / 4.0).to_bits());
        // Expensive price clamps at the floor.
        assert_eq!(solve_rho(1.0, true, 100.0, b, 0.5).to_bits(), b.min.to_bits());
    }

    #[test]
    fn rho_mass_matches_vectorized_mass_on_short_rows() {
        let terms: Vec<(u32, f64)> = vec![(0, 1.5), (2, 2.0), (1, 0.25)];
        let populations = [3.0, 0.0, 7.0];
        let (strict, strict_active) = rho_mass(&terms, &populations);
        let (vector, vector_active) = weighted_population_mass(&terms, &populations);
        assert_eq!(strict.to_bits(), vector.to_bits());
        assert_eq!(strict_active, vector_active);
        let (_, idle) = rho_mass(&terms, &[0.0, 0.0, 0.0]);
        assert!(!idle);
    }

    #[test]
    fn rho_price_weights_terms_by_loss_and_redundancy() {
        let problem = workloads::lossy_link_bottleneck_workload(500.0, 0.1);
        let table = PriceTermTable::new(&problem);
        let flow = problem.flow_ids().next().unwrap();
        let link_prices = vec![2.0; problem.num_links()];
        let sum: f64 = table
            .rho_link_terms(flow)
            .iter()
            .map(|&(l, w)| w * link_prices[l as usize])
            .sum();
        let expected = 1.5 * 3.0 * sum;
        let strict = rho_price_from_table(&table, flow, 3.0, 1.5, &link_prices);
        let vector = rho_price_from_table_vectorized(&table, flow, 3.0, 1.5, &link_prices);
        assert_eq!(strict.to_bits(), expected.to_bits());
        // Short rows take dot_gather's scalar tail, so the two forms agree
        // bitwise here.
        assert_eq!(vector.to_bits(), strict.to_bits());
        assert!(strict > 0.0, "lossy bottleneck must charge for reliability");
    }

    #[test]
    fn rho_price_is_zero_without_a_spec() {
        let problem = workloads::link_bottleneck_workload(500.0);
        let table = PriceTermTable::new(&problem);
        let flow = problem.flow_ids().next().unwrap();
        let link_prices = vec![5.0; problem.num_links()];
        assert_eq!(rho_price_from_table(&table, flow, 3.0, 1.0, &link_prices), 0.0);
    }

    #[test]
    fn solve_flow_rho_strict_and_vectorized_agree_on_workload() {
        let problem = workloads::lossy_link_bottleneck_workload(500.0, 0.2);
        let table = PriceTermTable::new(&problem);
        let populations = vec![1.0; problem.num_classes()];
        let link_prices = vec![0.01; problem.num_links()];
        for flow in problem.flow_ids() {
            let b = problem.rho_bounds(flow).unwrap();
            let strict = solve_flow_rho(&table, flow, &link_prices, &populations, 40.0, b, 1.0, 0.9);
            let vector = solve_flow_rho_vectorized(
                &table,
                flow,
                &link_prices,
                &populations,
                40.0,
                b,
                1.0,
                0.9,
            );
            assert!(b.contains(strict, 0.0));
            assert_eq!(strict.to_bits(), vector.to_bits());
        }
    }

    proptest! {
        /// The best-response always lands inside the flow's ρ bounds.
        #[test]
        fn solve_rho_stays_in_bounds(
            mass in 0.0f64..1e6,
            price in 0.0f64..1e6,
            active in proptest::bool::ANY,
            (min, max) in (1e-3f64..1.0).prop_flat_map(|min| (Just(min), min..=1.0)),
            fallback in -1.0f64..2.0,
        ) {
            let b = RhoBounds::new(min, max).unwrap();
            let rho = solve_rho(mass, active, price, b, fallback);
            prop_assert!(b.contains(rho, 0.0), "ρ = {rho} outside [{min}, {max}]");
        }

        /// A costlier link price never buys more reliability: the response is
        /// monotone non-increasing in the price.
        #[test]
        fn solve_rho_is_monotone_in_price(
            mass in 0.0f64..1e6,
            lo in 0.0f64..1e6,
            bump in 0.0f64..1e6,
            fallback in 0.0f64..1.5,
        ) {
            let b = bounds();
            let cheap = solve_rho(mass, true, lo, b, fallback);
            let dear = solve_rho(mass, true, lo + bump, b, fallback);
            prop_assert!(dear <= cheap, "ρ({}) = {dear} > ρ({lo}) = {cheap}", lo + bump);
        }

        /// Strict and vectorized per-flow solves stay within the documented
        /// relative drift bound on the mixed-loss workload.
        #[test]
        fn strict_and_vectorized_flow_solves_agree(
            seed in 0u64..64,
            price in 0.0f64..1.0,
            rate in 1.0f64..100.0,
        ) {
            let problem = workloads::mixed_loss_workload(3, 500.0, seed);
            let table = PriceTermTable::new(&problem);
            let populations = vec![2.0; problem.num_classes()];
            let link_prices = vec![price; problem.num_links()];
            for flow in problem.flow_ids() {
                let b = problem.rho_bounds(flow).unwrap();
                let s = solve_flow_rho(&table, flow, &link_prices, &populations, rate, b, 1.0, 0.9);
                let v = solve_flow_rho_vectorized(
                    &table, flow, &link_prices, &populations, rate, b, 1.0, 0.9,
                );
                prop_assert!((s - v).abs() <= 1e-12 * s.abs().max(1.0));
            }
        }
    }
}
