//! Lagrangian rate allocation (Algorithm 1, Eqs. 6–9).
//!
//! Given fixed populations `n_j` and aggregated prices `P = PL_i + PB_i`,
//! each flow source maximizes the per-flow dual objective (Eq. 7):
//!
//! ```text
//! Φ(r) = Σ_{j ∈ C_i} n_j · U_j(r) − r · P       over  r ∈ [r_min, r_max]
//! ```
//!
//! `Φ` is strictly concave when at least one admitted class has a strictly
//! concave utility, so the maximizer is `r_min`, `r_max`, or the unique root
//! of `Φ'`. This module recognizes the paper's two utility families and
//! solves them in closed form, falling back to safeguarded bisection on the
//! (monotone decreasing) derivative otherwise.

use lrgp_model::{FlowId, Problem, RateBounds, Utility};
use lrgp_num::roots::bisect_decreasing;

/// Absolute tolerance on the rate produced by the numeric fallback (shared
/// with the vectorized solver so both bisections stop at the same width).
pub(crate) const RATE_TOL: f64 = 1e-9;
/// Iteration cap for the numeric fallback (shared with the vectorized
/// solver).
pub(crate) const MAX_ITER: usize = 200;

/// The weighted utility terms `Σ_j n_j U_j(r)` of one flow's rate
/// subproblem.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregateUtility {
    terms: Vec<(f64, Utility)>,
}

impl AggregateUtility {
    /// Collects the active terms (`n_j > 0`) for `flow` from `populations`
    /// (indexed by class id).
    pub fn for_flow(problem: &Problem, flow: FlowId, populations: &[f64]) -> Self {
        let mut agg = Self::default();
        agg.refill_for_flow(problem, flow, populations);
        agg
    }

    /// Clears the terms and recollects them for `flow`, reusing the existing
    /// allocation. Produces the same terms in the same order as
    /// [`Self::for_flow`]; once the buffer has grown to the flow's class
    /// count this performs no allocation, which is what the incremental
    /// engine's hot path relies on.
    pub fn refill_for_flow(&mut self, problem: &Problem, flow: FlowId, populations: &[f64]) {
        self.terms.clear();
        for &c in problem.classes_of_flow(flow) {
            let n = populations[c.index()];
            if n > 0.0 {
                self.terms.push((n, problem.class(c).utility));
            }
        }
    }

    /// Builds directly from `(population, utility)` pairs; zero-population
    /// terms are dropped.
    pub fn from_terms(terms: impl IntoIterator<Item = (f64, Utility)>) -> Self {
        Self { terms: terms.into_iter().filter(|(n, _)| *n > 0.0).collect() }
    }

    /// `true` when no class has positive population.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Σ_j n_j U_j(r)`.
    pub fn value(&self, rate: f64) -> f64 {
        self.terms.iter().map(|(n, u)| n * u.value(rate)).sum()
    }

    /// `Σ_j n_j U_j'(r)`.
    pub fn derivative(&self, rate: f64) -> f64 {
        self.terms.iter().map(|(n, u)| n * u.derivative(rate)).sum()
    }

    /// Sum of `n_j · weight_j` if every term is logarithmic, else `None`.
    fn log_mass(&self) -> Option<f64> {
        let mut s = 0.0;
        for (n, u) in &self.terms {
            match u {
                Utility::Log { weight } => s += n * weight,
                _ => return None,
            }
        }
        Some(s)
    }

    /// `(Σ n_j · weight_j, k)` if every term is a power utility with the
    /// same exponent `k`, else `None`.
    fn power_mass(&self) -> Option<(f64, f64)> {
        let mut s = 0.0;
        let mut exp = None;
        for (n, u) in &self.terms {
            match u {
                Utility::Power { weight, exponent } => {
                    match exp {
                        None => exp = Some(*exponent),
                        Some(k) if k == *exponent => {}
                        Some(_) => return None,
                    }
                    s += n * weight;
                }
                _ => return None,
            }
        }
        exp.map(|k| (s, k))
    }
}

/// Solves the flow's rate subproblem (Eq. 7): the rate in `bounds`
/// maximizing `Σ_j n_j U_j(r) − r · price`.
///
/// * When no class is admitted (`aggregate` empty) the objective reduces to
///   `−r · price`: the solver returns `r_min` for a positive price and
///   `fallback` (clamped into bounds) for a zero price, since every rate is
///   then optimal and keeping the previous rate avoids gratuitous churn.
/// * All-logarithmic classes solve in closed form: `r* = S/P − 1` with
///   `S = Σ n_j w_j`.
/// * Power-law classes sharing one exponent `k` solve in closed form:
///   `r* = (kS/P)^(1/(1−k))`.
/// * Anything else falls back to bisection on the strictly decreasing
///   derivative.
///
/// The result is always clamped into `bounds` and is finite.
///
/// # Examples
///
/// ```
/// use lrgp::rate::{solve_rate, AggregateUtility};
/// use lrgp_model::{RateBounds, Utility};
///
/// // One class: 5 consumers of 20·log(1+r); price 1. r* = 100/1 − 1 = 99.
/// let agg = AggregateUtility::from_terms([(5.0, Utility::log(20.0))]);
/// let bounds = RateBounds::new(10.0, 1000.0).unwrap();
/// let r = solve_rate(&agg, 1.0, bounds, 10.0);
/// assert!((r - 99.0).abs() < 1e-9);
/// ```
pub fn solve_rate(
    aggregate: &AggregateUtility,
    price: f64,
    bounds: RateBounds,
    fallback: f64,
) -> f64 {
    debug_assert!(price >= 0.0, "prices are projected onto [0, ∞)");
    if aggregate.is_empty() {
        return if price > 0.0 { bounds.min } else { bounds.clamp(fallback) };
    }
    if price == 0.0 {
        // Utilities are increasing; with no price pressure, max rate wins.
        return bounds.max;
    }
    if let Some(s) = aggregate.log_mass() {
        // d/dr [S·ln(1+r) − P·r] = S/(1+r) − P = 0  ⇒  r = S/P − 1.
        return bounds.clamp(s / price - 1.0);
    }
    if let Some((s, k)) = aggregate.power_mass() {
        // d/dr [S·r^k − P·r] = kS·r^(k−1) − P = 0  ⇒  r = (kS/P)^(1/(1−k)).
        return bounds.clamp((k * s / price).powf(1.0 / (1.0 - k)));
    }
    // Generic strictly-concave case: bisect the decreasing derivative.
    let phi_prime = |r: f64| aggregate.derivative(r) - price;
    match bisect_decreasing(phi_prime, bounds.min, bounds.max, RATE_TOL, MAX_ITER) {
        Ok(r) => r,
        // The derivative can only misbehave on adversarial custom utilities;
        // degrade to the safe end of the interval rather than panicking
        // inside the optimizer loop.
        Err(_) => bounds.clamp(fallback),
    }
}

/// Computes the new rate of a single flow (one per-element unit of the
/// rate-allocation phase). Pure: reads only previous-iteration state, so the
/// sequential and sharded engines call it with identical inputs and obtain
/// bit-identical outputs.
pub fn allocate_rate_for_flow(
    problem: &Problem,
    prices: &crate::kernel::price::PriceVector,
    populations: &[f64],
    flow: FlowId,
    previous_rate: f64,
) -> f64 {
    let aggregate = AggregateUtility::for_flow(problem, flow, populations);
    let price = prices.aggregate_price(problem, flow, populations);
    solve_rate(&aggregate, price, problem.flow(flow).bounds, previous_rate)
}

/// Computes new rates for every flow (the rate-allocation half of one LRGP
/// iteration). `populations` and the returned vector are indexed by class id
/// and flow id respectively; `previous_rates` supplies the fallback for
/// indifferent flows.
pub fn allocate_rates(
    problem: &Problem,
    prices: &crate::kernel::price::PriceVector,
    populations: &[f64],
    previous_rates: &[f64],
) -> Vec<f64> {
    problem
        .flow_ids()
        .map(|flow| {
            allocate_rate_for_flow(problem, prices, populations, flow, previous_rates[flow.index()])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::price::PriceVector;
    use lrgp_model::{ProblemBuilder, RateBounds};

    fn bounds() -> RateBounds {
        RateBounds::new(10.0, 1000.0).unwrap()
    }

    #[test]
    fn log_closed_form_interior() {
        let agg = AggregateUtility::from_terms([(2.0, Utility::log(30.0)), (1.0, Utility::log(40.0))]);
        // S = 100; P = 0.5 ⇒ r = 199.
        let r = solve_rate(&agg, 0.5, bounds(), 10.0);
        assert!((r - 199.0).abs() < 1e-9);
    }

    #[test]
    fn log_closed_form_clamps_both_ends() {
        let agg = AggregateUtility::from_terms([(1.0, Utility::log(5.0))]);
        // Huge price ⇒ r_min.
        assert_eq!(solve_rate(&agg, 100.0, bounds(), 10.0), 10.0);
        // Tiny price ⇒ r_max.
        assert_eq!(solve_rate(&agg, 1e-6, bounds(), 10.0), 1000.0);
    }

    #[test]
    fn power_closed_form_matches_derivative_root() {
        let agg = AggregateUtility::from_terms([(3.0, Utility::power(10.0, 0.5))]);
        // kS = 15; P = 0.75 ⇒ r = (20)^2 = 400.
        let r = solve_rate(&agg, 0.75, bounds(), 10.0);
        assert!((r - 400.0).abs() < 1e-6);
        // Verify optimality: derivative crosses zero there.
        assert!((agg.derivative(r) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn mixed_shapes_use_bisection_and_agree_with_derivative() {
        let agg = AggregateUtility::from_terms([
            (2.0, Utility::log(30.0)),
            (1.0, Utility::power(10.0, 0.5)),
        ]);
        let price = 1.2;
        let r = solve_rate(&agg, price, bounds(), 10.0);
        assert!(r > 10.0 && r < 1000.0);
        assert!((agg.derivative(r) - price).abs() < 1e-5);
    }

    #[test]
    fn mixed_exponent_powers_use_bisection() {
        let agg = AggregateUtility::from_terms([
            (1.0, Utility::power(10.0, 0.25)),
            (1.0, Utility::power(10.0, 0.75)),
        ]);
        // Φ'(10) ≈ 4.66, Φ'(1000) ≈ 1.35, so price 2 has an interior root.
        let price = 2.0;
        let r = solve_rate(&agg, price, bounds(), 10.0);
        assert!(r > 10.0 && r < 1000.0);
        assert!((agg.derivative(r) - price).abs() < 1e-5);
    }

    #[test]
    fn empty_aggregate_with_positive_price_goes_to_min() {
        let agg = AggregateUtility::from_terms([]);
        assert_eq!(solve_rate(&agg, 2.0, bounds(), 500.0), 10.0);
    }

    #[test]
    fn empty_aggregate_with_zero_price_keeps_previous() {
        let agg = AggregateUtility::from_terms([]);
        assert_eq!(solve_rate(&agg, 0.0, bounds(), 500.0), 500.0);
        // Fallback is clamped into bounds.
        assert_eq!(solve_rate(&agg, 0.0, bounds(), 5000.0), 1000.0);
    }

    #[test]
    fn zero_price_with_consumers_goes_to_max() {
        let agg = AggregateUtility::from_terms([(1.0, Utility::log(1.0))]);
        assert_eq!(solve_rate(&agg, 0.0, bounds(), 10.0), 1000.0);
    }

    #[test]
    fn zero_population_terms_are_dropped() {
        let agg = AggregateUtility::from_terms([(0.0, Utility::log(1e9))]);
        assert!(agg.is_empty());
    }

    #[test]
    fn aggregate_value_and_derivative_sum_terms() {
        let agg = AggregateUtility::from_terms([(2.0, Utility::log(10.0)), (3.0, Utility::linear(1.0))]);
        let r = 9.0f64;
        assert!((agg.value(r) - (20.0 * 10.0f64.ln() + 27.0)).abs() < 1e-12);
        assert!((agg.derivative(r) - (20.0 / 10.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_utilities_bang_bang() {
        // All-linear aggregate: derivative constant. Price below slope ⇒
        // r_max; above ⇒ r_min.
        let agg = AggregateUtility::from_terms([(2.0, Utility::linear(3.0))]); // slope 6
        assert_eq!(solve_rate(&agg, 1.0, bounds(), 10.0), 1000.0);
        assert_eq!(solve_rate(&agg, 10.0, bounds(), 10.0), 10.0);
    }

    #[test]
    fn rate_increases_when_price_decreases() {
        let agg = AggregateUtility::from_terms([(5.0, Utility::log(20.0))]);
        let r_high = solve_rate(&agg, 2.0, bounds(), 10.0);
        let r_low = solve_rate(&agg, 0.5, bounds(), 10.0);
        assert!(r_low > r_high);
    }

    #[test]
    fn allocate_rates_spans_flows() {
        // Two flows to one node; flow 1 has twice the consumers.
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e9);
        let sink = b.add_node(1e9);
        let f0 = b.add_flow(src, bounds());
        let f1 = b.add_flow(src, bounds());
        b.set_node_cost(f0, sink, 1.0);
        b.set_node_cost(f1, sink, 1.0);
        let _c0 = b.add_class(f0, sink, 100, Utility::log(10.0), 1.0);
        let _c1 = b.add_class(f1, sink, 100, Utility::log(10.0), 1.0);
        let p = b.build().unwrap();
        let mut prices = PriceVector::zeros(&p);
        prices.set_node(lrgp_model::NodeId::new(1), 1.0);
        // n0 = 5, n1 = 10.
        let pops = [5.0, 10.0];
        let prev = [10.0, 10.0];
        let rates = allocate_rates(&p, &prices, &pops, &prev);
        // P_i = (F + G·n_i)·p = (1 + n_i)·1; S_i = 10·n_i.
        let expect = |n: f64| (10.0 * n / (1.0 + n) - 1.0).clamp(10.0, 1000.0);
        assert!((rates[0] - expect(5.0)).abs() < 1e-9);
        assert!((rates[1] - expect(10.0)).abs() < 1e-9);
    }
}
