//! The price kernel: update rules (§3.3 Eq. 12, §3.4 Eq. 13) and price
//! aggregation along flow paths (Eq. 8, Eq. 9).
//!
//! LRGP coordinates distributed decisions through *prices*: one per node and
//! one per link (§3, [16, 23]). Node prices chase the node's benefit–cost
//! ratio while the node is within capacity — pricing the flow against the
//! *unadmitted* consumer demand — and grow proportionally to the overload
//! otherwise; link prices follow the Low–Lapsley gradient-projection rule.
//! Both are projected onto `[0, ∞)`.
//!
//! A flow source never sees individual prices — it receives the aggregates
//! `PL_i` (Eq. 8) and `PB_i` (Eq. 9), which fold the path's link and node
//! prices together with the flow's cost coefficients and the current
//! consumer populations.
//!
//! This module unifies the former `lrgp::price` (update rules) and
//! `lrgp::prices` (the [`PriceVector`] state + aggregation) modules; the old
//! paths remain as deprecated re-exports.

use lrgp_model::{FlowId, LinkId, NodeId, PriceTermTable, Problem};
use serde::{Deserialize, Serialize};

/// Which node-price law the engine applies — the paper's benefit–cost rule
/// or a pure gradient rule, kept as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NodePriceRule {
    /// Eq. 12: chase the benefit–cost ratio under capacity, grow with the
    /// overload above it. This is LRGP's contribution — the price encodes
    /// the value of *unadmitted consumers*, coupling admission to rates.
    #[default]
    BenefitCost,
    /// Low–Lapsley-style gradient on the node constraint only:
    /// `p ← [p + γ·(used − capacity)]⁺`. Ignores unadmitted demand; under
    /// capacity the price decays to zero, so rates inflate until consumers
    /// are evicted — the oscillation the benefit–cost rule exists to
    /// prevent. Used by the `node_price_ablation` bench.
    PureGradient,
}

/// Node price update under the chosen rule; see [`update_node_price`] for
/// the benefit–cost law and [`NodePriceRule::PureGradient`] for the
/// ablation.
pub fn update_node_price_with_rule(
    rule: NodePriceRule,
    current: f64,
    benefit_cost: f64,
    used: f64,
    capacity: f64,
    gamma1: f64,
    gamma2: f64,
) -> f64 {
    match rule {
        NodePriceRule::BenefitCost => {
            update_node_price(current, benefit_cost, used, capacity, gamma1, gamma2)
        }
        NodePriceRule::PureGradient => update_link_price(current, used, capacity, gamma2),
    }
}

/// Node price update (Eq. 12):
///
/// ```text
/// p(t+1) = p(t) + γ₁ · (BC(b,t) − p(t))     if used ≤ capacity
/// p(t+1) = p(t) + γ₂ · (used − capacity)    if used > capacity
/// ```
///
/// The result is projected onto `[0, ∞)`.
pub fn update_node_price(
    current: f64,
    benefit_cost: f64,
    used: f64,
    capacity: f64,
    gamma1: f64,
    gamma2: f64,
) -> f64 {
    let next = if used <= capacity {
        current + gamma1 * (benefit_cost - current)
    } else {
        current + gamma2 * (used - capacity)
    };
    next.max(0.0)
}

/// Link price update (Eq. 13, gradient projection):
///
/// ```text
/// p(t+1) = [p(t) + γ_l · (usage − capacity)]⁺
/// ```
pub fn update_link_price(current: f64, usage: f64, capacity: f64, gamma: f64) -> f64 {
    (current + gamma * (usage - capacity)).max(0.0)
}

/// The complete price state of the system: one price per node and per link.
///
/// Prices are always nonnegative; the update rules in [`update_node_price`](crate::kernel::price::update_node_price)
/// project onto `[0, ∞)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceVector {
    node_prices: Vec<f64>,
    link_prices: Vec<f64>,
}

impl PriceVector {
    /// Creates a price vector with every price set to the given initial
    /// values.
    pub fn uniform(problem: &Problem, node_price: f64, link_price: f64) -> Self {
        Self {
            node_prices: vec![node_price; problem.num_nodes()],
            link_prices: vec![link_price; problem.num_links()],
        }
    }

    /// All-zero prices (the customary starting point).
    pub fn zeros(problem: &Problem) -> Self {
        Self::uniform(problem, 0.0, 0.0)
    }

    /// An empty, zero-length placeholder left behind while the real vector
    /// is moved into a pooled job (see [`crate::pool`]); never read.
    pub(crate) fn detached() -> Self {
        Self { node_prices: Vec::new(), link_prices: Vec::new() }
    }

    /// Price of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, node: NodeId) -> f64 {
        self.node_prices[node.index()]
    }

    /// Price of `link`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, link: LinkId) -> f64 {
        self.link_prices[link.index()]
    }

    /// Sets the price of `node`, projecting onto `[0, ∞)`.
    pub fn set_node(&mut self, node: NodeId, price: f64) {
        self.node_prices[node.index()] = price.max(0.0);
    }

    /// Sets the price of `link`, projecting onto `[0, ∞)`.
    pub fn set_link(&mut self, link: LinkId, price: f64) {
        self.link_prices[link.index()] = price.max(0.0);
    }

    /// All node prices, indexed by node id.
    pub fn node_prices(&self) -> &[f64] {
        &self.node_prices
    }

    /// All link prices, indexed by link id.
    pub fn link_prices(&self) -> &[f64] {
        &self.link_prices
    }

    /// `PL_i` (Eq. 8): `Σ_{l ∈ L_i} L_{l,i} · p_l`.
    pub fn aggregate_link_price(&self, problem: &Problem, flow: FlowId) -> f64 {
        problem
            .links_of_flow(flow)
            .iter()
            .map(|&(link, cost)| cost * self.link_prices[link.index()])
            .sum()
    }

    /// `PB_i` (Eq. 9):
    /// `Σ_{b ∈ B_i} (F_{b,i} + Σ_{j ∈ attachMap_i(b)} G_{b,j} n_j) · p_b`,
    /// where `populations` is indexed by class id.
    ///
    /// # Panics
    ///
    /// Panics if `populations` is shorter than the number of classes.
    pub fn aggregate_node_price(
        &self,
        problem: &Problem,
        flow: FlowId,
        populations: &[f64],
    ) -> f64 {
        let mut total = 0.0;
        for &(node, f_cost) in problem.nodes_of_flow(flow) {
            let mut per_rate_cost = f_cost;
            for class in problem.classes_of_flow_at_node(flow, node) {
                let spec = problem.class(class);
                per_rate_cost += spec.consumer_cost * populations[class.index()];
            }
            total += per_rate_cost * self.node_prices[node.index()];
        }
        total
    }

    /// Total price per unit rate seen by `flow`: `PL_i + PB_i`.
    pub fn aggregate_price(&self, problem: &Problem, flow: FlowId, populations: &[f64]) -> f64 {
        self.aggregate_link_price(problem, flow)
            + self.aggregate_node_price(problem, flow, populations)
    }

    /// `PL_i` (Eq. 8) from a precomputed term table: a linear scan over the
    /// flow's contiguous link terms. Bit-identical to
    /// [`Self::aggregate_link_price`] — the table stores the same costs in
    /// the same order, so the sum performs the same additions.
    pub fn aggregate_link_price_from_table(&self, table: &PriceTermTable, flow: FlowId) -> f64 {
        table
            .link_terms(flow)
            .iter()
            .map(|&(link, cost)| cost * self.link_prices[link as usize])
            .sum()
    }

    /// `PB_i` (Eq. 9) from a precomputed term table. Bit-identical to
    /// [`Self::aggregate_node_price`]: the per-node inner sums and the outer
    /// fold run over the same terms in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `populations` is shorter than the number of classes.
    pub fn aggregate_node_price_from_table(
        &self,
        table: &PriceTermTable,
        flow: FlowId,
        populations: &[f64],
    ) -> f64 {
        let mut total = 0.0;
        for term in table.node_terms(flow) {
            let mut per_rate_cost = term.flow_cost;
            for &(class, consumer_cost) in table.class_terms(term) {
                per_rate_cost += consumer_cost * populations[class as usize];
            }
            total += per_rate_cost * self.node_prices[term.node as usize];
        }
        total
    }

    /// `PL_i + PB_i` from a precomputed term table; bit-identical to
    /// [`Self::aggregate_price`] on the problem the table was built from.
    pub fn aggregate_price_from_table(
        &self,
        table: &PriceTermTable,
        flow: FlowId,
        populations: &[f64],
    ) -> f64 {
        self.aggregate_link_price_from_table(table, flow)
            + self.aggregate_node_price_from_table(table, flow, populations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};

    /// src → link → sink; flow with L = 2, F = 3, one class with G = 19.
    fn fixture() -> Problem {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e6);
        let sink = b.add_node(9e5);
        let l = b.add_link_between(1e4, src, sink);
        let f = b.add_flow(src, RateBounds::new(10.0, 1000.0).unwrap());
        b.set_link_cost(f, l, 2.0);
        b.set_node_cost(f, sink, 3.0);
        b.add_class(f, sink, 100, Utility::log(20.0), 19.0);
        b.build().unwrap()
    }

    #[test]
    fn uniform_and_zero_construction() {
        let p = fixture();
        let z = PriceVector::zeros(&p);
        assert_eq!(z.node_prices(), &[0.0, 0.0]);
        assert_eq!(z.link_prices(), &[0.0]);
        let u = PriceVector::uniform(&p, 1.5, 2.5);
        assert_eq!(u.node(NodeId::new(0)), 1.5);
        assert_eq!(u.link(LinkId::new(0)), 2.5);
    }

    #[test]
    fn setters_project_to_nonnegative() {
        let p = fixture();
        let mut v = PriceVector::zeros(&p);
        v.set_node(NodeId::new(0), -3.0);
        v.set_link(LinkId::new(0), -1.0);
        assert_eq!(v.node(NodeId::new(0)), 0.0);
        assert_eq!(v.link(LinkId::new(0)), 0.0);
        v.set_node(NodeId::new(0), 7.0);
        assert_eq!(v.node(NodeId::new(0)), 7.0);
    }

    #[test]
    fn aggregate_link_price_weights_by_cost() {
        let p = fixture();
        let mut v = PriceVector::zeros(&p);
        v.set_link(LinkId::new(0), 0.5);
        // PL = L · p_l = 2 · 0.5
        assert!((v.aggregate_link_price(&p, FlowId::new(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_node_price_includes_population_term() {
        let p = fixture();
        let mut v = PriceVector::zeros(&p);
        v.set_node(NodeId::new(1), 2.0);
        // PB = (F + G·n) · p_b = (3 + 19·4) · 2
        let pb = v.aggregate_node_price(&p, FlowId::new(0), &[4.0]);
        assert!((pb - (3.0 + 76.0) * 2.0).abs() < 1e-12);
        // With no consumers only the flow term remains.
        let pb0 = v.aggregate_node_price(&p, FlowId::new(0), &[0.0]);
        assert!((pb0 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_price_sums_both_components() {
        let p = fixture();
        let mut v = PriceVector::zeros(&p);
        v.set_link(LinkId::new(0), 0.5);
        v.set_node(NodeId::new(1), 2.0);
        let total = v.aggregate_price(&p, FlowId::new(0), &[0.0]);
        assert!((total - (1.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn table_aggregates_match_accessor_aggregates_bitwise() {
        let p = fixture();
        let table = PriceTermTable::new(&p);
        let mut v = PriceVector::zeros(&p);
        v.set_link(LinkId::new(0), 0.371);
        v.set_node(NodeId::new(1), 2.043);
        let flow = FlowId::new(0);
        for pops in [[0.0], [4.0], [17.5]] {
            assert_eq!(
                v.aggregate_link_price(&p, flow).to_bits(),
                v.aggregate_link_price_from_table(&table, flow).to_bits()
            );
            assert_eq!(
                v.aggregate_node_price(&p, flow, &pops).to_bits(),
                v.aggregate_node_price_from_table(&table, flow, &pops).to_bits()
            );
            assert_eq!(
                v.aggregate_price(&p, flow, &pops).to_bits(),
                v.aggregate_price_from_table(&table, flow, &pops).to_bits()
            );
        }
    }

    #[test]
    fn source_node_price_does_not_leak_into_aggregate() {
        // The flow has no F cost at its source, so the source price must not
        // contribute.
        let p = fixture();
        let mut v = PriceVector::zeros(&p);
        v.set_node(NodeId::new(0), 100.0);
        assert_eq!(v.aggregate_node_price(&p, FlowId::new(0), &[0.0]), 0.0);
    }
}

#[cfg(test)]
mod rule_tests {
    use super::*;

    #[test]
    fn node_price_moves_toward_bc_under_capacity() {
        let p = update_node_price(1.0, 2.0, 50.0, 100.0, 0.1, 0.1);
        assert!((p - 1.1).abs() < 1e-12);
        let p = update_node_price(1.0, 0.5, 50.0, 100.0, 0.1, 0.1);
        assert!((p - 0.95).abs() < 1e-12);
    }

    #[test]
    fn node_price_reaches_bc_with_unit_gamma() {
        let p = update_node_price(7.0, 2.0, 50.0, 100.0, 1.0, 1.0);
        assert_eq!(p, 2.0);
    }

    #[test]
    fn node_price_grows_with_overload() {
        let p = update_node_price(1.0, 0.0, 150.0, 100.0, 0.1, 0.01);
        assert!((p - 1.5).abs() < 1e-12);
    }

    #[test]
    fn node_price_boundary_uses_bc_branch() {
        // used == capacity takes the first branch.
        let p = update_node_price(1.0, 3.0, 100.0, 100.0, 0.5, 100.0);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn node_price_projected_nonnegative() {
        // γ > 1 can overshoot below zero; projection clips.
        let p = update_node_price(1.0, 0.0, 50.0, 100.0, 2.0, 2.0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn link_price_gradient_step() {
        assert!((update_link_price(1.0, 120.0, 100.0, 0.01) - 1.2).abs() < 1e-12);
        assert!((update_link_price(1.0, 80.0, 100.0, 0.01) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn link_price_projected_nonnegative() {
        assert_eq!(update_link_price(0.1, 0.0, 100.0, 0.01), 0.0);
    }

    #[test]
    fn zero_gamma_freezes_prices() {
        assert_eq!(update_node_price(1.5, 9.0, 50.0, 100.0, 0.0, 0.0), 1.5);
        assert_eq!(update_link_price(1.5, 500.0, 100.0, 0.0), 1.5);
    }

    #[test]
    fn rule_dispatch_matches_underlying_laws() {
        let bc = update_node_price_with_rule(
            NodePriceRule::BenefitCost,
            1.0,
            2.0,
            50.0,
            100.0,
            0.1,
            0.1,
        );
        assert_eq!(bc, update_node_price(1.0, 2.0, 50.0, 100.0, 0.1, 0.1));
        let grad = update_node_price_with_rule(
            NodePriceRule::PureGradient,
            1.0,
            2.0,
            50.0,
            100.0,
            0.1,
            0.1,
        );
        assert_eq!(grad, update_link_price(1.0, 50.0, 100.0, 0.1));
        assert_eq!(NodePriceRule::default(), NodePriceRule::BenefitCost);
    }

    #[test]
    fn pure_gradient_decays_under_capacity_regardless_of_demand() {
        // Huge unadmitted demand (BC = 100) is invisible to the gradient
        // rule; the price still falls.
        let p = update_node_price_with_rule(
            NodePriceRule::PureGradient,
            1.0,
            100.0,
            50.0,
            100.0,
            0.1,
            0.01,
        );
        assert!(p < 1.0);
    }
}
