//! Lane-batched kernel variants — the [`Numerics::Vectorized`] plan axis.
//!
//! Every function here computes the same quantity as its scalar sibling in
//! [`crate::kernel::rate`] / [`crate::kernel::price`], but structured for
//! the machine rather than for bitwise reproducibility:
//!
//! * **Aggregation** ([`dot_gather`], [`aggregate_price_from_table`]) runs
//!   in fixed-width unrolled chunks of [`LANES`] elements with one
//!   independent partial accumulator per lane and a scalar tail, then folds
//!   the partials in a fixed reduction tree. The partial sums break the
//!   scalar left-to-right dependence chain, so the compiler can keep
//!   [`LANES`] fused multiply-adds in flight (and auto-vectorize them on a
//!   stable toolchain — no `std::simd`), at the price of *reassociating*
//!   the floating-point sum.
//! * **Rate solving** ([`solve_flow_rate_from_table`]) dispatches on the
//!   flow's [`FlowCohort`], classified once at term-table build time:
//!   all-log and uniform-power flows solve in closed form from a single
//!   lane-summed weighted-population mass (no bisection at all), and the
//!   generic residue bisects a [`GroupedAggregate`] derivative whose cost
//!   is the number of distinct utility *shapes* (≤ 4 groups) instead of
//!   the number of class terms.
//! * **Price updates** ([`node_price_batch`], [`link_price_batch`]) apply
//!   Eq. 12/13 over dense parallel slices. The per-element math is
//!   identical to the scalar kernels — these batches exist so the always-
//!   runs price loop reads its inputs as contiguous columns — and their
//!   results are bitwise equal to the scalar loop by construction.
//!
//! # Drift contract
//!
//! Reassociated sums and closed-form-instead-of-bisection solves perturb
//! results in the low-order bits only; each perturbation is bounded by a
//! few ULPs per reduction. The differential harness
//! (`tests/differential.rs`) pins the end-to-end effect: a `Vectorized`
//! engine's total utility tracks the `Strict` engine within `1e-12`
//! relative drift at convergence, across the full random delta schedule.
//!
//! [`Numerics::Vectorized`]: crate::plan::Numerics::Vectorized

use crate::kernel::price::{update_link_price, update_node_price_with_rule, NodePriceRule};
use crate::kernel::rate::{MAX_ITER, RATE_TOL};
use lrgp_model::{FlowCohort, FlowId, PriceTermTable, Problem, RateBounds, Utility};
use lrgp_num::roots::bisect_decreasing;

use crate::kernel::price::PriceVector;

/// Fixed lane width of the unrolled aggregation loops. Eight independent
/// f64 accumulators fill one AVX-512 register or two AVX2 registers and
/// cover the FMA latency×throughput product of current x86/ARM cores.
pub const LANES: usize = 8;

/// `Σ cost · values[idx]` over `(idx, cost)` terms — the gather-dot-product
/// shared by every CSR aggregation — computed in [`LANES`]-wide unrolled
/// chunks with independent partial accumulators, a fixed-tree reduction,
/// and a scalar tail.
///
/// The result is the same sum as the scalar left fold up to reassociation:
/// term `t` lands in partial accumulator `t mod LANES`, so the additions
/// happen in a different order and the low-order bits may differ.
///
/// # Panics
///
/// Panics if an index is out of range for `values`.
pub fn dot_gather(terms: &[(u32, f64)], values: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = terms.chunks_exact(LANES);
    for c in &mut chunks {
        // Hand-unrolled: eight independent multiply-adds per iteration,
        // no cross-lane dependence until the final reduction.
        acc[0] += c[0].1 * values[c[0].0 as usize];
        acc[1] += c[1].1 * values[c[1].0 as usize];
        acc[2] += c[2].1 * values[c[2].0 as usize];
        acc[3] += c[3].1 * values[c[3].0 as usize];
        acc[4] += c[4].1 * values[c[4].0 as usize];
        acc[5] += c[5].1 * values[c[5].0 as usize];
        acc[6] += c[6].1 * values[c[6].0 as usize];
        acc[7] += c[7].1 * values[c[7].0 as usize];
    }
    let mut tail = 0.0;
    for &(idx, cost) in chunks.remainder() {
        tail += cost * values[idx as usize];
    }
    // Fixed reduction tree: pairwise, independent of the term count.
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// `Σ cost · a[idx] · b[idx]` over `(idx, cost)` terms — the three-factor
/// sibling of [`dot_gather`], used by the joint-reliability link usage
/// (`Σ L_{l,i} · r_i · ρ_i`). Same unrolled-lane structure, same fixed-tree
/// reduction, same reassociation caveat.
///
/// # Panics
///
/// Panics if an index is out of range for `a` or `b`.
pub fn dot_gather3(terms: &[(u32, f64)], a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = terms.chunks_exact(LANES);
    for c in &mut chunks {
        acc[0] += c[0].1 * a[c[0].0 as usize] * b[c[0].0 as usize];
        acc[1] += c[1].1 * a[c[1].0 as usize] * b[c[1].0 as usize];
        acc[2] += c[2].1 * a[c[2].0 as usize] * b[c[2].0 as usize];
        acc[3] += c[3].1 * a[c[3].0 as usize] * b[c[3].0 as usize];
        acc[4] += c[4].1 * a[c[4].0 as usize] * b[c[4].0 as usize];
        acc[5] += c[5].1 * a[c[5].0 as usize] * b[c[5].0 as usize];
        acc[6] += c[6].1 * a[c[6].0 as usize] * b[c[6].0 as usize];
        acc[7] += c[7].1 * a[c[7].0 as usize] * b[c[7].0 as usize];
    }
    let mut tail = 0.0;
    for &(idx, cost) in chunks.remainder() {
        tail += cost * a[idx as usize] * b[idx as usize];
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// `PL_i` (Eq. 8) over the flow's CSR link terms, lane-batched. Same terms
/// as [`PriceVector::aggregate_link_price_from_table`], reassociated.
pub fn aggregate_link_price_from_table(
    table: &PriceTermTable,
    flow: FlowId,
    link_prices: &[f64],
) -> f64 {
    dot_gather(table.link_terms(flow), link_prices)
}

/// `PB_i` (Eq. 9) over the flow's CSR node terms, with each node's
/// per-rate consumer cost lane-batched over its class terms. Same terms as
/// [`PriceVector::aggregate_node_price_from_table`], reassociated.
pub fn aggregate_node_price_from_table(
    table: &PriceTermTable,
    flow: FlowId,
    node_prices: &[f64],
    populations: &[f64],
) -> f64 {
    let mut total = 0.0;
    for term in table.node_terms(flow) {
        let per_rate_cost = term.flow_cost + dot_gather(table.class_terms(term), populations);
        total += per_rate_cost * node_prices[term.node as usize];
    }
    total
}

/// `PL_i + PB_i` from the term table, lane-batched.
pub fn aggregate_price_from_table(
    table: &PriceTermTable,
    flow: FlowId,
    prices: &PriceVector,
    populations: &[f64],
) -> f64 {
    aggregate_link_price_from_table(table, flow, prices.link_prices())
        + aggregate_node_price_from_table(table, flow, prices.node_prices(), populations)
}

/// Whether the flow's aggregate price `PL_i + PB_i` is strictly positive,
/// without computing its value.
///
/// Every term of Eqs. 8–9 is a product of non-negative factors — costs are
/// validated non-negative at problem build, node and link prices are
/// projected onto `[0, ∞)`, and populations are counts — so the sum is
/// positive iff *some* term is. The scan early-exits on the first positive
/// contribution, which on a near-converged system is almost always the
/// first node term. This is what makes the inactive-flow fast path in
/// [`solve_flow_rate_from_table`] cheap: a flow with no admitted consumers
/// needs only the price's sign, not its value.
pub fn price_is_positive(
    table: &PriceTermTable,
    flow: FlowId,
    prices: &PriceVector,
    populations: &[f64],
) -> bool {
    let link_prices = prices.link_prices();
    for &(l, cost) in table.link_terms(flow) {
        if cost * link_prices[l as usize] > 0.0 {
            return true;
        }
    }
    let node_prices = prices.node_prices();
    for term in table.node_terms(flow) {
        if node_prices[term.node as usize] > 0.0 {
            if term.flow_cost > 0.0 {
                return true;
            }
            for &(c, cost) in table.class_terms(term) {
                if cost * populations[c as usize] > 0.0 {
                    return true;
                }
            }
        }
    }
    false
}

/// The weighted-population mass `S = Σ_j n_j w_j` of a flow's utility
/// terms (lane-batched), plus whether *any* class has positive population —
/// the emptiness test the scalar solver performs on its term list.
pub fn weighted_population_mass(terms: &[(u32, f64)], populations: &[f64]) -> (f64, bool) {
    let active = terms.iter().any(|&(class, _)| populations[class as usize] > 0.0);
    (dot_gather(terms, populations), active)
}

/// Closed-form Eq. 7 solve for an all-logarithmic flow:
/// `r* = S/P − 1` with `S = Σ n_j w_j`, clamped into `bounds`.
///
/// Branch-for-branch this mirrors [`crate::kernel::rate::solve_rate`]:
/// no admitted consumers (`!active`) keeps the previous rate under a zero
/// price and pins to `bounds.min` otherwise, and a zero price with
/// consumers saturates at `bounds.max`.
pub fn solve_log_rate(
    mass: f64,
    active: bool,
    price: f64,
    bounds: RateBounds,
    fallback: f64,
) -> f64 {
    debug_assert!(price >= 0.0, "prices are projected onto [0, ∞)");
    if !active {
        return if price > 0.0 { bounds.min } else { bounds.clamp(fallback) };
    }
    if price == 0.0 {
        return bounds.max;
    }
    bounds.clamp(mass / price - 1.0)
}

/// Closed-form Eq. 7 solve for a uniform-exponent power flow:
/// `r* = (kS/P)^(1/(1−k))`, clamped into `bounds`. Same branch structure
/// as [`solve_log_rate`].
pub fn solve_power_rate(
    mass: f64,
    exponent: f64,
    active: bool,
    price: f64,
    bounds: RateBounds,
    fallback: f64,
) -> f64 {
    debug_assert!(price >= 0.0, "prices are projected onto [0, ∞)");
    if !active {
        return if price > 0.0 { bounds.min } else { bounds.clamp(fallback) };
    }
    if price == 0.0 {
        return bounds.max;
    }
    bounds.clamp((exponent * mass / price).powf(1.0 / (1.0 - exponent)))
}

/// A flow's admitted utility terms grouped by *shape* instead of listed per
/// class: `Σ_j n_j U_j` collapses to at most one mass per utility family
/// (plus one entry per distinct power exponent / saturation scale).
///
/// The grouped derivative
///
/// ```text
/// Φ'(r) = L + S_log/(1+r) + Σ_k m_k · k · r^(k−1) + Σ_s (m_s/s) · e^(−r/s)
/// ```
///
/// costs O(groups) per evaluation instead of O(class terms), which is what
/// makes the generic bisection residue cheap: a 10-class mixed-shape flow
/// evaluates 4 grouped terms per bisection step instead of 10 enum-matched
/// ones. Grouping reassociates the per-term sums, so results track the
/// scalar [`crate::kernel::rate::AggregateUtility`] within ULPs rather
/// than bitwise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupedAggregate {
    /// `Σ n_j w_j` over logarithmic terms.
    log_mass: f64,
    /// `Σ n_j w_j` over linear terms.
    linear_mass: f64,
    /// `(exponent, Σ n_j w_j)` per distinct power exponent.
    powers: Vec<(f64, f64)>,
    /// `(scale, Σ n_j w_j)` per distinct saturation scale.
    saturatings: Vec<(f64, f64)>,
    /// Whether any term with positive population was pushed.
    active: bool,
}

impl GroupedAggregate {
    /// Resets to the empty aggregate, keeping group-buffer capacity.
    pub fn clear(&mut self) {
        self.log_mass = 0.0;
        self.linear_mass = 0.0;
        self.powers.clear();
        self.saturatings.clear();
        self.active = false;
    }

    /// Clears and re-collects the active terms (`n_j > 0`) of `flow`, like
    /// [`crate::kernel::rate::AggregateUtility::refill_for_flow`] but into
    /// shape groups. Allocation-free once the group buffers have grown.
    pub fn refill_for_flow(&mut self, problem: &Problem, flow: FlowId, populations: &[f64]) {
        self.clear();
        for &c in problem.classes_of_flow(flow) {
            let n = populations[c.index()];
            if n > 0.0 {
                self.push(n, problem.class(c).utility);
            }
        }
    }

    /// Folds one weighted term into its shape group. Terms with
    /// non-positive population are ignored (they contribute nothing, and
    /// the scalar aggregate drops them too).
    pub fn push(&mut self, n: f64, utility: Utility) {
        if n <= 0.0 {
            return;
        }
        self.active = true;
        match utility {
            Utility::Log { weight } => self.log_mass += n * weight,
            Utility::Linear { weight } => self.linear_mass += n * weight,
            Utility::Power { weight, exponent } => {
                // lrgp-lint: allow(float-eq, reason = "shape classification, not a numeric comparison: an exponent stored as exactly 1.0 makes w·r^k linear by identity, and routing it to the linear mass keeps the grouped derivative finite; inexact near-1 exponents must NOT take this branch")
                if exponent == 1.0 {
                    self.linear_mass += n * weight;
                } else {
                    accumulate_group(&mut self.powers, exponent, n * weight);
                }
            }
            Utility::Saturating { weight, scale } => {
                accumulate_group(&mut self.saturatings, scale, n * weight);
            }
        }
    }

    /// `true` when no pushed term had positive population — the same
    /// emptiness the scalar aggregate reports.
    pub fn is_empty(&self) -> bool {
        !self.active
    }

    /// `Σ_j n_j U_j'(r)` from the shape groups (see the type docs for the
    /// closed form). Matches the scalar
    /// [`crate::kernel::rate::AggregateUtility::derivative`] up to
    /// reassociation for `r > 0`.
    pub fn derivative(&self, rate: f64) -> f64 {
        let r = rate.max(0.0);
        let mut d = self.linear_mass + self.log_mass / (1.0 + r);
        for &(k, m) in &self.powers {
            d += m * k * r.powf(k - 1.0);
        }
        for &(s, m) in &self.saturatings {
            d += m / s * (-r / s).exp();
        }
        d
    }

    /// The log mass if the aggregate is purely logarithmic (no other group
    /// carries mass), mirroring the scalar solver's all-log fast path.
    fn pure_log_mass(&self) -> Option<f64> {
        (self.linear_mass == 0.0 && self.powers.is_empty() && self.saturatings.is_empty())
            .then_some(self.log_mass)
    }

    /// `(mass, exponent)` if the aggregate is a single power group,
    /// mirroring the scalar solver's uniform-exponent fast path.
    fn pure_power_mass(&self) -> Option<(f64, f64)> {
        if self.log_mass == 0.0
            && self.linear_mass == 0.0
            && self.saturatings.is_empty()
            && self.powers.len() == 1
        {
            let (k, m) = self.powers[0];
            Some((m, k))
        } else {
            None
        }
    }
}

/// Adds `mass` to the group keyed (bitwise) by `key`, appending a new group
/// for an unseen key. Bitwise key matching keeps the grouping deterministic
/// and never merges keys that merely round-trip close to each other.
fn accumulate_group(groups: &mut Vec<(f64, f64)>, key: f64, mass: f64) {
    for group in groups.iter_mut() {
        if group.0.to_bits() == key.to_bits() {
            group.1 += mass;
            return;
        }
    }
    groups.push((key, mass));
}

/// Solves the flow's Eq. 7 rate subproblem from a [`GroupedAggregate`] —
/// the generic-cohort path. Branch structure mirrors
/// [`crate::kernel::rate::solve_rate`] exactly: empty → min/fallback, zero
/// price → max, pure-log / pure-power closed forms, then bisection on the
/// grouped derivative with the scalar solver's tolerance and iteration cap.
pub fn solve_grouped_rate(
    aggregate: &GroupedAggregate,
    price: f64,
    bounds: RateBounds,
    fallback: f64,
) -> f64 {
    debug_assert!(price >= 0.0, "prices are projected onto [0, ∞)");
    if aggregate.is_empty() {
        return if price > 0.0 { bounds.min } else { bounds.clamp(fallback) };
    }
    if price == 0.0 {
        return bounds.max;
    }
    if let Some(s) = aggregate.pure_log_mass() {
        return bounds.clamp(s / price - 1.0);
    }
    if let Some((s, k)) = aggregate.pure_power_mass() {
        return bounds.clamp((k * s / price).powf(1.0 / (1.0 - k)));
    }
    let phi_prime = |r: f64| {
        let d = aggregate.derivative(r);
        // A power group evaluated at r = 0 yields an infinite slope where
        // the scalar kernel substitutes f64::MAX per term; clamp so the
        // bracket check stays finite instead of aborting the bisection.
        // lrgp-lint: allow(float-eq, reason = "exact-infinity sentinel produced by powf(negative) at r == 0; no rounding can get near it, and the clamp mirrors the scalar kernel's finite f64::MAX substitution")
        let d = if d == f64::INFINITY { f64::MAX } else { d };
        d - price
    };
    match bisect_decreasing(phi_prime, bounds.min, bounds.max, RATE_TOL, MAX_ITER) {
        Ok(r) => r,
        Err(_) => bounds.clamp(fallback),
    }
}

/// One flow's complete vectorized rate solve: inactive-flow sign
/// short-circuit, lane-batched price aggregation, then cohort dispatch —
/// closed forms for [`FlowCohort::Log`] / [`FlowCohort::Power`] flows (no
/// per-term walk at all beyond the mass dot product),
/// [`solve_grouped_rate`] for the generic residue. `grouped` is
/// caller-owned scratch, refilled only on the generic path.
///
/// A flow with no admitted consumers (every class population zero) reduces
/// Eq. 7 to `max −r·price`, which depends only on the price's *sign*; the
/// fast path answers it with [`price_is_positive`]'s early-exit scan
/// instead of the full aggregation, producing the exact branch results of
/// [`crate::kernel::rate::solve_rate`]'s empty case. On large systems most
/// flows sit in this state near convergence (their nodes are
/// capacity-saturated by better-ranked classes), so this is the dominant
/// per-flow cost.
pub fn solve_flow_rate_from_table(
    problem: &Problem,
    table: &PriceTermTable,
    prices: &PriceVector,
    populations: &[f64],
    flow: FlowId,
    previous_rate: f64,
    grouped: &mut GroupedAggregate,
) -> f64 {
    let bounds = problem.flow(flow).bounds;
    let active =
        table.utility_terms(flow).iter().any(|&(c, _)| populations[c as usize] > 0.0);
    if !active {
        return if price_is_positive(table, flow, prices, populations) {
            bounds.min
        } else {
            bounds.clamp(previous_rate)
        };
    }
    let price = aggregate_price_from_table(table, flow, prices, populations);
    match table.cohort(flow) {
        FlowCohort::Log => {
            let (mass, active) = weighted_population_mass(table.utility_terms(flow), populations);
            solve_log_rate(mass, active, price, bounds, previous_rate)
        }
        FlowCohort::Power { exponent } => {
            let (mass, active) = weighted_population_mass(table.utility_terms(flow), populations);
            solve_power_rate(mass, exponent, active, price, bounds, previous_rate)
        }
        FlowCohort::Generic => {
            grouped.refill_for_flow(problem, flow, populations);
            solve_grouped_rate(grouped, price, bounds, previous_rate)
        }
    }
}

/// Batched Eq. 12 over dense parallel columns: `out[b]` receives the
/// updated price of node `b`. Per-element math is identical to the scalar
/// [`update_node_price_with_rule`] loop (γ₁ = γ₂ = `gammas[b]`, projection
/// onto `[0, ∞)` included), so the batch is bitwise equal to it.
///
/// Columns are consumed in lockstep; a length disagreement is a caller
/// bug caught by `debug_assert!` in debug builds, while release builds
/// stop at the shortest column rather than panic mid-step.
pub fn node_price_batch(
    rule: NodePriceRule,
    current: &[f64],
    bc: &[f64],
    used: &[f64],
    capacities: &[f64],
    gammas: &[f64],
    out: &mut [f64],
) {
    debug_assert!(
        current.len() == bc.len()
            && current.len() == used.len()
            && current.len() == capacities.len()
            && current.len() == gammas.len()
            && current.len() == out.len(),
        "node price batch columns must agree in length"
    );
    let columns = out
        .iter_mut()
        .zip(current)
        .zip(bc)
        .zip(used)
        .zip(capacities)
        .zip(gammas);
    for (((((o, &cur), &bc), &used), &cap), &gamma) in columns {
        *o = update_node_price_with_rule(rule, cur, bc, used, cap, gamma, gamma);
    }
}

/// Batched Eq. 13 over dense parallel columns: `out[l]` receives the
/// updated price of link `l`. Bitwise equal to the scalar
/// [`update_link_price`] loop.
///
/// Columns are consumed in lockstep; a length disagreement is a caller
/// bug caught by `debug_assert!` in debug builds, while release builds
/// stop at the shortest column rather than panic mid-step.
pub fn link_price_batch(
    current: &[f64],
    usage: &[f64],
    capacities: &[f64],
    gamma: f64,
    out: &mut [f64],
) {
    debug_assert!(
        current.len() == usage.len()
            && current.len() == capacities.len()
            && current.len() == out.len(),
        "link price batch columns must agree in length"
    );
    let columns = out.iter_mut().zip(current).zip(usage).zip(capacities);
    for (((o, &cur), &usage), &cap) in columns {
        *o = update_link_price(cur, usage, cap, gamma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::rate::{solve_rate, AggregateUtility};
    use lrgp_model::{NodeId, ProblemBuilder};

    fn bounds() -> RateBounds {
        RateBounds::new(10.0, 1000.0).unwrap()
    }

    #[test]
    fn dot_gather_matches_scalar_on_small_and_ragged_lengths() {
        let values: Vec<f64> = (0..40).map(|i| 1.0 + i as f64 * 0.37).collect();
        for len in [0usize, 1, 7, 8, 9, 16, 17, 23] {
            let terms: Vec<(u32, f64)> =
                (0..len).map(|i| ((i * 7 % 40) as u32, 0.5 + i as f64)).collect();
            let scalar: f64 = terms.iter().map(|&(i, c)| c * values[i as usize]).sum();
            let vec = dot_gather(&terms, &values);
            assert!(
                (vec - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
                "len {len}: {vec} vs {scalar}"
            );
        }
    }

    #[test]
    fn log_closed_form_matches_scalar_solver() {
        let agg = AggregateUtility::from_terms([(2.0, Utility::log(30.0)), (1.0, Utility::log(40.0))]);
        let scalar = solve_rate(&agg, 0.5, bounds(), 10.0);
        // mass = 2·30 + 1·40 = 100, same S as the scalar path.
        let vec = solve_log_rate(100.0, true, 0.5, bounds(), 10.0);
        assert_eq!(vec.to_bits(), scalar.to_bits());
    }

    #[test]
    fn log_branches_mirror_scalar_on_empty_and_zero_price() {
        // Empty: positive price pins min, zero price keeps (clamped) fallback.
        assert_eq!(solve_log_rate(0.0, false, 2.0, bounds(), 500.0), 10.0);
        assert_eq!(solve_log_rate(0.0, false, 0.0, bounds(), 500.0), 500.0);
        assert_eq!(solve_log_rate(0.0, false, 0.0, bounds(), 5000.0), 1000.0);
        // Active with zero price saturates.
        assert_eq!(solve_log_rate(50.0, true, 0.0, bounds(), 10.0), 1000.0);
    }

    #[test]
    fn power_closed_form_matches_scalar_solver() {
        let agg = AggregateUtility::from_terms([(3.0, Utility::power(10.0, 0.5))]);
        let scalar = solve_rate(&agg, 0.75, bounds(), 10.0);
        let vec = solve_power_rate(30.0, 0.5, true, 0.75, bounds(), 10.0);
        assert_eq!(vec.to_bits(), scalar.to_bits());
    }

    #[test]
    fn grouped_derivative_matches_scalar_aggregate() {
        let terms = [
            (2.0, Utility::log(30.0)),
            (1.5, Utility::power(10.0, 0.5)),
            (3.0, Utility::linear(2.0)),
            (0.5, Utility::saturating(8.0, 40.0)),
            (1.0, Utility::power(4.0, 0.5)), // merges with the first power
        ];
        let scalar = AggregateUtility::from_terms(terms);
        let mut grouped = GroupedAggregate::default();
        for (n, u) in terms {
            grouped.push(n, u);
        }
        for r in [0.5, 10.0, 99.0, 1000.0] {
            let a = scalar.derivative(r);
            let b = grouped.derivative(r);
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "r {r}: {a} vs {b}");
        }
    }

    #[test]
    fn grouped_solve_tracks_scalar_bisection() {
        let terms = [(2.0, Utility::log(30.0)), (1.0, Utility::power(10.0, 0.5))];
        let scalar_agg = AggregateUtility::from_terms(terms);
        let mut grouped = GroupedAggregate::default();
        for (n, u) in terms {
            grouped.push(n, u);
        }
        for price in [0.1, 1.2, 4.0] {
            let a = solve_rate(&scalar_agg, price, bounds(), 10.0);
            let b = solve_grouped_rate(&grouped, price, bounds(), 10.0);
            // Both bisect to RATE_TOL; the roots agree to that width.
            assert!((a - b).abs() <= 1e-6, "price {price}: {a} vs {b}");
        }
    }

    #[test]
    fn grouped_exponent_one_routes_to_linear_mass() {
        let mut grouped = GroupedAggregate::default();
        grouped.push(2.0, Utility::Power { weight: 3.0, exponent: 1.0 });
        // w·r^1 is linear: constant derivative 6, no power group.
        assert!(grouped.powers.is_empty());
        assert_eq!(grouped.derivative(5.0), 6.0);
        assert_eq!(grouped.derivative(50.0), 6.0);
    }

    #[test]
    fn grouped_zero_population_terms_are_ignored() {
        let mut grouped = GroupedAggregate::default();
        grouped.push(0.0, Utility::log(1e9));
        assert!(grouped.is_empty());
        assert_eq!(solve_grouped_rate(&grouped, 2.0, bounds(), 500.0), 10.0);
        assert_eq!(solve_grouped_rate(&grouped, 0.0, bounds(), 500.0), 500.0);
    }

    #[test]
    fn grouped_bisection_survives_zero_rate_bracket() {
        // bounds.min = 0 evaluates the power derivative at r = 0, where the
        // grouped closed form is +∞; the sentinel clamp keeps the bracket
        // finite so bisection proceeds (scalar substitutes f64::MAX there).
        let zero_bounds = RateBounds::new(0.0, 1000.0).unwrap();
        let mut grouped = GroupedAggregate::default();
        grouped.push(1.0, Utility::power(10.0, 0.5));
        grouped.push(1.0, Utility::log(5.0));
        let r = solve_grouped_rate(&grouped, 1.0, zero_bounds, 1.0);
        assert!(r.is_finite());
        assert!((grouped.derivative(r) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn price_batches_are_bitwise_equal_to_scalar_loops() {
        let current = [0.0, 1.0, 2.5, 0.3];
        let bc = [1.0, 2.0, 0.5, 4.0];
        let used = [10.0, 200.0, 50.0, 99.0];
        let caps = [100.0, 100.0, 100.0, 100.0];
        let gammas = [0.1, 0.2, 0.05, 1.5];
        let mut out = [0.0; 4];
        for rule in [NodePriceRule::BenefitCost, NodePriceRule::PureGradient] {
            node_price_batch(rule, &current, &bc, &used, &caps, &gammas, &mut out);
            for b in 0..4 {
                let scalar = update_node_price_with_rule(
                    rule, current[b], bc[b], used[b], caps[b], gammas[b], gammas[b],
                );
                assert_eq!(out[b].to_bits(), scalar.to_bits());
            }
        }
        let usage = [120.0, 80.0, 0.0, 100.0];
        link_price_batch(&current, &usage, &caps, 0.01, &mut out);
        for l in 0..4 {
            let scalar = update_link_price(current[l], usage[l], caps[l], 0.01);
            assert_eq!(out[l].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn vectorized_aggregation_tracks_the_table_aggregation() {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e6);
        let sink = b.add_node(9e5);
        let l = b.add_link_between(1e4, src, sink);
        let f = b.add_flow(src, bounds());
        b.set_link_cost(f, l, 2.0);
        b.set_node_cost(f, sink, 3.0);
        for i in 0..11 {
            b.add_class(f, sink, 100, Utility::log(5.0 + i as f64), 1.0 + i as f64 * 0.5);
        }
        let p = b.build().unwrap();
        let table = PriceTermTable::new(&p);
        let mut v = PriceVector::zeros(&p);
        v.set_link(lrgp_model::LinkId::new(0), 0.371);
        v.set_node(NodeId::new(1), 2.043);
        let pops: Vec<f64> = (0..11).map(|i| i as f64 * 1.7).collect();
        let flow = FlowId::new(0);
        let scalar = v.aggregate_price_from_table(&table, flow, &pops);
        let vec = aggregate_price_from_table(&table, flow, &v, &pops);
        assert!((scalar - vec).abs() <= 1e-12 * scalar.abs().max(1.0));
    }

    #[test]
    fn cohort_dispatch_solves_each_family() {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e9);
        let sink = b.add_node(1e9);
        let log_flow = b.add_flow(src, bounds());
        let pow_flow = b.add_flow(src, bounds());
        let mix_flow = b.add_flow(src, bounds());
        for f in [log_flow, pow_flow, mix_flow] {
            b.set_node_cost(f, sink, 1.0);
        }
        b.add_class(log_flow, sink, 100, Utility::log(20.0), 1.0);
        b.add_class(pow_flow, sink, 100, Utility::power(10.0, 0.5), 1.0);
        b.add_class(mix_flow, sink, 100, Utility::log(20.0), 1.0);
        b.add_class(mix_flow, sink, 100, Utility::power(10.0, 0.5), 1.0);
        let p = b.build().unwrap();
        let table = PriceTermTable::new(&p);
        let mut prices = PriceVector::zeros(&p);
        prices.set_node(NodeId::new(1), 1.0);
        let pops = vec![5.0; p.num_classes()];
        let mut grouped = GroupedAggregate::default();
        for flow in p.flow_ids() {
            let scalar = {
                let agg = AggregateUtility::for_flow(&p, flow, &pops);
                let price = prices.aggregate_price_from_table(&table, flow, &pops);
                solve_rate(&agg, price, p.flow(flow).bounds, 10.0)
            };
            let vec = solve_flow_rate_from_table(&p, &table, &prices, &pops, flow, 10.0, &mut grouped);
            assert!(
                (scalar - vec).abs() <= 1e-9 * scalar.abs().max(1.0),
                "flow {flow:?}: {scalar} vs {vec}"
            );
        }
    }
}
