//! The LRGP kernel layer: pure, allocation-free building blocks.
//!
//! Every function in this layer is a deterministic function of its borrowed
//! inputs — no interior state, no allocation on the hot path (callers pass
//! scratch buffers where one is needed), no ambient configuration. The
//! engine's execution plans ([`crate::plan`]) decide *which* elements to
//! evaluate and *where* (sequentially, across threads, or only for dirty
//! elements); the kernels decide *what* each evaluation computes:
//!
//! * [`rate`] — the Lagrangian rate solve per flow (Algorithm 1): closed
//!   forms for log/power utilities against an aggregated price, bisection
//!   fallback for mixtures.
//! * [`admission`] — greedy consumer admission per node (Algorithm 2) by
//!   benefit–cost ratio, in a strict total order so any execution schedule
//!   reproduces the same populations bit-for-bit.
//! * [`price`] — the node (Eq. 12) and link (Eq. 13) price updates plus the
//!   [`price::PriceVector`] state and its `PL_i`/`PB_i` aggregation (Eq.
//!   8/9), in both direct and precomputed term-table forms that are
//!   documented and tested bit-identical.
//! * [`reliability`] — the per-flow delivery-reliability best-response for
//!   the joint rate–reliability extension ([`crate::plan::Reliability`]):
//!   closed-form ρ solve against loss-weighted link prices, in strict and
//!   lane-batched forms.
//! * [`vector`] — lane-batched variants of the above for the
//!   [`crate::plan::Numerics::Vectorized`] axis: unrolled gather-dot
//!   aggregation, cohort-dispatched closed-form rate solves, a
//!   shape-grouped bisection derivative, and dense Eq. 12/13 batches.
//!   Strictly opt-in; reassociates sums within a documented drift bound.
//!
//! Because kernels are pure and every reduction runs in a fixed element
//! order, recomputing an element whose inputs are bitwise-unchanged returns
//! the bitwise-same output — the property the incremental plan relies on to
//! skip clean elements, and the parallel plan relies on to shard work.

pub mod admission;
pub mod price;
pub mod rate;
pub mod reliability;
pub mod vector;
