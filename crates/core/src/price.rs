//! Price update rules (§3.3 Eq. 12 and §3.4 Eq. 13).
//!
//! Node prices chase the node's benefit–cost ratio while the node is within
//! capacity — pricing the flow against the *unadmitted* consumer demand —
//! and grow proportionally to the overload otherwise. Link prices follow
//! the Low–Lapsley gradient-projection rule. Both are projected onto
//! `[0, ∞)`.

use serde::{Deserialize, Serialize};

/// Which node-price law the engine applies — the paper's benefit–cost rule
/// or a pure gradient rule, kept as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NodePriceRule {
    /// Eq. 12: chase the benefit–cost ratio under capacity, grow with the
    /// overload above it. This is LRGP's contribution — the price encodes
    /// the value of *unadmitted consumers*, coupling admission to rates.
    #[default]
    BenefitCost,
    /// Low–Lapsley-style gradient on the node constraint only:
    /// `p ← [p + γ·(used − capacity)]⁺`. Ignores unadmitted demand; under
    /// capacity the price decays to zero, so rates inflate until consumers
    /// are evicted — the oscillation the benefit–cost rule exists to
    /// prevent. Used by the `node_price_ablation` bench.
    PureGradient,
}

/// Node price update under the chosen rule; see [`update_node_price`] for
/// the benefit–cost law and [`NodePriceRule::PureGradient`] for the
/// ablation.
pub fn update_node_price_with_rule(
    rule: NodePriceRule,
    current: f64,
    benefit_cost: f64,
    used: f64,
    capacity: f64,
    gamma1: f64,
    gamma2: f64,
) -> f64 {
    match rule {
        NodePriceRule::BenefitCost => {
            update_node_price(current, benefit_cost, used, capacity, gamma1, gamma2)
        }
        NodePriceRule::PureGradient => update_link_price(current, used, capacity, gamma2),
    }
}

/// Node price update (Eq. 12):
///
/// ```text
/// p(t+1) = p(t) + γ₁ · (BC(b,t) − p(t))     if used ≤ capacity
/// p(t+1) = p(t) + γ₂ · (used − capacity)    if used > capacity
/// ```
///
/// The result is projected onto `[0, ∞)`.
pub fn update_node_price(
    current: f64,
    benefit_cost: f64,
    used: f64,
    capacity: f64,
    gamma1: f64,
    gamma2: f64,
) -> f64 {
    let next = if used <= capacity {
        current + gamma1 * (benefit_cost - current)
    } else {
        current + gamma2 * (used - capacity)
    };
    next.max(0.0)
}

/// Link price update (Eq. 13, gradient projection):
///
/// ```text
/// p(t+1) = [p(t) + γ_l · (usage − capacity)]⁺
/// ```
pub fn update_link_price(current: f64, usage: f64, capacity: f64, gamma: f64) -> f64 {
    (current + gamma * (usage - capacity)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_price_moves_toward_bc_under_capacity() {
        let p = update_node_price(1.0, 2.0, 50.0, 100.0, 0.1, 0.1);
        assert!((p - 1.1).abs() < 1e-12);
        let p = update_node_price(1.0, 0.5, 50.0, 100.0, 0.1, 0.1);
        assert!((p - 0.95).abs() < 1e-12);
    }

    #[test]
    fn node_price_reaches_bc_with_unit_gamma() {
        let p = update_node_price(7.0, 2.0, 50.0, 100.0, 1.0, 1.0);
        assert_eq!(p, 2.0);
    }

    #[test]
    fn node_price_grows_with_overload() {
        let p = update_node_price(1.0, 0.0, 150.0, 100.0, 0.1, 0.01);
        assert!((p - 1.5).abs() < 1e-12);
    }

    #[test]
    fn node_price_boundary_uses_bc_branch() {
        // used == capacity takes the first branch.
        let p = update_node_price(1.0, 3.0, 100.0, 100.0, 0.5, 100.0);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn node_price_projected_nonnegative() {
        // γ > 1 can overshoot below zero; projection clips.
        let p = update_node_price(1.0, 0.0, 50.0, 100.0, 2.0, 2.0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn link_price_gradient_step() {
        assert!((update_link_price(1.0, 120.0, 100.0, 0.01) - 1.2).abs() < 1e-12);
        assert!((update_link_price(1.0, 80.0, 100.0, 0.01) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn link_price_projected_nonnegative() {
        assert_eq!(update_link_price(0.1, 0.0, 100.0, 0.01), 0.0);
    }

    #[test]
    fn zero_gamma_freezes_prices() {
        assert_eq!(update_node_price(1.5, 9.0, 50.0, 100.0, 0.0, 0.0), 1.5);
        assert_eq!(update_link_price(1.5, 500.0, 100.0, 0.0), 1.5);
    }

    #[test]
    fn rule_dispatch_matches_underlying_laws() {
        let bc = update_node_price_with_rule(
            NodePriceRule::BenefitCost,
            1.0,
            2.0,
            50.0,
            100.0,
            0.1,
            0.1,
        );
        assert_eq!(bc, update_node_price(1.0, 2.0, 50.0, 100.0, 0.1, 0.1));
        let grad = update_node_price_with_rule(
            NodePriceRule::PureGradient,
            1.0,
            2.0,
            50.0,
            100.0,
            0.1,
            0.1,
        );
        assert_eq!(grad, update_link_price(1.0, 50.0, 100.0, 0.1));
        assert_eq!(NodePriceRule::default(), NodePriceRule::BenefitCost);
    }

    #[test]
    fn pure_gradient_decays_under_capacity_regardless_of_demand() {
        // Huge unadmitted demand (BC = 100) is invisible to the gradient
        // rule; the price still falls.
        let p = update_node_price_with_rule(
            NodePriceRule::PureGradient,
            1.0,
            100.0,
            50.0,
            100.0,
            0.1,
            0.01,
        );
        assert!(p < 1.0);
    }
}
