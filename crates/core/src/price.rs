//! Deprecated location of the price update rules.
//!
//! The update rules (Eq. 12/13) merged with the former `lrgp::prices`
//! aggregation module into [`crate::kernel::price`]; these re-exports keep
//! the old paths compiling for one release.

pub use crate::kernel::price::{
    update_link_price, update_node_price, update_node_price_with_rule, NodePriceRule,
};
