//! Deprecated location of the admission kernel; moved to
//! [`crate::kernel::admission`].

pub use crate::kernel::admission::{
    allocate_consumers, allocate_consumers_into, benefit_cost, AdmissionPolicy, NodeAdmission,
    PopulationMode,
};
