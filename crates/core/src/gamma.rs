//! Step-size (γ) control for the node price update (§4.2).
//!
//! The paper first uses a fixed step γ in Eq. 12, observing that large γ
//! converges fast but oscillates, while small γ converges slowly (Fig. 1).
//! It then proposes an adaptive heuristic (Fig. 2): start from a fixed
//! value, grow γ by 0.001 each quiet iteration, halve it whenever the
//! node's price fluctuates, and clamp to `[0.001, 0.1]`.

use lrgp_num::series::FluctuationDetector;
use serde::{Deserialize, Serialize};

/// Parameters of the adaptive-γ heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveGammaConfig {
    /// Starting value of γ.
    pub initial: f64,
    /// Lower clamp (paper: 0.001).
    pub min: f64,
    /// Upper clamp (paper: 0.1).
    pub max: f64,
    /// Additive increment applied each non-fluctuating iteration
    /// (paper: 0.001).
    pub increment: f64,
    /// Multiplicative factor applied when a fluctuation is detected
    /// (paper: 0.5).
    pub decay: f64,
}

impl Default for AdaptiveGammaConfig {
    fn default() -> Self {
        Self { initial: 0.1, min: 0.001, max: 0.1, increment: 0.001, decay: 0.5 }
    }
}

impl AdaptiveGammaConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= initial <= max`, `increment >= 0` and
    /// `0 < decay < 1`.
    pub fn validate(&self) {
        assert!(self.min > 0.0, "gamma min must be positive");
        assert!(self.min <= self.initial && self.initial <= self.max, "need min <= initial <= max");
        assert!(self.increment >= 0.0, "gamma increment must be nonnegative");
        assert!(self.decay > 0.0 && self.decay < 1.0, "gamma decay must be in (0, 1)");
    }
}

/// Selects how the node price step size is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GammaMode {
    /// A constant γ (used for Fig. 1's γ ∈ {1, 0.1, 0.01} sweeps). The same
    /// value serves as γ₁ and γ₂ in Eq. 12, as in the paper's experiments.
    Fixed {
        /// The constant step size.
        gamma: f64,
    },
    /// The adaptive heuristic of §4.2.
    Adaptive(AdaptiveGammaConfig),
}

impl Default for GammaMode {
    fn default() -> Self {
        GammaMode::Adaptive(AdaptiveGammaConfig::default())
    }
}

impl GammaMode {
    /// Convenience constructor for a fixed step.
    pub fn fixed(gamma: f64) -> Self {
        GammaMode::Fixed { gamma }
    }

    /// Convenience constructor for the paper's default adaptive heuristic.
    pub fn adaptive() -> Self {
        GammaMode::Adaptive(AdaptiveGammaConfig::default())
    }
}

/// Per-node γ controller: holds the current step size and watches the
/// node's price trace for fluctuations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaController {
    mode: GammaMode,
    gamma: f64,
    detector: FluctuationDetector,
}

impl GammaController {
    /// Creates a controller for one node, primed with the node's initial
    /// price.
    ///
    /// # Panics
    ///
    /// Panics if an adaptive configuration is invalid (see
    /// [`AdaptiveGammaConfig::validate`]) or a fixed γ is negative.
    pub fn new(mode: GammaMode, initial_price: f64) -> Self {
        let gamma = match mode {
            GammaMode::Fixed { gamma } => {
                assert!(gamma >= 0.0, "fixed gamma must be nonnegative");
                gamma
            }
            GammaMode::Adaptive(cfg) => {
                cfg.validate();
                cfg.initial
            }
        };
        Self { mode, gamma, detector: FluctuationDetector::new(initial_price) }
    }

    /// The step size to use for the *next* price update.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Feeds the freshly computed node price; adapts γ for the next
    /// iteration (no-op in fixed mode). Returns the γ that will be used
    /// next.
    pub fn observe_price(&mut self, price: f64) -> f64 {
        let fluctuated = self.detector.observe(price);
        if let GammaMode::Adaptive(cfg) = self.mode {
            if fluctuated {
                self.gamma = (self.gamma * cfg.decay).max(cfg.min);
            } else {
                self.gamma = (self.gamma + cfg.increment).min(cfg.max);
            }
        }
        self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_never_changes() {
        let mut c = GammaController::new(GammaMode::fixed(0.3), 0.0);
        assert_eq!(c.gamma(), 0.3);
        for p in [1.0, 0.0, 2.0, -1.0, 3.0] {
            c.observe_price(p);
        }
        assert_eq!(c.gamma(), 0.3);
    }

    #[test]
    fn adaptive_grows_while_quiet() {
        let cfg = AdaptiveGammaConfig { initial: 0.01, ..Default::default() };
        let mut c = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
        // Monotone rising price: quiet.
        for i in 1..=5 {
            c.observe_price(i as f64);
        }
        assert!((c.gamma() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn adaptive_halves_on_fluctuation() {
        let cfg = AdaptiveGammaConfig { initial: 0.08, ..Default::default() };
        let mut c = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
        c.observe_price(1.0); // up, quiet → 0.081
        c.observe_price(0.5); // down: fluctuation → 0.0405
        assert!((c.gamma() - 0.0405).abs() < 1e-12);
    }

    #[test]
    fn adaptive_clamps_at_both_ends() {
        let cfg = AdaptiveGammaConfig::default(); // initial = max = 0.1
        let mut c = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
        c.observe_price(1.0);
        assert_eq!(c.gamma(), 0.1); // clamped at max
        // Alternate to force repeated halving to the floor.
        let mut x = 1.0;
        for _ in 0..20 {
            x = -x;
            c.observe_price(x);
        }
        assert!((c.gamma() - 0.001).abs() < 1e-12); // clamped at min
    }

    #[test]
    fn default_mode_is_paper_adaptive() {
        match GammaMode::default() {
            GammaMode::Adaptive(cfg) => {
                assert_eq!(cfg.min, 0.001);
                assert_eq!(cfg.max, 0.1);
                assert_eq!(cfg.increment, 0.001);
                assert_eq!(cfg.decay, 0.5);
            }
            _ => panic!("default must be adaptive"),
        }
    }

    #[test]
    #[should_panic(expected = "min <= initial <= max")]
    fn adaptive_rejects_initial_outside_clamp() {
        let cfg = AdaptiveGammaConfig { initial: 0.5, ..Default::default() };
        let _ = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
    }

    #[test]
    #[should_panic(expected = "fixed gamma must be nonnegative")]
    fn fixed_rejects_negative() {
        let _ = GammaController::new(GammaMode::fixed(-0.1), 0.0);
    }
}
