//! Engine checkpointing.
//!
//! LRGP "is running all the time" (§2.1); an operator restarting a broker's
//! control plane should not have to re-converge from scratch. An
//! [`EngineSnapshot`] captures the engine's optimizer state — rates,
//! populations, prices, and the per-node γ controllers — and restores an
//! engine that continues *exactly* where the original left off (traces are
//! not part of the snapshot; a restored engine starts a fresh trace).

use crate::engine::{LrgpConfig, Engine};
use crate::gamma::GammaController;
use crate::kernel::price::PriceVector;
use lrgp_model::Problem;
use serde::{Deserialize, Serialize};

/// A serializable checkpoint of an engine's optimizer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Engine configuration at snapshot time.
    pub config: LrgpConfig,
    /// Flow rates.
    pub rates: Vec<f64>,
    /// Class populations.
    pub populations: Vec<f64>,
    /// Node and link prices.
    pub prices: PriceVector,
    /// Per-node γ controllers (step size + fluctuation state).
    pub gamma_controllers: Vec<GammaController>,
    /// Iterations executed before the snapshot.
    pub iteration: usize,
}

impl Engine {
    /// Captures the optimizer state (not the trace).
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            config: *self.config(),
            rates: self.allocation().rates().to_vec(),
            populations: self.allocation().populations().to_vec(),
            prices: self.prices().clone(),
            gamma_controllers: self.gamma_controllers().to_vec(),
            iteration: self.iteration(),
        }
    }

    /// Rebuilds an engine from a snapshot over `problem`.
    ///
    /// The problem must have the same dimensions as the one the snapshot
    /// was taken from (the usual id-stable transforms are fine).
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn restore(problem: Problem, snapshot: EngineSnapshot) -> Engine {
        assert_eq!(snapshot.rates.len(), problem.num_flows(), "flow count mismatch");
        assert_eq!(snapshot.populations.len(), problem.num_classes(), "class count mismatch");
        assert_eq!(
            snapshot.prices.node_prices().len(),
            problem.num_nodes(),
            "node count mismatch"
        );
        assert_eq!(
            snapshot.prices.link_prices().len(),
            problem.num_links(),
            "link count mismatch"
        );
        assert_eq!(
            snapshot.gamma_controllers.len(),
            problem.num_nodes(),
            "controller count mismatch"
        );
        let mut engine = Engine::new(problem, snapshot.config);
        engine.load_state(
            snapshot.rates,
            snapshot.populations,
            snapshot.prices,
            snapshot.gamma_controllers,
            snapshot.iteration,
        );
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut original = Engine::new(base_workload(), LrgpConfig::default());
        original.run(37);
        let snap = original.snapshot();
        assert_eq!(snap.iteration, 37);

        let mut restored = Engine::restore(base_workload(), snap);
        assert_eq!(restored.iteration(), 37);
        assert_eq!(restored.allocation(), original.allocation());

        // Both continue identically for another stretch.
        for k in 0..60 {
            let a = original.step();
            let b = restored.step();
            assert_eq!(a, b, "diverged at continued step {k}");
        }
        assert_eq!(original.allocation(), restored.allocation());
        assert_eq!(original.prices(), restored.prices());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut engine = Engine::new(base_workload(), LrgpConfig::default());
        engine.run(20);
        let snap = engine.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: EngineSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
        assert_eq!(back, snap);
        let mut a = Engine::restore(base_workload(), snap);
        let mut b = Engine::restore(base_workload(), back);
        assert_eq!(a.step(), b.step());
    }

    #[test]
    #[should_panic(expected = "flow count mismatch")]
    fn restore_rejects_wrong_problem() {
        let mut engine = Engine::new(base_workload(), LrgpConfig::default());
        engine.run(5);
        let snap = engine.snapshot();
        let bigger = lrgp_model::workloads::paper_workload(lrgp_model::UtilityShape::Log, 2, 1);
        let _ = Engine::restore(bigger, snap);
    }
}
