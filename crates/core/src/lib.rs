//! **LRGP — Lagrangian Rates, Greedy Populations.**
//!
//! A reproduction of the distributed utility-optimization algorithm from
//! *"Utility Optimization for Event-Driven Distributed Infrastructures"*
//! (Lumezanu, Bhola, Astley — ICDCS 2006).
//!
//! The problem: an overlay of broker nodes disseminates message *flows* from
//! producers to *consumer classes*; both message rates and per-consumer
//! processing consume node (CPU) and link (bandwidth) resources. The system
//! maximizes `Σ n_j · U_j(r_i)` — admitted consumers times their strictly
//! concave rate utilities — subject to capacity constraints that are
//! *nonconvex* because populations multiply rates.
//!
//! # Architecture
//!
//! The crate is layered so that *what* an iteration computes, *how* it is
//! executed, and *when* the problem changes are independent concerns:
//!
//! ```text
//!        lrgp_model::Problem ── lrgp_model::ProblemDelta
//!                 │                      │ Engine::apply_delta
//!                 ▼                      ▼
//!  ┌───────────────────────────────────────────────────────────┐
//!  │ engine     Engine: owns problem + optimizer state, trace, │
//!  │            snapshots, delta application                   │
//!  └───────────────────────────┬───────────────────────────────┘
//!                              │ one ExecutionPlan, every step
//!  ┌───────────────────────────▼───────────────────────────────┐
//!  │ plan       ExecutionPlan = Parallelism × IncrementalMode  │
//!  │            (pure strategy: bit-identical by construction) │
//!  └───────────────────────────┬───────────────────────────────┘
//!                              │ drives the single solve loop
//!  ┌───────────────────────────▼───────────────────────────────┐
//!  │ exec       StepState: dirty-set executor, caches, scratch │
//!  │            (full recompute = the all-dirty special case)  │
//!  └──────┬──────────────────┬──────────────────┬──────────────┘
//!         │                  │                  │  pure kernels
//!  ┌──────▼──────┐   ┌───────▼──────┐   ┌───────▼──────┐
//!  │ kernel::rate│   │ kernel::     │   │ kernel::price│
//!  │ Algorithm 1 │   │ admission    │   │ Eq. 12 / 13, │
//!  │ (per flow)  │   │ Algorithm 2  │   │ aggregation  │
//!  └─────────────┘   │ (per node)   │   │ (per node /  │
//!                    └──────────────┘   │  per link)   │
//!                                       └──────────────┘
//! ```
//!
//! * [`kernel`] — the allocation-free per-element LRGP math: Lagrangian
//!   rate allocation at each flow source ([`kernel::rate`], Algorithm 1),
//!   greedy consumer admission by benefit–cost ratio
//!   ([`kernel::admission`], Algorithm 2), the node/link price updates
//!   with their flow-path aggregation ([`kernel::price`], Eqs. 8–13), and
//!   the per-flow reliability best response ([`kernel::reliability`]) used
//!   when a plan enables the joint rate–reliability axis
//!   ([`plan::Reliability`]).
//! * [`exec`] — the one solve loop: a dirty-set executor whose work is
//!   proportional to what changed, bit-identical to a full recompute.
//! * [`plan`] — the execution strategy ([`ExecutionPlan`]): sequential or
//!   sharded over the persistent worker pool ([`pool`]), full-recompute or
//!   incremental, rate-only or joint rate–reliability
//!   ([`plan::Reliability`]), with [`Parallelism::Auto`] picking the
//!   crossover from a calibrated cost model ([`AutoModel`]). Plans change
//!   wall-clock time, never bits — except the reliability axis, which
//!   changes *what* is optimized and defaults to [`plan::Reliability::Off`].
//! * [`engine`] — the synchronous driver ([`Engine`]), iteration traces
//!   ([`trace`]), snapshots ([`snapshot`]), and first-class problem deltas
//!   ([`Engine::apply_delta`]); per-node adaptive step-size control in
//!   [`gamma`]. Deployment-facing enactment policies live in
//!   [`enactment`], workload-churn scenarios in [`dynamics`], the §2.4
//!   two-stage pruning driver in [`two_stage`].
//!
//! # Quickstart
//!
//! ```
//! use lrgp::{Engine, LrgpConfig};
//! use lrgp_model::workloads;
//!
//! let problem = workloads::base_workload(); // Table 1 of the paper
//! let mut engine = Engine::new(problem, LrgpConfig::default());
//! let outcome = engine.run_until_converged(250);
//! println!(
//!     "utility {:.0} after {} iterations",
//!     outcome.utility,
//!     outcome.iterations
//! );
//! assert!(engine.allocation().is_feasible(engine.problem(), 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod enactment;
pub mod engine;
pub mod exec;
pub mod gamma;
pub mod kernel;
pub mod plan;
pub mod pool;
pub mod snapshot;
pub mod trace;
pub mod two_stage;

#[deprecated(since = "0.2.0", note = "moved to `lrgp::kernel::admission`")]
pub mod admission;
#[deprecated(since = "0.2.0", note = "moved to `lrgp::plan`")]
pub mod incremental;
#[deprecated(since = "0.2.0", note = "`Parallelism` moved to `lrgp::plan`")]
pub mod parallel;
#[deprecated(since = "0.2.0", note = "merged into `lrgp::kernel::price`")]
pub mod price;
#[deprecated(since = "0.2.0", note = "merged into `lrgp::kernel::price`")]
pub mod prices;
#[deprecated(since = "0.2.0", note = "moved to `lrgp::kernel::rate`")]
pub mod rate;

pub use dynamics::{run_scenario, ProblemChange, RandomChurn, Scenario, ScenarioOutcome};
pub use enactment::{EnactmentPolicy, Enactor};
pub use engine::{Engine, InitialRate, LrgpConfig, RunOutcome};
pub use gamma::{AdaptiveGammaConfig, GammaController, GammaMode};
pub use kernel::admission::{AdmissionPolicy, PopulationMode};
pub use kernel::price::PriceVector;
pub use plan::{AutoModel, ExecutionPlan, IncrementalMode, Numerics, Parallelism, Reliability};
pub use snapshot::EngineSnapshot;
pub use trace::{Trace, TraceConfig};
pub use two_stage::{two_stage_solve, TwoStageOutcome};

// Deprecated names kept importable at the crate root for one release.
#[allow(deprecated)]
pub use engine::LrgpEngine;
#[allow(deprecated)]
pub use parallel::ParallelLrgpEngine;
