//! **LRGP — Lagrangian Rates, Greedy Populations.**
//!
//! A reproduction of the distributed utility-optimization algorithm from
//! *"Utility Optimization for Event-Driven Distributed Infrastructures"*
//! (Lumezanu, Bhola, Astley — ICDCS 2006).
//!
//! The problem: an overlay of broker nodes disseminates message *flows* from
//! producers to *consumer classes*; both message rates and per-consumer
//! processing consume node (CPU) and link (bandwidth) resources. The system
//! maximizes `Σ n_j · U_j(r_i)` — admitted consumers times their strictly
//! concave rate utilities — subject to capacity constraints that are
//! *nonconvex* because populations multiply rates.
//!
//! LRGP splits the problem into two coupled subproblems, iterated forever:
//!
//! * [`rate`] — **Lagrangian rate allocation** at each flow source, against
//!   aggregated link/node prices ([`prices`]).
//! * [`admission`] — **greedy consumer admission** at each node, by
//!   benefit–cost ratio, which also yields the node's price target.
//! * [`price`] — the node (Eq. 12) and link (Eq. 13) price updates, with
//!   per-node adaptive step-size control ([`gamma`]).
//!
//! The synchronous driver lives in [`engine`]; iteration traces in
//! [`trace`]; deployment-facing enactment policies in [`enactment`];
//! workload-churn scenarios in [`dynamics`]; the §2.4 two-stage pruning
//! driver in [`two_stage`].
//!
//! # Quickstart
//!
//! ```
//! use lrgp::{LrgpConfig, LrgpEngine};
//! use lrgp_model::workloads;
//!
//! let problem = workloads::base_workload(); // Table 1 of the paper
//! let mut engine = LrgpEngine::new(problem, LrgpConfig::default());
//! let outcome = engine.run_until_converged(250);
//! println!(
//!     "utility {:.0} after {} iterations",
//!     outcome.utility,
//!     outcome.iterations
//! );
//! assert!(engine.allocation().is_feasible(engine.problem(), 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod dynamics;
pub mod enactment;
pub mod engine;
pub mod gamma;
pub mod incremental;
pub mod parallel;
pub mod price;
pub mod prices;
pub mod rate;
pub mod snapshot;
pub mod trace;
pub mod two_stage;

pub use admission::{AdmissionPolicy, PopulationMode};
pub use dynamics::{run_scenario, ProblemChange, RandomChurn, Scenario, ScenarioOutcome};
pub use enactment::{EnactmentPolicy, Enactor};
pub use engine::{InitialRate, LrgpConfig, LrgpEngine, RunOutcome};
pub use gamma::{AdaptiveGammaConfig, GammaController, GammaMode};
pub use incremental::IncrementalMode;
pub use parallel::{ParallelLrgpEngine, Parallelism};
pub use prices::PriceVector;
pub use snapshot::EngineSnapshot;
pub use trace::{Trace, TraceConfig};
pub use two_stage::{two_stage_solve, TwoStageOutcome};
