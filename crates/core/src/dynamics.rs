//! Workload dynamics: scripted and randomized change scenarios.
//!
//! §2.1 frames LRGP as "running all the time, and responding to changes in
//! workload and system capacity"; §4.2's Fig. 3 studies one such change
//! (a departing flow source). This module generalizes that experiment: a
//! [`Scenario`] is a schedule of [`ProblemChange`]s applied at given
//! iterations while the engine keeps running, and [`RandomChurn`] generates
//! such schedules for stress testing.

use crate::engine::Engine;
use lrgp_model::{
    ClassId, DeltaOp, FlowId, NodeId, Problem, ProblemDelta, RateBounds, ValidationError,
};
use lrgp_num::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One atomic change to the live system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProblemChange {
    /// A flow source leaves (Fig. 3): rate to zero, classes shut out, costs
    /// vanish.
    RemoveFlow(FlowId),
    /// A node's capacity changes (hardware re-provisioning, co-tenant
    /// load).
    SetNodeCapacity {
        /// The node to re-provision.
        node: NodeId,
        /// New capacity (must be positive and finite).
        capacity: f64,
    },
    /// A class's demand changes (consumers arriving/leaving).
    SetMaxPopulation {
        /// The class whose demand changes.
        class: ClassId,
        /// New maximum population.
        max_population: u32,
    },
    /// A flow's rate bounds change (producer renegotiates its SLA).
    SetRateBounds {
        /// The flow whose bounds change.
        flow: FlowId,
        /// The new bounds.
        bounds: RateBounds,
    },
}

impl ProblemChange {
    /// Applies the change to a problem, producing the modified copy.
    ///
    /// This is the pure-transform oracle; live engines apply changes
    /// through [`Engine::apply_delta`] instead (see [`run_scenario`]).
    ///
    /// # Errors
    ///
    /// Propagates model validation errors (non-positive capacity, invalid
    /// bounds).
    #[must_use = "this Result reports a failure the caller must handle"]
    pub fn apply(&self, problem: &Problem) -> Result<Problem, ValidationError> {
        match *self {
            ProblemChange::RemoveFlow(flow) => Ok(problem.without_flow(flow)),
            ProblemChange::SetNodeCapacity { node, capacity } => {
                problem.with_node_capacity(node, capacity)
            }
            ProblemChange::SetMaxPopulation { class, max_population } => {
                Ok(problem.with_max_population(class, max_population))
            }
            ProblemChange::SetRateBounds { flow, bounds } => {
                problem.with_rate_bounds(flow, bounds)
            }
        }
    }

    /// The equivalent first-class delta op.
    pub fn to_delta_op(&self) -> DeltaOp {
        match *self {
            ProblemChange::RemoveFlow(flow) => DeltaOp::RemoveFlow { flow },
            ProblemChange::SetNodeCapacity { node, capacity } => {
                DeltaOp::SetNodeCapacity { node, capacity }
            }
            ProblemChange::SetMaxPopulation { class, max_population } => {
                DeltaOp::SetMaxPopulation { class, max_population }
            }
            ProblemChange::SetRateBounds { flow, bounds } => {
                DeltaOp::SetRateBounds { flow, bounds }
            }
        }
    }
}

/// A schedule of changes, each firing after a given number of engine
/// iterations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    events: Vec<(usize, ProblemChange)>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `change` to fire *before* iteration `iteration`
    /// (0-based: `at(0, ..)` applies before the first step). Returns `self`
    /// for chaining.
    pub fn at(mut self, iteration: usize, change: ProblemChange) -> Self {
        self.events.push((iteration, change));
        self.events.sort_by_key(|(k, _)| *k);
        self
    }

    /// The scheduled events, sorted by iteration.
    pub fn events(&self) -> &[(usize, ProblemChange)] {
        &self.events
    }

    /// Number of scheduled changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no changes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Trace of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Utility after every iteration.
    pub utility: TimeSeries,
    /// Iterations at which changes were applied.
    pub change_points: Vec<usize>,
    /// Final total utility.
    pub final_utility: f64,
    /// Largest single-iteration relative utility drop observed (the
    /// disruption magnitude).
    pub worst_drop: f64,
}

/// Runs `engine` for `iterations` steps, applying the scenario's changes at
/// their scheduled points through [`Engine::apply_delta`] (changes due at
/// the same iteration are applied as one batched delta).
///
/// # Errors
///
/// Propagates validation errors from applying a change.
#[must_use = "this Result reports a failure the caller must handle"]
pub fn run_scenario(
    engine: &mut Engine,
    scenario: &Scenario,
    iterations: usize,
) -> Result<ScenarioOutcome, ValidationError> {
    let start = engine.iteration();
    let mut pending = scenario.events.iter().peekable();
    let mut change_points = Vec::new();
    let mut utility = TimeSeries::new("scenario utility");
    let mut prev: Option<f64> = None;
    let mut worst_drop = 0.0f64;
    for k in 0..iterations {
        let mut delta = ProblemDelta::new();
        while let Some(&&(at, change)) = pending.peek() {
            if at <= k {
                delta.push(change.to_delta_op());
                change_points.push(start + k);
                pending.next();
            } else {
                break;
            }
        }
        engine.apply_delta(&delta)?;
        let u = engine.step();
        if let Some(p) = prev {
            if p > 0.0 {
                worst_drop = worst_drop.max((p - u) / p);
            }
        }
        prev = Some(u);
        utility.push(u);
    }
    let final_utility = utility.last().unwrap_or(0.0);
    Ok(ScenarioOutcome { utility, change_points, final_utility, worst_drop })
}

/// Generates random churn scenarios: every `period` iterations, one random
/// change drawn from the enabled kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomChurn {
    /// Iterations between consecutive changes.
    pub period: usize,
    /// Total number of changes to schedule.
    pub changes: usize,
    /// Allow capacity changes (drawn in `[0.5, 1.5]` × current).
    pub capacity_churn: bool,
    /// Allow demand changes (max population redrawn in `[0, 2·current]`).
    pub population_churn: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomChurn {
    fn default() -> Self {
        Self { period: 50, changes: 5, capacity_churn: true, population_churn: true, seed: 0 }
    }
}

impl RandomChurn {
    /// Builds a concrete scenario for `problem`.
    ///
    /// # Panics
    ///
    /// Panics if both churn kinds are disabled or `period` is zero.
    pub fn scenario(&self, problem: &Problem) -> Scenario {
        assert!(self.period > 0, "churn period must be positive");
        assert!(
            self.capacity_churn || self.population_churn,
            "at least one churn kind must be enabled"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut scenario = Scenario::new();
        for k in 1..=self.changes {
            let at = k * self.period;
            let pick_capacity = match (self.capacity_churn, self.population_churn) {
                (true, true) => rng.gen_bool(0.5),
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!(),
            };
            let change = if pick_capacity {
                let node = NodeId::new(rng.gen_range(0..problem.num_nodes() as u32));
                let factor = rng.gen_range(0.5..=1.5);
                ProblemChange::SetNodeCapacity {
                    node,
                    capacity: problem.node(node).capacity * factor,
                }
            } else {
                let class = ClassId::new(rng.gen_range(0..problem.num_classes() as u32));
                let current = problem.class(class).max_population;
                ProblemChange::SetMaxPopulation {
                    class,
                    max_population: rng.gen_range(0..=current.saturating_mul(2).max(1)),
                }
            };
            scenario = scenario.at(at, change);
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LrgpConfig;
    use lrgp_model::workloads::base_workload;

    #[test]
    fn empty_scenario_is_a_plain_run() {
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let out = run_scenario(&mut e, &Scenario::new(), 30).unwrap();
        assert_eq!(out.utility.len(), 30);
        assert!(out.change_points.is_empty());
        assert!(out.final_utility > 0.0);
    }

    #[test]
    fn remove_flow_scenario_matches_manual_removal() {
        let scenario = Scenario::new().at(20, ProblemChange::RemoveFlow(FlowId::new(5)));
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let out = run_scenario(&mut e, &scenario, 60).unwrap();
        assert_eq!(out.change_points, vec![20]);
        // Manual equivalent.
        let mut manual = Engine::new(base_workload(), LrgpConfig::default());
        manual.run(20);
        manual.apply_delta(&ProblemDelta::new().remove_flow(FlowId::new(5))).unwrap();
        manual.run(40);
        assert!((out.final_utility - manual.total_utility()).abs() < 1e-6);
        assert!(out.worst_drop > 0.2, "removal should cause a visible drop");
    }

    #[test]
    fn capacity_cut_reduces_utility_and_stays_feasible() {
        let scenario = Scenario::new()
            .at(30, ProblemChange::SetNodeCapacity { node: NodeId::new(0), capacity: 3e5 });
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let before = {
            let mut probe = Engine::new(base_workload(), LrgpConfig::default());
            probe.run_until_converged(250).utility
        };
        let out = run_scenario(&mut e, &scenario, 250).unwrap();
        assert!(out.final_utility < before, "{} !< {before}", out.final_utility);
        assert!(e.allocation().is_feasible(e.problem(), 1e-6));
    }

    #[test]
    fn demand_growth_raises_utility() {
        // Double the rank-100 class's demand at iteration 50.
        let scenario = Scenario::new().at(
            50,
            ProblemChange::SetMaxPopulation { class: ClassId::new(18), max_population: 3000 },
        );
        let baseline = {
            let mut e = Engine::new(base_workload(), LrgpConfig::default());
            e.run_until_converged(300).utility
        };
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let out = run_scenario(&mut e, &scenario, 300).unwrap();
        assert!(
            out.final_utility > baseline,
            "more demand for valuable consumers should raise utility: {} vs {baseline}",
            out.final_utility
        );
    }

    #[test]
    fn rate_bound_tightening_is_enforced() {
        let nb = RateBounds { min: 10.0, max: 20.0 };
        let scenario = Scenario::new()
            .at(10, ProblemChange::SetRateBounds { flow: FlowId::new(0), bounds: nb });
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        run_scenario(&mut e, &scenario, 50).unwrap();
        let r = e.allocation().rate(FlowId::new(0));
        assert!((10.0..=20.0).contains(&r), "rate {r} escaped new bounds");
    }

    #[test]
    fn invalid_change_propagates_error() {
        let scenario = Scenario::new()
            .at(5, ProblemChange::SetNodeCapacity { node: NodeId::new(0), capacity: -1.0 });
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        assert!(run_scenario(&mut e, &scenario, 10).is_err());
    }

    #[test]
    fn scenario_events_sorted_and_multiple_at_same_iteration() {
        let s = Scenario::new()
            .at(30, ProblemChange::RemoveFlow(FlowId::new(1)))
            .at(10, ProblemChange::RemoveFlow(FlowId::new(0)))
            .at(10, ProblemChange::RemoveFlow(FlowId::new(2)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.events()[0].0, 10);
        let mut e = Engine::new(base_workload(), LrgpConfig::default());
        let out = run_scenario(&mut e, &s, 50).unwrap();
        assert_eq!(out.change_points, vec![10, 10, 30]);
        assert_eq!(e.allocation().rate(FlowId::new(0)), 0.0);
        assert_eq!(e.allocation().rate(FlowId::new(2)), 0.0);
    }

    #[test]
    fn random_churn_is_deterministic_and_survivable() {
        let p = base_workload();
        let churn = RandomChurn { period: 20, changes: 6, seed: 3, ..Default::default() };
        let s1 = churn.scenario(&p);
        let s2 = churn.scenario(&p);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 6);
        let mut e = Engine::new(p, LrgpConfig::default());
        let out = run_scenario(&mut e, &s1, 200).unwrap();
        assert_eq!(out.change_points.len(), 6);
        assert!(out.final_utility > 0.0);
        assert!(e.allocation().is_feasible(e.problem(), 1e-6));
    }

    #[test]
    #[should_panic(expected = "churn period must be positive")]
    fn churn_rejects_zero_period() {
        let churn = RandomChurn { period: 0, ..Default::default() };
        let _ = churn.scenario(&base_workload());
    }
}
