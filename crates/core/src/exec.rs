//! The dirty-set step executor shared by every execution plan.
//!
//! [`StepState`] runs one LRGP iteration over the engine's state. It is the
//! **only** solve loop in the crate: a full recompute is simply the
//! all-dirty special case (the plan layer marks everything dirty first),
//! and the parallel paths shard the dirty lists over the engine's
//! persistent worker pool (see [`crate::plan`] and [`crate::pool`]).
//!
//! Near convergence almost every per-iteration quantity is recomputed to the
//! very same bits it already had: prices stop moving (the γ step underflows
//! against the price magnitude), so aggregated prices stop moving, so rates
//! stop moving, so admissions stop moving. The incremental plan exploits
//! that with **exact, bitwise dirty tracking** — work is proportional to
//! what changed, and the result is bit-identical (`f64::to_bits`) to the
//! full recompute, enforced by `tests/differential.rs`.
//!
//! # Why skipping is exact
//!
//! Every LRGP kernel is a pure function of the previous iteration's
//! published state. If a kernel's inputs are bitwise unchanged since the
//! last time it ran, its output is bitwise unchanged too, so writing it
//! again is a no-op — the stored value *is* the output. The only subtlety is
//! the rate solver's `fallback` argument (the previous rate, used when the
//! flow has no admitted consumers and zero price): the solver is idempotent
//! in it (`clamp(clamp(r)) = clamp(r)`), so a skipped flow's stored rate
//! still equals what a fresh solve would return.
//!
//! # Dirty-set invariants
//!
//! | recompute          | iff one of its inputs changed bitwise            |
//! |--------------------|--------------------------------------------------|
//! | rate of flow `i`   | price of a node in `B_i` / link in `L_i`, or the population of a class in `C_i`, changed last iteration |
//! | admission at `b`   | the rate of a flow in `nodeMap(b)` changed this iteration |
//! | usage of link `l`  | the rate of a flow in `linkMap(l)` changed this iteration |
//! | total utility      | any rate or population changed this iteration    |
//!
//! The price updates themselves (Eqs. 12–13) and the γ controllers are O(1)
//! per element and **always** run — their state must advance every iteration
//! exactly as in the baseline — but they read the *cached* admission outcome
//! (`BC`, `used`) and link usage, which is only recomputed when dirty.
//!
//! # External dirt
//!
//! Problem deltas ([`crate::engine::Engine::apply_delta`]) inject dirt from
//! *outside* the iteration loop through the `note_*` methods: a capacity
//! change dirties that node's admission, a population bound change dirties
//! the class's node and (if the published population moved) the class's
//! flow, a rate-bound change dirties the flow and (if the clamp moved the
//! stored rate) everything downstream of it. The next step unions this
//! external dirt into its derived dirty sets, so a delta costs work
//! proportional to what it touched. Cost-coefficient changes (flow
//! add/remove, path cost edits) invalidate the state wholesale instead —
//! the term tables are rebuilt and the next step treats everything as
//! dirty.
//!
//! # State layout and the pooled handoff
//!
//! The hot per-node admission state is stored **struct-of-arrays**
//! ([`NodeTable`]): the Eq. 12 inputs `used` and `BC` live in two dense
//! `Vec<f64>`s read linearly by the always-runs price loop, while the
//! bulky per-node scratch (the sorted BC order and population decisions)
//! lives in a parallel vector of [`AdmissionOrder`] slots, each behind a
//! `Mutex` so pooled workers can re-admit disjoint shards concurrently
//! (each node belongs to exactly one shard, so the locks are uncontended;
//! the sequential path bypasses them with `Mutex::get_mut`).
//!
//! A pooled phase *moves* its inputs into the pool's job slot (pointer
//! swaps via `mem::take` / `mem::replace`, never `O(problem)` copies), the
//! caller runs shard 0 inline while workers run shards `1..`, and the
//! inputs move back out afterwards — so a steady-state step performs **no
//! heap allocation and no thread spawning** on either path. Results are
//! applied in shard order, which keeps the pooled schedule bit-identical
//! to the sequential one (see [`crate::plan`]). A panicking kernel
//! resumes its unwind on the caller *after* the inputs are restored and
//! all pending outputs are discarded, leaving the engine and the pool
//! reusable.

use crate::engine::LrgpConfig;
use crate::gamma::GammaController;
use crate::kernel::admission::allocate_consumers_into;
use crate::kernel::price::{update_link_price, update_node_price_with_rule, PriceVector};
use crate::kernel::rate::{solve_rate, AggregateUtility};
use crate::kernel::reliability::{solve_flow_rho, solve_flow_rho_vectorized};
use crate::kernel::vector::{
    dot_gather, dot_gather3, link_price_batch, node_price_batch, solve_flow_rate_from_table,
    GroupedAggregate,
};
use crate::plan::ExecutionPlan;
use crate::pool::{
    lock_unpoisoned, shard_chunk, shard_count, AdmissionJob, AdmissionOrder, Job, PoolHandle,
    RateJob, ReliabilityJob,
};
use lrgp_model::{ClassId, FlowId, LinkId, NodeId, PriceTermTable, Problem};
use std::sync::{Arc, Mutex, PoisonError};

/// Adds `id` to `list` unless its flag is already set.
#[inline]
fn mark(flags: &mut [bool], list: &mut Vec<u32>, id: u32) {
    let slot = &mut flags[id as usize];
    if !*slot {
        *slot = true;
        list.push(id);
    }
}

/// Clears the flags of every id in `list`, then the list itself.
fn clear_marks(flags: &mut [bool], list: &mut Vec<u32>) {
    for &id in list.iter() {
        flags[id as usize] = false;
    }
    list.clear();
}

/// The per-node admission state, struct-of-arrays (see the module docs):
/// dense `used`/`bc` columns for the price loop's linear read, and the
/// per-node [`AdmissionOrder`] scratch behind shard-concurrency mutexes.
#[derive(Debug)]
struct NodeTable {
    /// Each node's admission scratch (sorted BC order + populations).
    orders: Vec<Mutex<AdmissionOrder>>,
    /// `used_b` of the last recompute, indexed by node id.
    used: Vec<f64>,
    /// `BC(b)` (Eq. 11) of the last recompute, indexed by node id.
    bc: Vec<f64>,
}

impl NodeTable {
    fn new(problem: &Problem) -> Self {
        Self {
            orders: problem
                .node_ids()
                .map(|node| {
                    let classes = problem.classes_at_node(node);
                    Mutex::new(AdmissionOrder {
                        order: classes.iter().map(|&c| (c, 0.0)).collect(),
                        populations: Vec::with_capacity(classes.len()),
                    })
                })
                .collect(),
            used: vec![0.0; problem.num_nodes()],
            bc: vec![0.0; problem.num_nodes()],
        }
    }
}

impl Clone for NodeTable {
    fn clone(&self) -> Self {
        Self {
            orders: self
                .orders
                .iter()
                .map(|slot| Mutex::new(lock_unpoisoned(slot).clone()))
                .collect(),
            used: self.used.clone(),
            bc: self.bc.clone(),
        }
    }
}

/// The caller's reusable shard-0 scratch for the rate phase.
#[derive(Debug, Clone, Default)]
struct RateScratch {
    agg: AggregateUtility,
    grouped: GroupedAggregate,
    out: Vec<(u32, f64)>,
}

/// Reusable dense columns for the vectorized price batches: gathered
/// inputs (γ, capacities) and the batch outputs, sized lazily on first
/// vectorized step.
#[derive(Debug, Clone, Default)]
struct VectorScratch {
    gammas: Vec<f64>,
    caps: Vec<f64>,
    next: Vec<f64>,
}

/// The executor's persistent state: term tables, caches, dirty sets, and
/// scratch buffers. Dropped (and lazily rebuilt) whenever the problem's
/// cost structure changes.
#[derive(Debug, Clone)]
pub(crate) struct StepState {
    terms: Arc<PriceTermTable>,
    nodes: NodeTable,
    link_usage: Vec<f64>,
    cached_utility: f64,
    /// Everything dirty on the first step after (re)construction.
    first: bool,
    /// Forces the next step to republish the utility even if no rate or
    /// population changes *within* it (a delta changed them between steps).
    force_utility: bool,

    // Changes published by the previous iteration (inputs to this one).
    node_price_changed: Vec<bool>,
    changed_nodes: Vec<u32>,
    link_price_changed: Vec<bool>,
    changed_links: Vec<u32>,
    pop_changed: Vec<bool>,
    changed_classes: Vec<u32>,

    // Changes produced within the current iteration.
    rate_changed: Vec<bool>,
    changed_rates: Vec<u32>,
    /// Flows whose ρ moved bitwise this iteration. Only populated by
    /// [`crate::plan::Reliability::Joint`] plans; permanently empty under
    /// Off, so every consumer of these lists is a no-op there.
    rho_changed: Vec<bool>,
    changed_rhos: Vec<u32>,

    // External dirt injected between steps by problem deltas.
    ext_flow_dirty: Vec<bool>,
    ext_dirty_flows: Vec<u32>,
    ext_node_dirty: Vec<bool>,
    ext_dirty_nodes: Vec<u32>,
    ext_link_dirty: Vec<bool>,
    ext_dirty_links: Vec<u32>,

    // Dirty work lists (sorted ascending before use).
    flow_dirty: Vec<bool>,
    dirty_flows: Vec<u32>,
    node_dirty: Vec<bool>,
    dirty_nodes: Vec<u32>,
    link_dirty: Vec<bool>,
    dirty_links: Vec<u32>,

    rate_scratch: RateScratch,
    vector_scratch: VectorScratch,
    /// The caller's shard-0 admission output, `(node, used, bc)`.
    admission_scratch: Vec<(u32, f64, f64)>,
    /// The caller's shard-0 reliability output, `(flow, rho)`.
    rho_scratch: Vec<(u32, f64)>,
    /// Panic-injection test hook, threaded into pooled rate jobs.
    #[cfg(test)]
    panic_on_flow: Option<u32>,
}

impl StepState {
    /// Builds fresh tables and empty caches for `problem`; the first step
    /// marks everything dirty and fills the caches.
    pub(crate) fn new(problem: &Problem) -> Self {
        Self {
            terms: Arc::new(PriceTermTable::new(problem)),
            nodes: NodeTable::new(problem),
            link_usage: vec![0.0; problem.num_links()],
            cached_utility: 0.0,
            first: true,
            force_utility: false,
            node_price_changed: vec![false; problem.num_nodes()],
            changed_nodes: Vec::with_capacity(problem.num_nodes()),
            link_price_changed: vec![false; problem.num_links()],
            changed_links: Vec::with_capacity(problem.num_links()),
            pop_changed: vec![false; problem.num_classes()],
            changed_classes: Vec::with_capacity(problem.num_classes()),
            rate_changed: vec![false; problem.num_flows()],
            changed_rates: Vec::with_capacity(problem.num_flows()),
            rho_changed: vec![false; problem.num_flows()],
            changed_rhos: Vec::new(),
            ext_flow_dirty: vec![false; problem.num_flows()],
            ext_dirty_flows: Vec::new(),
            ext_node_dirty: vec![false; problem.num_nodes()],
            ext_dirty_nodes: Vec::new(),
            ext_link_dirty: vec![false; problem.num_links()],
            ext_dirty_links: Vec::new(),
            flow_dirty: vec![false; problem.num_flows()],
            dirty_flows: Vec::with_capacity(problem.num_flows()),
            node_dirty: vec![false; problem.num_nodes()],
            dirty_nodes: Vec::with_capacity(problem.num_nodes()),
            link_dirty: vec![false; problem.num_links()],
            dirty_links: Vec::with_capacity(problem.num_links()),
            rate_scratch: RateScratch::default(),
            vector_scratch: VectorScratch::default(),
            admission_scratch: Vec::new(),
            rho_scratch: Vec::new(),
            #[cfg(test)]
            panic_on_flow: None,
        }
    }

    /// Marks everything dirty for the next step, turning it into an exact
    /// full recompute (the non-incremental plans call this every step).
    pub(crate) fn mark_all_dirty(&mut self) {
        self.first = true;
    }

    /// Records that `node`'s capacity changed: its admission outcome must be
    /// recomputed (the price update always runs and reads the capacity
    /// directly).
    pub(crate) fn note_capacity_change(&mut self, node: NodeId) {
        mark(&mut self.ext_node_dirty, &mut self.ext_dirty_nodes, node.index() as u32);
    }

    /// Records that `class`'s population bound changed, and whether the
    /// published population itself was clamped to new bits. The class's
    /// node must re-admit; a moved population additionally dirties the
    /// class's flow (rate solves read populations) and staleness the cached
    /// utility.
    pub(crate) fn note_population_change(
        &mut self,
        problem: &Problem,
        class: ClassId,
        pop_bits_changed: bool,
    ) {
        let node = problem.class(class).node;
        mark(&mut self.ext_node_dirty, &mut self.ext_dirty_nodes, node.index() as u32);
        if pop_bits_changed {
            mark(&mut self.pop_changed, &mut self.changed_classes, class.index() as u32);
            self.force_utility = true;
        }
    }

    /// Records that `flow`'s rate bounds changed, and whether the stored
    /// rate itself was clamped to new bits. The flow must re-solve; a moved
    /// rate additionally dirties every node and link it feeds (their cached
    /// admissions / usages were built against the old rate) and stalenesses
    /// the cached utility.
    pub(crate) fn note_bounds_change(
        &mut self,
        problem: &Problem,
        flow: FlowId,
        rate_bits_changed: bool,
    ) {
        mark(&mut self.ext_flow_dirty, &mut self.ext_dirty_flows, flow.index() as u32);
        if rate_bits_changed {
            for &(node, _) in problem.nodes_of_flow(flow) {
                mark(&mut self.ext_node_dirty, &mut self.ext_dirty_nodes, node.index() as u32);
            }
            for &(link, _) in problem.links_of_flow(flow) {
                mark(&mut self.ext_link_dirty, &mut self.ext_dirty_links, link.index() as u32);
            }
            self.force_utility = true;
        }
    }

    /// The current dirty/changed set sizes, for tests:
    /// `(changed_rates, changed_nodes, changed_links)` as published by the
    /// last completed step.
    #[cfg(test)]
    pub(crate) fn changed_counts(&self) -> (usize, usize, usize) {
        (self.changed_rates.len(), self.changed_nodes.len(), self.changed_links.len())
    }

    /// The node ids whose prices changed in the last completed step.
    #[cfg(test)]
    pub(crate) fn changed_node_ids(&self) -> &[u32] {
        &self.changed_nodes
    }

    /// Arms the panic-injection hook: the next pooled rate job panics when
    /// it reaches this flow id.
    #[cfg(test)]
    pub(crate) fn set_panic_on_flow(&mut self, flow: Option<u32>) {
        self.panic_on_flow = flow;
    }

    /// One LRGP iteration over the engine's state under `plan`, sharding
    /// over `pool` where the plan asks for it. Returns the total utility
    /// (recomputed only when a rate or population changed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step(
        &mut self,
        problem: &Arc<Problem>,
        config: &LrgpConfig,
        plan: &ExecutionPlan,
        pool: &PoolHandle,
        rates: &mut Vec<f64>,
        rhos: &mut Vec<f64>,
        populations: &mut Vec<f64>,
        prices: &mut PriceVector,
        gammas: &mut [GammaController],
    ) -> f64 {
        // The ρ phase only exists under a Joint plan on a problem with a
        // reliability spec; everywhere else the step is exactly the classic
        // rate-only pipeline (changed_rhos stays permanently empty, and the
        // Off gates below never add a float operation).
        let joint = plan.reliability.joint() && problem.reliability().is_some();
        self.derive_dirty_flows(problem);
        self.solve_dirty_rates(problem, plan, pool, rates, populations, prices);
        if joint {
            self.solve_dirty_rhos(problem, plan, pool, rates, rhos, populations, prices);
        }
        self.derive_dirty_nodes(problem);
        self.run_dirty_admissions(problem, config, plan, pool, rates);
        self.apply_populations(populations);
        self.update_node_prices(problem, config, plan, prices, gammas);
        self.derive_dirty_links(problem);
        self.update_link_usage_and_prices(problem, config, plan, rates, rhos, joint, prices);
        if self.first
            || self.force_utility
            || !self.changed_rates.is_empty()
            || !self.changed_rhos.is_empty()
            || !self.changed_classes.is_empty()
        {
            self.cached_utility = total_utility(problem, rates, populations);
            if joint {
                self.cached_utility += reliability_utility(problem, rhos, populations);
            }
        }
        self.first = false;
        self.force_utility = false;
        self.cached_utility
    }

    /// Phase 0: a flow's rate inputs are the prices along its path and the
    /// populations of its classes; it is dirty iff one of them changed last
    /// iteration (or a delta dirtied it externally). Consumes (and clears)
    /// the previous iteration's change sets and the external dirt.
    fn derive_dirty_flows(&mut self, problem: &Problem) {
        let Self {
            flow_dirty,
            dirty_flows,
            node_price_changed,
            changed_nodes,
            link_price_changed,
            changed_links,
            pop_changed,
            changed_classes,
            ext_flow_dirty,
            ext_dirty_flows,
            first,
            ..
        } = self;
        clear_marks(flow_dirty, dirty_flows);
        if *first {
            for f in 0..problem.num_flows() as u32 {
                flow_dirty[f as usize] = true;
                dirty_flows.push(f);
            }
        } else {
            for &b in changed_nodes.iter() {
                for &f in problem.flows_at_node(NodeId::new(b)) {
                    mark(flow_dirty, dirty_flows, f.index() as u32);
                }
            }
            for &l in changed_links.iter() {
                for &f in problem.flows_on_link(LinkId::new(l)) {
                    mark(flow_dirty, dirty_flows, f.index() as u32);
                }
            }
            for &c in changed_classes.iter() {
                let flow = problem.class(ClassId::new(c)).flow;
                mark(flow_dirty, dirty_flows, flow.index() as u32);
            }
            for &f in ext_dirty_flows.iter() {
                mark(flow_dirty, dirty_flows, f);
            }
            dirty_flows.sort_unstable();
        }
        clear_marks(node_price_changed, changed_nodes);
        clear_marks(link_price_changed, changed_links);
        clear_marks(pop_changed, changed_classes);
        clear_marks(ext_flow_dirty, ext_dirty_flows);
    }

    /// Phase 1: re-solve the dirty flows' rates (Algorithm 1) against the
    /// term tables, recording bitwise rate changes. When the plan resolves
    /// to more than one context and the pool dispatches, the inputs move
    /// into a [`RateJob`], shards `1..` run on parked workers while the
    /// caller runs shard 0, and the results are applied in shard order.
    fn solve_dirty_rates(
        &mut self,
        problem: &Arc<Problem>,
        plan: &ExecutionPlan,
        pool: &PoolHandle,
        rates: &mut Vec<f64>,
        populations: &mut Vec<f64>,
        prices: &mut PriceVector,
    ) {
        clear_marks(&mut self.rate_changed, &mut self.changed_rates);
        if self.dirty_flows.is_empty() {
            return;
        }
        let workers = plan.workers_for(self.dirty_flows.len());
        let pooled = pool
            .get()
            .filter(|p| workers > 1 && p.dispatches())
            .map(|p| (p, workers.min(p.workers() + 1)))
            .filter(|&(_, w)| w > 1);
        let Some((pool, workers)) = pooled else {
            // The sequential schedule is bit-identical to shard-and-apply:
            // a flow's solve reads `rates` only at its own index (the
            // solver's fallback), so in-place iteration sees the same
            // inputs a frozen pre-phase copy would.
            let Self { terms, dirty_flows, rate_changed, changed_rates, rate_scratch, .. } =
                self;
            let agg = &mut rate_scratch.agg;
            let grouped = &mut rate_scratch.grouped;
            let vectorized = plan.numerics.vectorized();
            for &f in dirty_flows.iter() {
                let flow = FlowId::new(f);
                let next = if vectorized {
                    solve_flow_rate_from_table(
                        problem,
                        terms,
                        prices,
                        populations,
                        flow,
                        rates[f as usize],
                        grouped,
                    )
                } else {
                    agg.refill_for_flow(problem, flow, populations);
                    let price = prices.aggregate_price_from_table(terms, flow, populations);
                    solve_rate(agg, price, problem.flow(flow).bounds, rates[f as usize])
                };
                if next.to_bits() != rates[f as usize].to_bits() {
                    rates[f as usize] = next;
                    mark(rate_changed, changed_rates, f);
                }
            }
            return;
        };
        let chunk = shard_chunk(self.dirty_flows.len(), workers);
        let shards = shard_count(self.dirty_flows.len(), workers);
        let job = Job::Rates(RateJob {
            problem: Arc::clone(problem),
            terms: Arc::clone(&self.terms),
            dirty: std::mem::take(&mut self.dirty_flows),
            rates: std::mem::take(rates),
            populations: std::mem::take(populations),
            prices: std::mem::replace(prices, PriceVector::detached()),
            chunk,
            numerics: plan.numerics,
            #[cfg(test)]
            panic_on_flow: self.panic_on_flow,
        });
        let scratch = &mut self.rate_scratch;
        let (job, panic) = pool.run(job, shards, |job| {
            if let Job::Rates(job) = job {
                job.run_shard(0, &mut scratch.out, &mut scratch.agg, &mut scratch.grouped);
            }
        });
        // Move the inputs back out before anything can unwind, so a
        // panicking kernel leaves the engine's state intact.
        if let Job::Rates(job) = job {
            self.dirty_flows = job.dirty;
            *rates = job.rates;
            *populations = job.populations;
            *prices = job.prices;
        }
        if let Some(payload) = panic {
            self.rate_scratch.out.clear();
            pool.discard_outputs();
            std::panic::resume_unwind(payload);
        }
        let Self { rate_changed, changed_rates, rate_scratch, .. } = self;
        let mut apply = |f: u32, next: f64| {
            if next.to_bits() != rates[f as usize].to_bits() {
                rates[f as usize] = next;
                mark(rate_changed, changed_rates, f);
            }
        };
        for &(f, next) in &rate_scratch.out {
            apply(f, next);
        }
        for w in 0..shards - 1 {
            pool.drain_rates(w, &mut apply);
        }
        rate_scratch.out.clear();
    }

    /// Phase 1b (Joint plans only): re-solve the dirty flows' reliability
    /// best-response against the current link prices and the freshly solved
    /// rates, recording bitwise ρ changes.
    ///
    /// The ρ dirty set is exactly `dirty_flows`: a flow's ρ inputs are the
    /// link prices along its path, the populations of its classes, and its
    /// own rate — the first two are the rate solve's inputs (so they dirty
    /// the flow through phase 0), and a rate can only move for a flow in the
    /// dirty set. A clean flow therefore re-derives the bitwise-same ρ, and
    /// skipping it is exact — the same argument that makes rate skipping
    /// exact, applied one phase later.
    #[allow(clippy::too_many_arguments)]
    fn solve_dirty_rhos(
        &mut self,
        problem: &Arc<Problem>,
        plan: &ExecutionPlan,
        pool: &PoolHandle,
        rates: &mut Vec<f64>,
        rhos: &mut Vec<f64>,
        populations: &mut Vec<f64>,
        prices: &mut PriceVector,
    ) {
        clear_marks(&mut self.rho_changed, &mut self.changed_rhos);
        let Some(redundancy) = problem.reliability().map(|spec| spec.redundancy) else {
            return;
        };
        if self.dirty_flows.is_empty() {
            return;
        }
        let workers = plan.workers_for(self.dirty_flows.len());
        let pooled = pool
            .get()
            .filter(|p| workers > 1 && p.dispatches())
            .map(|p| (p, workers.min(p.workers() + 1)))
            .filter(|&(_, w)| w > 1);
        let Some((pool, workers)) = pooled else {
            // Bit-identical to shard-and-apply for the same reason as the
            // rate phase: a flow's ρ solve reads `rhos` only at its own
            // index (the fallback).
            let Self { terms, dirty_flows, rho_changed, changed_rhos, .. } = self;
            let vectorized = plan.numerics.vectorized();
            let link_prices = prices.link_prices();
            for &f in dirty_flows.iter() {
                let flow = FlowId::new(f);
                let bounds = problem.rho_bounds(flow).unwrap_or_default();
                let next = if vectorized {
                    solve_flow_rho_vectorized(
                        terms,
                        flow,
                        link_prices,
                        populations,
                        rates[f as usize],
                        bounds,
                        redundancy,
                        rhos[f as usize],
                    )
                } else {
                    solve_flow_rho(
                        terms,
                        flow,
                        link_prices,
                        populations,
                        rates[f as usize],
                        bounds,
                        redundancy,
                        rhos[f as usize],
                    )
                };
                if next.to_bits() != rhos[f as usize].to_bits() {
                    rhos[f as usize] = next;
                    mark(rho_changed, changed_rhos, f);
                }
            }
            return;
        };
        let chunk = shard_chunk(self.dirty_flows.len(), workers);
        let shards = shard_count(self.dirty_flows.len(), workers);
        let job = Job::Reliabilities(ReliabilityJob {
            problem: Arc::clone(problem),
            terms: Arc::clone(&self.terms),
            dirty: std::mem::take(&mut self.dirty_flows),
            rhos: std::mem::take(rhos),
            rates: std::mem::take(rates),
            populations: std::mem::take(populations),
            prices: std::mem::replace(prices, PriceVector::detached()),
            redundancy,
            chunk,
            numerics: plan.numerics,
        });
        let scratch = &mut self.rho_scratch;
        let (job, panic) = pool.run(job, shards, |job| {
            if let Job::Reliabilities(job) = job {
                job.run_shard(0, scratch);
            }
        });
        if let Job::Reliabilities(job) = job {
            self.dirty_flows = job.dirty;
            *rhos = job.rhos;
            *rates = job.rates;
            *populations = job.populations;
            *prices = job.prices;
        }
        if let Some(payload) = panic {
            self.rho_scratch.clear();
            pool.discard_outputs();
            std::panic::resume_unwind(payload);
        }
        let Self { rho_changed, changed_rhos, rho_scratch, .. } = self;
        let mut apply = |f: u32, next: f64| {
            if next.to_bits() != rhos[f as usize].to_bits() {
                rhos[f as usize] = next;
                mark(rho_changed, changed_rhos, f);
            }
        };
        for &(f, next) in rho_scratch.iter() {
            apply(f, next);
        }
        for w in 0..shards - 1 {
            pool.drain_rhos(w, &mut apply);
        }
        rho_scratch.clear();
    }

    /// A node's admission inputs are the rates of the flows reaching it; it
    /// is dirty iff one of them changed in this iteration's phase 1 (or a
    /// delta dirtied it externally).
    fn derive_dirty_nodes(&mut self, problem: &Problem) {
        let Self {
            node_dirty,
            dirty_nodes,
            changed_rates,
            ext_node_dirty,
            ext_dirty_nodes,
            first,
            ..
        } = self;
        clear_marks(node_dirty, dirty_nodes);
        if *first {
            for b in 0..problem.num_nodes() as u32 {
                node_dirty[b as usize] = true;
                dirty_nodes.push(b);
            }
        } else {
            for &f in changed_rates.iter() {
                for &(node, _) in problem.nodes_of_flow(FlowId::new(f)) {
                    mark(node_dirty, dirty_nodes, node.index() as u32);
                }
            }
            for &b in ext_dirty_nodes.iter() {
                mark(node_dirty, dirty_nodes, b);
            }
            dirty_nodes.sort_unstable();
        }
        clear_marks(ext_node_dirty, ext_dirty_nodes);
    }

    /// Phase 2a: re-run greedy admission (Algorithm 2) on the dirty nodes,
    /// writing each node's scratch in place and the `used`/`BC` outcomes
    /// into the dense columns. Pooled execution moves the node scratch
    /// (with the rates) into an [`AdmissionJob`]; workers lock only their
    /// own shard's [`AdmissionOrder`]s.
    fn run_dirty_admissions(
        &mut self,
        problem: &Arc<Problem>,
        config: &LrgpConfig,
        plan: &ExecutionPlan,
        pool: &PoolHandle,
        rates: &mut Vec<f64>,
    ) {
        if self.dirty_nodes.is_empty() {
            return;
        }
        let workers = plan.workers_for(self.dirty_nodes.len());
        let pooled = pool
            .get()
            .filter(|p| workers > 1 && p.dispatches())
            .map(|p| (p, workers.min(p.workers() + 1)))
            .filter(|&(_, w)| w > 1);
        let Some((pool, workers)) = pooled else {
            let Self { nodes, dirty_nodes, .. } = self;
            for &b in dirty_nodes.iter() {
                let slot = nodes.orders[b as usize]
                    .get_mut()
                    .unwrap_or_else(PoisonError::into_inner);
                let (used, bc) = allocate_consumers_into(
                    problem,
                    NodeId::new(b),
                    rates,
                    config.population_mode,
                    config.admission_policy,
                    &mut slot.order,
                    &mut slot.populations,
                );
                nodes.used[b as usize] = used;
                nodes.bc[b as usize] = bc;
            }
            return;
        };
        let chunk = shard_chunk(self.dirty_nodes.len(), workers);
        let shards = shard_count(self.dirty_nodes.len(), workers);
        let job = Job::Admissions(AdmissionJob {
            problem: Arc::clone(problem),
            dirty: std::mem::take(&mut self.dirty_nodes),
            rates: std::mem::take(rates),
            orders: std::mem::take(&mut self.nodes.orders),
            mode: config.population_mode,
            policy: config.admission_policy,
            chunk,
        });
        let out = &mut self.admission_scratch;
        let (job, panic) = pool.run(job, shards, |job| {
            if let Job::Admissions(job) = job {
                job.run_shard(0, out);
            }
        });
        if let Job::Admissions(job) = job {
            self.dirty_nodes = job.dirty;
            *rates = job.rates;
            self.nodes.orders = job.orders;
        }
        if let Some(payload) = panic {
            self.admission_scratch.clear();
            pool.discard_outputs();
            std::panic::resume_unwind(payload);
        }
        let Self { nodes, admission_scratch, .. } = self;
        let mut apply = |b: u32, used: f64, bc: f64| {
            nodes.used[b as usize] = used;
            nodes.bc[b as usize] = bc;
        };
        for &(b, used, bc) in admission_scratch.iter() {
            apply(b, used, bc);
        }
        for w in 0..shards - 1 {
            pool.drain_admissions(w, &mut apply);
        }
        admission_scratch.clear();
    }

    /// Phase 2b: publish the dirty nodes' population decisions into the
    /// global array, recording bitwise changes (each class belongs to
    /// exactly one node, so writes never collide).
    fn apply_populations(&mut self, populations: &mut [f64]) {
        let Self { dirty_nodes, nodes, pop_changed, changed_classes, .. } = self;
        for &b in dirty_nodes.iter() {
            let slot =
                nodes.orders[b as usize].get_mut().unwrap_or_else(PoisonError::into_inner);
            for &(class, n) in &slot.populations {
                let target = &mut populations[class.index()];
                if n.to_bits() != target.to_bits() {
                    *target = n;
                    mark(pop_changed, changed_classes, class.index() as u32);
                }
            }
        }
        changed_classes.sort_unstable();
    }

    /// Phase 2c: the O(1) node price update (Eq. 12) plus γ observation runs
    /// for **every** node each iteration — controller state must advance
    /// exactly as in the baseline — reading the cached admission outcome
    /// from the dense `used`/`bc` columns.
    fn update_node_prices(
        &mut self,
        problem: &Problem,
        config: &LrgpConfig,
        plan: &ExecutionPlan,
        prices: &mut PriceVector,
        gammas: &mut [GammaController],
    ) {
        if plan.numerics.vectorized() {
            // Batched Eq. 12: gather the γ and capacity columns, compute
            // every node's next price over dense slices, then run the
            // observe/publish loop. Per-element math is identical to the
            // scalar loop below, so this path stays bit-identical to it.
            let Self { nodes, vector_scratch, node_price_changed, changed_nodes, .. } = self;
            let VectorScratch { gammas: gamma_col, caps, next } = vector_scratch;
            gamma_col.clear();
            caps.clear();
            for (ctl, node) in gammas.iter().zip(problem.node_ids()) {
                gamma_col.push(ctl.gamma());
                caps.push(problem.node(node).capacity);
            }
            next.clear();
            next.resize(nodes.used.len(), 0.0);
            node_price_batch(
                config.node_price_rule,
                prices.node_prices(),
                &nodes.bc,
                &nodes.used,
                caps,
                gamma_col,
                next,
            );
            for (b, ctl) in gammas.iter_mut().enumerate() {
                let node = NodeId::new(b as u32);
                ctl.observe_price(next[b]);
                let before = prices.node(node);
                prices.set_node(node, next[b]);
                if prices.node(node).to_bits() != before.to_bits() {
                    mark(node_price_changed, changed_nodes, b as u32);
                }
            }
            return;
        }
        for (b, ctl) in gammas.iter_mut().enumerate() {
            let node = NodeId::new(b as u32);
            let gamma = ctl.gamma();
            let next = update_node_price_with_rule(
                config.node_price_rule,
                prices.node(node),
                self.nodes.bc[b],
                self.nodes.used[b],
                problem.node(node).capacity,
                gamma,
                gamma,
            );
            ctl.observe_price(next);
            let before = prices.node(node);
            prices.set_node(node, next);
            if prices.node(node).to_bits() != before.to_bits() {
                mark(&mut self.node_price_changed, &mut self.changed_nodes, b as u32);
            }
        }
    }

    /// A link's usage inputs are the rates of the flows on it; it is dirty
    /// iff one of them changed in this iteration's phase 1 (or a delta
    /// dirtied it externally).
    fn derive_dirty_links(&mut self, problem: &Problem) {
        let Self {
            link_dirty,
            dirty_links,
            changed_rates,
            changed_rhos,
            ext_link_dirty,
            ext_dirty_links,
            first,
            ..
        } = self;
        clear_marks(link_dirty, dirty_links);
        if *first {
            for l in 0..problem.num_links() as u32 {
                link_dirty[l as usize] = true;
                dirty_links.push(l);
            }
        } else {
            for &f in changed_rates.iter() {
                for &(link, _) in problem.links_of_flow(FlowId::new(f)) {
                    mark(link_dirty, dirty_links, link.index() as u32);
                }
            }
            // Under a Joint plan the usage also reads ρ; the list is
            // permanently empty otherwise.
            for &f in changed_rhos.iter() {
                for &(link, _) in problem.links_of_flow(FlowId::new(f)) {
                    mark(link_dirty, dirty_links, link.index() as u32);
                }
            }
            for &l in ext_dirty_links.iter() {
                mark(link_dirty, dirty_links, l);
            }
            dirty_links.sort_unstable();
        }
        clear_marks(ext_link_dirty, ext_dirty_links);
    }

    /// Phase 3: recompute the dirty links' usage from the term tables, then
    /// run the O(1) Eq. 13 update for every link against the cached usage.
    #[allow(clippy::too_many_arguments)]
    fn update_link_usage_and_prices(
        &mut self,
        problem: &Problem,
        config: &LrgpConfig,
        plan: &ExecutionPlan,
        rates: &[f64],
        rhos: &[f64],
        joint: bool,
        prices: &mut PriceVector,
    ) {
        if plan.numerics.vectorized() {
            // Lane-batched usage recompute (reassociated sum) for the dirty
            // links, then batched Eq. 13 over every link. The price batch's
            // per-element math is identical to the scalar loop below; any
            // drift on this path comes from the usage dot products alone.
            // Under a Joint plan the per-flow usage inflates by
            // `redundancy · loss_l · ρ_f`, computed as a second gather so
            // the Off path stays the untouched single dot product.
            let redundancy =
                problem.reliability().map(|spec| spec.redundancy).unwrap_or_default();
            for &l in &self.dirty_links {
                let link = LinkId::new(l);
                let mut usage = dot_gather(self.terms.link_usage_terms(link), rates);
                if joint {
                    let scale = redundancy * problem.link_loss(link);
                    usage += scale
                        * dot_gather3(self.terms.link_usage_terms(link), rates, rhos);
                }
                self.link_usage[l as usize] = usage;
            }
            let Self { link_usage, vector_scratch, link_price_changed, changed_links, .. } =
                self;
            let VectorScratch { caps, next, .. } = vector_scratch;
            caps.clear();
            caps.extend(problem.link_ids().map(|link| problem.link(link).capacity));
            next.clear();
            next.resize(link_usage.len(), 0.0);
            link_price_batch(prices.link_prices(), link_usage, caps, config.link_gamma, next);
            for (l, &updated) in next.iter().enumerate() {
                let link = LinkId::new(l as u32);
                let before = prices.link(link);
                prices.set_link(link, updated);
                if prices.link(link).to_bits() != before.to_bits() {
                    mark(link_price_changed, changed_links, l as u32);
                }
            }
            return;
        }
        if joint {
            // One strict left fold per dirty link with the redundancy
            // inflation folded into each term; kept on a separate branch so
            // the Off path below is byte-for-byte the pre-reliability loop.
            let redundancy =
                problem.reliability().map(|spec| spec.redundancy).unwrap_or_default();
            for &l in &self.dirty_links {
                let link = LinkId::new(l);
                let scale = redundancy * problem.link_loss(link);
                let mut usage = 0.0;
                for &(f, cost) in self.terms.link_usage_terms(link) {
                    usage += cost * rates[f as usize] * (1.0 + scale * rhos[f as usize]);
                }
                self.link_usage[l as usize] = usage;
            }
        } else {
            for &l in &self.dirty_links {
                let link = LinkId::new(l);
                // Same additions in the same `flows_on_link` order as
                // `Allocation::link_usage`, so the sum is bit-identical.
                let mut usage = 0.0;
                for &(f, cost) in self.terms.link_usage_terms(link) {
                    usage += cost * rates[f as usize];
                }
                self.link_usage[l as usize] = usage;
            }
        }
        for l in 0..problem.num_links() {
            let link = LinkId::new(l as u32);
            let next = update_link_price(
                prices.link(link),
                self.link_usage[l],
                problem.link(link).capacity,
                config.link_gamma,
            );
            let before = prices.link(link);
            prices.set_link(link, next);
            if prices.link(link).to_bits() != before.to_bits() {
                mark(&mut self.link_price_changed, &mut self.changed_links, l as u32);
            }
        }
    }
}

/// The reliability term `Σ_f mass_f · ln(ρ_f)` of the joint objective,
/// `mass_f = Σ_{j ∈ C_f} w_j · n_j` in `classes_of_flow` order (the same
/// fold order as [`crate::kernel::reliability::rho_mass`] over the term
/// table, so the step and this reporting helper agree bitwise). 0.0 when
/// the problem carries no [`lrgp_model::ReliabilitySpec`]. Since every
/// ρ is in `(0, 1]` the term is nonpositive — it measures how much utility
/// the flows concede by not insisting on perfect delivery.
pub(crate) fn reliability_utility(problem: &Problem, rhos: &[f64], populations: &[f64]) -> f64 {
    if problem.reliability().is_none() {
        return 0.0;
    }
    let mut total = 0.0;
    for flow in problem.flow_ids() {
        let mut mass = 0.0;
        for &class in problem.classes_of_flow(flow) {
            mass += problem.class(class).utility.weight() * populations[class.index()];
        }
        if mass != 0.0 {
            total += mass * rhos[flow.index()].ln();
        }
    }
    total
}

/// Total utility in exactly `Allocation::total_utility`'s order (ascending
/// class ids, zero-population classes skipped) — same additions, same bits.
fn total_utility(problem: &Problem, rates: &[f64], populations: &[f64]) -> f64 {
    let mut total = 0.0;
    for class in problem.class_ids() {
        let spec = problem.class(class);
        let n = populations[class.index()];
        if n > 0.0 {
            total += n * spec.utility.value(rates[spec.flow.index()]);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use crate::engine::{Engine, LrgpConfig};
    use crate::plan::{IncrementalMode, Parallelism};
    use lrgp_model::workloads::base_workload;
    use lrgp_model::{FlowId, ProblemDelta};

    fn incremental_config() -> LrgpConfig {
        LrgpConfig { incremental: IncrementalMode::On, ..LrgpConfig::default() }
    }

    #[test]
    fn incremental_matches_baseline_on_base_workload() {
        let problem = base_workload();
        let mut baseline = Engine::new(problem.clone(), LrgpConfig::default());
        let mut incremental = Engine::new(problem, incremental_config());
        for k in 0..200 {
            let a = baseline.step();
            let b = incremental.step();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at iteration {k}");
        }
        assert_eq!(baseline.allocation(), incremental.allocation());
        assert_eq!(baseline.prices(), incremental.prices());
    }

    #[test]
    fn incremental_threads_match_baseline() {
        let problem = base_workload();
        let mut baseline = Engine::new(problem.clone(), LrgpConfig::default());
        let config = LrgpConfig {
            parallelism: Parallelism::Threads(3),
            ..incremental_config()
        };
        let mut incremental = Engine::new(problem, config);
        incremental.force_pool_dispatch(true);
        for k in 0..120 {
            let a = baseline.step();
            let b = incremental.step();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at iteration {k}");
        }
    }

    #[test]
    fn dirty_sets_shrink_as_the_system_settles() {
        // The base workload settles into a small limit cycle (adaptive γ
        // keeps a couple of consumer-node prices moving by tiny steps), so
        // the dirty sets never fully drain — but they must shrink to the
        // churning core: the 6 source nodes carry no load, so their prices
        // pin at 0.0 bitwise and drop out, and at least some flows' rates
        // stop changing.
        let mut engine = Engine::new(base_workload(), incremental_config());
        engine.run(400);
        let problem_nodes = engine.problem().num_nodes();
        let problem_flows = engine.problem().num_flows();
        let state = engine.step_state().expect("state built after stepping");
        let (changed_rates, changed_nodes, changed_links) = state.changed_counts();
        assert!(
            changed_nodes <= 3,
            "only the 3 consumer nodes may keep changing, got {:?}",
            state.changed_node_ids()
        );
        assert!(changed_nodes < problem_nodes);
        assert!(changed_rates < problem_flows, "some rates must have pinned down");
        assert_eq!(changed_links, 0, "base workload has no links");
    }

    #[test]
    fn flow_removal_invalidates_and_stays_identical() {
        let problem = base_workload();
        let mut baseline = Engine::new(problem.clone(), LrgpConfig::default());
        let mut incremental = Engine::new(problem, incremental_config());
        for _ in 0..80 {
            baseline.step();
            incremental.step();
        }
        let removal = ProblemDelta::new().remove_flow(FlowId::new(5));
        baseline.apply_delta(&removal).unwrap();
        incremental.apply_delta(&removal).unwrap();
        for k in 0..120 {
            let a = baseline.step();
            let b = incremental.step();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at post-removal iteration {k}");
        }
        assert_eq!(baseline.allocation(), incremental.allocation());
    }

    #[test]
    fn pooled_worker_panic_resumes_on_caller_and_pool_stays_usable() {
        // The regression fixture for panic propagation: arm the injection
        // hook so a pooled rate kernel panics, assert the unwind reaches
        // the caller with the original payload, then assert the very same
        // engine (and its pool) steps normally afterwards — and still
        // matches a clean reference bitwise.
        let config = LrgpConfig {
            parallelism: Parallelism::Threads(3),
            ..LrgpConfig::default()
        };
        let mut engine = Engine::new(base_workload(), config);
        engine.force_pool_dispatch(true);
        let mut reference = Engine::new(base_workload(), LrgpConfig::default());
        for _ in 0..5 {
            engine.step();
            reference.step();
        }
        engine.arm_rate_panic(Some(0));
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.step()));
        let payload = boom.expect_err("injected panic must unwind out of step()");
        let message = payload.downcast_ref::<String>().expect("payload preserved");
        assert!(message.contains("injected rate-kernel panic"), "{message}");
        // The engine's buffers were restored, the pool is reusable, and the
        // interrupted step left no partial results behind: disarm and
        // continue in lockstep with the reference (which never panicked and
        // never ran the interrupted iteration's writes).
        engine.arm_rate_panic(None);
        for k in 0..40 {
            let a = reference.step();
            let b = engine.step();
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at post-panic iteration {k}");
        }
    }
}
