//! Enactment policies (§2.1).
//!
//! LRGP iterates continuously, but "making very frequent admission control
//! decisions may be disruptive to consumers using the system, so the
//! decisions may not be *enacted* until their values are sufficiently
//! different from the previous enacted values, or may be enacted
//! periodically". An [`Enactor`] sits between the optimizer and the data
//! plane and decides when a computed allocation actually takes effect.

use lrgp_model::Allocation;
use serde::{Deserialize, Serialize};

/// When to push a newly computed allocation to the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnactmentPolicy {
    /// Enact after every iteration (pure simulation; maximally disruptive).
    EveryIteration,
    /// Enact every `period` iterations ("say once every few minutes").
    Periodic {
        /// Number of iterations between enactments (≥ 1).
        period: usize,
    },
    /// Enact only when the allocation differs sufficiently from the last
    /// enacted one: some rate changed by more than `rate_threshold`
    /// (relative) or some population changed by at least
    /// `population_threshold` consumers.
    OnSignificantChange {
        /// Relative rate-change trigger (e.g. 0.05 = 5 %).
        rate_threshold: f64,
        /// Absolute population-change trigger, in consumers.
        population_threshold: f64,
    },
}

/// Tracks the last enacted allocation and applies an [`EnactmentPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct Enactor {
    policy: EnactmentPolicy,
    enacted: Option<Allocation>,
    iterations_since_enactment: usize,
    enactment_count: usize,
}

impl Enactor {
    /// Creates an enactor with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if a periodic policy has period 0 or thresholds are negative.
    pub fn new(policy: EnactmentPolicy) -> Self {
        match policy {
            EnactmentPolicy::Periodic { period } => {
                assert!(period >= 1, "enactment period must be at least 1")
            }
            EnactmentPolicy::OnSignificantChange { rate_threshold, population_threshold } => {
                assert!(
                    rate_threshold >= 0.0 && population_threshold >= 0.0,
                    "enactment thresholds must be nonnegative"
                );
            }
            EnactmentPolicy::EveryIteration => {}
        }
        Self { policy, enacted: None, iterations_since_enactment: 0, enactment_count: 0 }
    }

    /// Offers the allocation computed this iteration. Returns `true` if it
    /// was enacted (and is now visible via [`Enactor::enacted`]).
    ///
    /// The very first offer is always enacted — there is nothing previous to
    /// keep serving.
    pub fn offer(&mut self, allocation: &Allocation) -> bool {
        self.iterations_since_enactment += 1;
        let should = match (&self.enacted, self.policy) {
            (None, _) => true,
            (Some(_), EnactmentPolicy::EveryIteration) => true,
            (Some(_), EnactmentPolicy::Periodic { period }) => {
                self.iterations_since_enactment >= period
            }
            (
                Some(prev),
                EnactmentPolicy::OnSignificantChange { rate_threshold, population_threshold },
            ) => Self::significantly_different(
                prev,
                allocation,
                rate_threshold,
                population_threshold,
            ),
        };
        if should {
            self.enacted = Some(allocation.clone());
            self.iterations_since_enactment = 0;
            self.enactment_count += 1;
        }
        should
    }

    /// The currently enacted allocation, if any offer has been accepted.
    pub fn enacted(&self) -> Option<&Allocation> {
        self.enacted.as_ref()
    }

    /// Number of enactments so far.
    pub fn enactment_count(&self) -> usize {
        self.enactment_count
    }

    fn significantly_different(
        prev: &Allocation,
        next: &Allocation,
        rate_threshold: f64,
        population_threshold: f64,
    ) -> bool {
        let rate_change = prev
            .rates()
            .iter()
            .zip(next.rates())
            .any(|(&a, &b)| (b - a).abs() > rate_threshold * a.abs().max(1.0));
        if rate_change {
            return true;
        }
        prev.populations()
            .iter()
            .zip(next.populations())
            .any(|(&a, &b)| (b - a).abs() >= population_threshold.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::{workloads, FlowId};

    fn alloc() -> (lrgp_model::Problem, Allocation) {
        let p = workloads::base_workload();
        let a = Allocation::lower_bounds(&p);
        (p, a)
    }

    #[test]
    fn first_offer_always_enacts() {
        for policy in [
            EnactmentPolicy::EveryIteration,
            EnactmentPolicy::Periodic { period: 100 },
            EnactmentPolicy::OnSignificantChange { rate_threshold: 1.0, population_threshold: 1e9 },
        ] {
            let (_, a) = alloc();
            let mut e = Enactor::new(policy);
            assert!(e.enacted().is_none());
            assert!(e.offer(&a));
            assert_eq!(e.enactment_count(), 1);
            assert_eq!(e.enacted(), Some(&a));
        }
    }

    #[test]
    fn every_iteration_enacts_each_time() {
        let (_, a) = alloc();
        let mut e = Enactor::new(EnactmentPolicy::EveryIteration);
        for _ in 0..5 {
            assert!(e.offer(&a));
        }
        assert_eq!(e.enactment_count(), 5);
    }

    #[test]
    fn periodic_enacts_on_schedule() {
        let (_, a) = alloc();
        let mut e = Enactor::new(EnactmentPolicy::Periodic { period: 3 });
        assert!(e.offer(&a)); // first
        assert!(!e.offer(&a));
        assert!(!e.offer(&a));
        assert!(e.offer(&a)); // 3 iterations after the last enactment
        assert_eq!(e.enactment_count(), 2);
    }

    #[test]
    fn significant_change_triggers_on_rates() {
        let (_, a) = alloc();
        let mut e = Enactor::new(EnactmentPolicy::OnSignificantChange {
            rate_threshold: 0.10,
            population_threshold: 1.0,
        });
        e.offer(&a);
        let mut b = a.clone();
        b.set_rate(FlowId::new(0), a.rate(FlowId::new(0)) * 1.05); // 5 % < 10 %
        assert!(!e.offer(&b));
        b.set_rate(FlowId::new(0), a.rate(FlowId::new(0)) * 1.2); // 20 % > 10 %
        assert!(e.offer(&b));
    }

    #[test]
    fn significant_change_triggers_on_populations() {
        let (_, a) = alloc();
        let mut e = Enactor::new(EnactmentPolicy::OnSignificantChange {
            rate_threshold: 10.0,
            population_threshold: 5.0,
        });
        e.offer(&a);
        let mut b = a.clone();
        b.set_population(lrgp_model::ClassId::new(0), 3.0); // < 5 consumers
        assert!(!e.offer(&b));
        b.set_population(lrgp_model::ClassId::new(0), 6.0); // ≥ 5 consumers
        assert!(e.offer(&b));
    }

    #[test]
    fn enacted_allocation_is_the_last_accepted_one() {
        let (_, a) = alloc();
        let mut e = Enactor::new(EnactmentPolicy::Periodic { period: 2 });
        e.offer(&a);
        let mut b = a.clone();
        b.set_rate(FlowId::new(1), 77.0);
        assert!(!e.offer(&b)); // rejected; enacted stays `a`
        assert_eq!(e.enacted(), Some(&a));
        assert!(e.offer(&b));
        assert_eq!(e.enacted(), Some(&b));
    }

    #[test]
    #[should_panic(expected = "period must be at least 1")]
    fn rejects_zero_period() {
        let _ = Enactor::new(EnactmentPolicy::Periodic { period: 0 });
    }
}
