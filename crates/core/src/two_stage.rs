//! The two-stage approximation of §2.4.
//!
//! The resource model assumes a flow is routed to *every* node hosting one
//! of its classes, even if admission later leaves all those classes empty —
//! the flow still pays `F_{b,i} r_i` there. The paper proposes solving in
//! two stages: (1) optimize with full routing, (2) prune the (flow, node)
//! branches whose classes ended up empty — "setting certain coefficients
//! `L_{l,i}`, `F_{b,i}` to 0" — and re-solve on the slimmer problem. Stage
//! two can only free resources, so its utility is at least stage one's (up
//! to heuristic noise).

use crate::engine::{Engine, LrgpConfig, RunOutcome};
use lrgp_model::{Allocation, Problem, ProblemDelta};
use serde::{Deserialize, Serialize};

/// The result of both stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageOutcome {
    /// Stage-one convergence report.
    pub stage1: RunOutcome,
    /// Stage-one allocation (basis for pruning).
    pub stage1_allocation: Allocation,
    /// Number of (flow, node) branches pruned.
    pub pruned_branches: usize,
    /// Stage-two convergence report, on the pruned problem.
    pub stage2: RunOutcome,
    /// Stage-two allocation.
    pub stage2_allocation: Allocation,
}

impl TwoStageOutcome {
    /// Relative utility gain of stage two over stage one.
    pub fn relative_gain(&self) -> f64 {
        if self.stage1.utility == 0.0 {
            return 0.0;
        }
        (self.stage2.utility - self.stage1.utility) / self.stage1.utility
    }
}

/// Builds the stage-two pruning delta: one zero-cost op per (flow, node)
/// branch that carries a positive `F` cost but admitted no consumers in
/// stage one (the flow's source always carries it). Applying the delta is
/// bit-identical to [`Problem::prune_unused_paths`] on the same
/// populations, and its length is the pruned-branch count.
fn pruning_delta(problem: &Problem, populations: &[f64]) -> ProblemDelta {
    let mut delta = ProblemDelta::new();
    for flow in problem.flow_ids() {
        let source = problem.flow(flow).source;
        for &(node, cost) in problem.nodes_of_flow(flow) {
            if node == source || cost == 0.0 {
                continue;
            }
            let any_live = problem
                .classes_of_flow(flow)
                .iter()
                .any(|&c| problem.class(c).node == node && populations[c.index()] > 0.0);
            if !any_live {
                delta = delta.set_flow_node_cost(flow, node, 0.0);
            }
        }
    }
    delta
}

/// Runs the two-stage solve: converge, prune empty branches, re-converge.
///
/// The pruning is expressed as a [`ProblemDelta`] of zero-cost ops (see
/// [`pruning_delta`]). Each stage gets its own fresh engine (prices
/// restart; the pruned problem has a different cost structure, so stale
/// prices would mislead more than help).
pub fn two_stage_solve(
    problem: &Problem,
    config: LrgpConfig,
    max_iterations: usize,
) -> TwoStageOutcome {
    let mut stage1_engine = Engine::new(problem.clone(), config);
    let stage1 = stage1_engine.run_until_converged(max_iterations);
    let stage1_allocation = stage1_engine.allocation();

    let delta = pruning_delta(problem, stage1_allocation.populations());
    let pruned_branches = delta.len();
    let pruned = match delta.apply(problem) {
        Ok(p) => p,
        // Unreachable — every op targets an existing cost entry with a
        // valid cost — but fall back to the equivalent transform rather
        // than panic in library code.
        Err(_) => problem.prune_unused_paths(stage1_allocation.populations()),
    };

    let mut stage2_engine = Engine::new(pruned, config);
    let stage2 = stage2_engine.run_until_converged(max_iterations);
    let stage2_allocation = stage2_engine.allocation();

    TwoStageOutcome { stage1, stage1_allocation, pruned_branches, stage2, stage2_allocation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};

    #[test]
    fn two_stage_on_base_workload_never_hurts_much() {
        let out = two_stage_solve(&base_workload(), LrgpConfig::default(), 400);
        assert!(out.stage1.utility > 0.0);
        // Pruning frees only F-costs, so the gain is small but the result
        // must not regress beyond heuristic noise.
        assert!(
            out.stage2.utility >= out.stage1.utility * 0.995,
            "stage2 {} vs stage1 {}",
            out.stage2.utility,
            out.stage1.utility
        );
    }

    #[test]
    fn pruning_pays_off_when_dead_branches_are_expensive() {
        // Flow 0 reaches a node where its only class is worthless (rank ~0)
        // but the F-cost there is huge relative to capacity; flow 1's
        // valuable class shares that node. Stage 1 wastes the node's budget
        // carrying flow 0; stage 2 prunes it.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_node(1e12);
        let s1 = b.add_node(1e12);
        let shared = b.add_node(50_000.0);
        let other = b.add_node(1e12);
        let f0 = b.add_flow(s0, RateBounds::new(10.0, 1000.0).unwrap());
        let f1 = b.add_flow(s1, RateBounds::new(10.0, 1000.0).unwrap());
        // Flow 0: real consumers elsewhere, a dead expensive branch at
        // `shared`.
        b.set_node_cost(f0, other, 1.0);
        b.add_class(f0, other, 100, Utility::log(50.0), 5.0);
        b.set_node_cost(f0, shared, 40.0); // expensive pass-through
        b.add_class(f0, shared, 10, Utility::log(0.001), 45.0); // worthless
        // Flow 1: valuable consumers at the shared node.
        b.set_node_cost(f1, shared, 1.0);
        b.add_class(f1, shared, 200, Utility::log(80.0), 4.0);
        let p = b.build().unwrap();

        let out = two_stage_solve(&p, LrgpConfig::default(), 2_000);
        assert!(out.pruned_branches >= 1, "expected the dead branch pruned");
        assert!(
            out.stage2.utility >= out.stage1.utility,
            "stage2 {} vs stage1 {}",
            out.stage2.utility,
            out.stage1.utility
        );
        assert!(out.relative_gain() >= 0.0);
    }

    #[test]
    fn pruning_delta_counts_only_costly_dead_branches() {
        let p = base_workload();
        // Zero populations everywhere → every non-source branch pruned.
        let delta = pruning_delta(&p, &vec![0.0; p.num_classes()]);
        // 6 flows × 2 c-nodes each.
        assert_eq!(delta.len(), 12);
        // Applying the delta matches the wholesale transform bitwise.
        let via_delta = delta.apply(&p).unwrap();
        let via_transform = p.prune_unused_paths(&vec![0.0; p.num_classes()]);
        assert_eq!(via_delta, via_transform);
        // Re-pruning the already-pruned problem finds nothing.
        assert!(pruning_delta(&via_delta, &vec![0.0; p.num_classes()]).is_empty());
    }

    #[test]
    fn delta_pruning_reproduces_the_legacy_outcome_bitwise() {
        // Regression pin: stage two built from the pruning delta must be
        // indistinguishable from the original construction (stage-one
        // engine, `prune_unused_paths`, fresh stage-two engine).
        let p = base_workload();
        let config = LrgpConfig::default();
        let out = two_stage_solve(&p, config, 400);

        let mut s1 = Engine::new(p.clone(), config);
        let stage1 = s1.run_until_converged(400);
        let alloc = s1.allocation();
        let pruned = p.prune_unused_paths(alloc.populations());
        let mut s2 = Engine::new(pruned, config);
        let stage2 = s2.run_until_converged(400);

        assert_eq!(out.stage1, stage1);
        assert_eq!(out.stage1_allocation, alloc);
        assert_eq!(out.stage2.utility.to_bits(), stage2.utility.to_bits());
        assert_eq!(out.stage2, stage2);
        assert_eq!(out.stage2_allocation, s2.allocation());
    }
}
