//! The two-stage approximation of §2.4.
//!
//! The resource model assumes a flow is routed to *every* node hosting one
//! of its classes, even if admission later leaves all those classes empty —
//! the flow still pays `F_{b,i} r_i` there. The paper proposes solving in
//! two stages: (1) optimize with full routing, (2) prune the (flow, node)
//! branches whose classes ended up empty — "setting certain coefficients
//! `L_{l,i}`, `F_{b,i}` to 0" — and re-solve on the slimmer problem. Stage
//! two can only free resources, so its utility is at least stage one's (up
//! to heuristic noise).

use crate::engine::{LrgpConfig, LrgpEngine, RunOutcome};
use lrgp_model::{Allocation, Problem};
use serde::{Deserialize, Serialize};

/// The result of both stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageOutcome {
    /// Stage-one convergence report.
    pub stage1: RunOutcome,
    /// Stage-one allocation (basis for pruning).
    pub stage1_allocation: Allocation,
    /// Number of (flow, node) branches pruned.
    pub pruned_branches: usize,
    /// Stage-two convergence report, on the pruned problem.
    pub stage2: RunOutcome,
    /// Stage-two allocation.
    pub stage2_allocation: Allocation,
}

impl TwoStageOutcome {
    /// Relative utility gain of stage two over stage one.
    pub fn relative_gain(&self) -> f64 {
        if self.stage1.utility == 0.0 {
            return 0.0;
        }
        (self.stage2.utility - self.stage1.utility) / self.stage1.utility
    }
}

/// Counts the (flow, node) pairs carrying a positive `F` cost in `a` but
/// not in `b` — the branches pruning removed.
fn count_pruned(a: &Problem, b: &Problem) -> usize {
    let mut count = 0;
    for flow in a.flow_ids() {
        for &(node, cost) in a.nodes_of_flow(flow) {
            if cost > 0.0 && b.flow_node_cost(node, flow) == 0.0 {
                count += 1;
            }
        }
    }
    count
}

/// Runs the two-stage solve: converge, prune empty branches, re-converge.
///
/// Each stage gets its own fresh engine (prices restart; the pruned problem
/// has a different cost structure, so stale prices would mislead more than
/// help).
pub fn two_stage_solve(
    problem: &Problem,
    config: LrgpConfig,
    max_iterations: usize,
) -> TwoStageOutcome {
    let mut stage1_engine = LrgpEngine::new(problem.clone(), config);
    let stage1 = stage1_engine.run_until_converged(max_iterations);
    let stage1_allocation = stage1_engine.allocation();

    let pruned = problem.prune_unused_paths(stage1_allocation.populations());
    let pruned_branches = count_pruned(problem, &pruned);

    let mut stage2_engine = LrgpEngine::new(pruned.clone(), config);
    let stage2 = stage2_engine.run_until_converged(max_iterations);
    let stage2_allocation = stage2_engine.allocation();

    TwoStageOutcome { stage1, stage1_allocation, pruned_branches, stage2, stage2_allocation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};

    #[test]
    fn two_stage_on_base_workload_never_hurts_much() {
        let out = two_stage_solve(&base_workload(), LrgpConfig::default(), 400);
        assert!(out.stage1.utility > 0.0);
        // Pruning frees only F-costs, so the gain is small but the result
        // must not regress beyond heuristic noise.
        assert!(
            out.stage2.utility >= out.stage1.utility * 0.995,
            "stage2 {} vs stage1 {}",
            out.stage2.utility,
            out.stage1.utility
        );
    }

    #[test]
    fn pruning_pays_off_when_dead_branches_are_expensive() {
        // Flow 0 reaches a node where its only class is worthless (rank ~0)
        // but the F-cost there is huge relative to capacity; flow 1's
        // valuable class shares that node. Stage 1 wastes the node's budget
        // carrying flow 0; stage 2 prunes it.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_node(1e12);
        let s1 = b.add_node(1e12);
        let shared = b.add_node(50_000.0);
        let other = b.add_node(1e12);
        let f0 = b.add_flow(s0, RateBounds::new(10.0, 1000.0).unwrap());
        let f1 = b.add_flow(s1, RateBounds::new(10.0, 1000.0).unwrap());
        // Flow 0: real consumers elsewhere, a dead expensive branch at
        // `shared`.
        b.set_node_cost(f0, other, 1.0);
        b.add_class(f0, other, 100, Utility::log(50.0), 5.0);
        b.set_node_cost(f0, shared, 40.0); // expensive pass-through
        b.add_class(f0, shared, 10, Utility::log(0.001), 45.0); // worthless
        // Flow 1: valuable consumers at the shared node.
        b.set_node_cost(f1, shared, 1.0);
        b.add_class(f1, shared, 200, Utility::log(80.0), 4.0);
        let p = b.build().unwrap();

        let out = two_stage_solve(&p, LrgpConfig::default(), 2_000);
        assert!(out.pruned_branches >= 1, "expected the dead branch pruned");
        assert!(
            out.stage2.utility >= out.stage1.utility,
            "stage2 {} vs stage1 {}",
            out.stage2.utility,
            out.stage1.utility
        );
        assert!(out.relative_gain() >= 0.0);
    }

    #[test]
    fn count_pruned_counts_only_zeroed_branches() {
        let p = base_workload();
        let same = count_pruned(&p, &p);
        assert_eq!(same, 0);
        // Zero populations everywhere → every non-source branch pruned.
        let pruned = p.prune_unused_paths(&vec![0.0; p.num_classes()]);
        let n = count_pruned(&p, &pruned);
        // 6 flows × 2 c-nodes each.
        assert_eq!(n, 12);
    }
}
