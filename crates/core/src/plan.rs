//! Execution planning: how a step runs, separated from what it computes.
//!
//! The kernel layer ([`crate::kernel`]) defines *what* one LRGP iteration
//! computes. This module defines *how* the engine executes it: an
//! [`ExecutionPlan`] is the product of four independent axes —
//!
//! * [`Parallelism`] — whether each phase shards its work over the engine's
//!   persistent worker pool ([`crate::pool`]), and over how many workers;
//! * [`IncrementalMode`] — whether the step recomputes everything or only
//!   the dirty subset tracked by [`crate::exec::StepState`];
//! * [`Numerics`] — whether the per-element kernels run the scalar
//!   reference code or the lane-batched variants in
//!   [`crate::kernel::vector`];
//! * [`Reliability`] — whether the step also solves each flow's
//!   delivery-reliability variable ρ against the link prices
//!   ([`crate::kernel::reliability`]) or runs the classic rate-only
//!   pipeline.
//!
//! The first two axes preserve bit-identical results, so within
//! [`Numerics::Strict`] a plan is purely a performance choice: every
//! parallelism × incrementality combination produces the same
//! `f64::to_bits` trace as the sequential full-recompute reference
//! (enforced by `tests/differential.rs`). [`Numerics::Vectorized`]
//! deliberately reassociates floating-point sums and replaces bisection
//! with closed forms where possible, so it trades the bitwise guarantee
//! for a bounded one: total utility at convergence stays within `1e-12`
//! relative drift of the Strict trace (also enforced by the differential
//! harness). [`Reliability`] is the one axis that changes *what* is
//! optimized rather than how fast: [`Reliability::Off`] (the default)
//! takes the classic rate-only code path byte for byte, while
//! [`Reliability::Joint`] adds the ρ phase — within `Joint`, all
//! parallelism × incrementality plans are still bit-identical to each
//! other.
//!
//! # Determinism guarantee
//!
//! One LRGP iteration is embarrassingly parallel *within* each of its three
//! phases: rate allocation is independent per flow source (Algorithm 1),
//! greedy admission and the node price update are independent per node
//! (Algorithm 2 + Eq. 12; every class is attached to exactly one node, so
//! population writes never conflict), and the link price update is
//! independent per link (Eq. 13). The executor shards each phase over the
//! pool's parked workers in contiguous id-order chunks
//! ([`crate::pool::shard_spans`]) and applies the per-element results in
//! shard order. The parallel trace is **bit-identical** to the sequential
//! trace, regardless of worker count or scheduling, by construction rather
//! than by tolerance:
//!
//! * every per-element kernel ([`crate::kernel::rate::solve_rate`],
//!   [`crate::kernel::admission::allocate_consumers`],
//!   [`crate::kernel::price::update_node_price_with_rule`],
//!   [`crate::kernel::price::update_link_price`]) is a pure function of the
//!   *previous* iteration's published state, so workers read frozen inputs;
//! * elements are partitioned by id, writes target disjoint slots, and the
//!   shard results are reduced back in id order;
//! * every floating-point *summation* (per-flow aggregate prices, per-link
//!   usage, total utility) runs inside one kernel in the same element order
//!   as the sequential reference — the sharding never reassociates a sum.
//!
//! # The Auto cost model
//!
//! [`Parallelism::Auto`] resolves its worker count per phase through an
//! [`AutoModel`]: a tiny analytic cost model calibrated **once at engine
//! construction** from the problem's dimensions (average classes per flow
//! sets the per-unit kernel cost; [`std::thread::available_parallelism`]
//! caps the worker count). For a phase of `units` dirty elements the model
//! picks the largest worker count whose wake/sync overhead is still covered
//! by the kernel work it takes off the calling thread — and stays
//! sequential below the crossover. The model is deterministic (pure integer
//! arithmetic, no clocks) and monotone (more units never picks fewer
//! workers), properties pinned by tests.
//!
//! # Composition of the axes
//!
//! The executor shards the *dirty* element lists instead of the full id
//! ranges, resolving its worker count with [`ExecutionPlan::workers_for`]
//! on the dirty count — a step with ten dirty flows stays sequential under
//! [`Parallelism::Auto`] even on a thousand-flow problem. A
//! non-incremental plan simply marks everything dirty before each step
//! (recomputing a bitwise-unchanged input yields the bitwise-same output,
//! so full recompute is the `all-dirty` special case of the same executor).

use crate::engine::LrgpConfig;
use crate::exec::StepState;
use crate::gamma::GammaController;
use crate::kernel::price::PriceVector;
use crate::pool::PoolHandle;
use lrgp_model::Problem;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Worker-count ceiling for [`Parallelism::Auto`] (sync cost grows linearly
/// with participating workers while per-step work is fixed).
const AUTO_MAX_WORKERS: usize = 8;

/// How the engine executes the three phases of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single-threaded reference execution (the default).
    #[default]
    Sequential,
    /// Shard each phase over exactly this many execution contexts — the
    /// calling thread plus `n − 1` pooled workers (values are clamped to at
    /// least 1 and at most one context per element).
    Threads(usize),
    /// Pick a worker count per phase from the engine's calibrated
    /// [`AutoModel`], staying sequential when the dirty set is too small to
    /// amortize the pool wake-up.
    Auto,
}

impl Parallelism {
    /// Resolves the worker count for a phase of `units` independent
    /// elements, using the *default* (uncalibrated) Auto model. A result of
    /// 1 means the sequential path. Prefer [`ExecutionPlan::workers_for`],
    /// which consults the engine's calibrated model.
    pub fn workers_for(self, units: usize) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, units.max(1)),
            Parallelism::Auto => AutoModel::default().workers_for(units),
        }
    }
}

/// The analytic cost model behind [`Parallelism::Auto`].
///
/// All costs are unitless integers on a common scale (think "nanoseconds,
/// roughly"): what matters is their ratios, which decide the
/// sequential/parallel crossover. The model is calibrated once per engine
/// from the problem's dimensions ([`AutoModel::calibrated_for`]) — never
/// from wall-clock measurements, which would make plans nondeterministic.
///
/// For `units` dirty elements sharded over `w` contexts, dispatching is
/// worth it when the work taken off the calling thread exceeds the
/// overhead of waking and syncing the pool:
///
/// ```text
/// (units − ceil(units / w)) · unit_cost ≥ dispatch_cost + per_worker_cost · (w − 1)
/// ```
///
/// [`AutoModel::workers_for`] picks the largest `w ≤ max_workers`
/// satisfying this, or 1 when none does. Because the left side is
/// non-decreasing in `units` for every fixed `w`, the chosen worker count
/// is monotone in `units`; because everything is integer arithmetic on
/// fixed fields, it is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutoModel {
    /// Cost of one unit of phase work (one dirty flow's rate solve, one
    /// dirty node's re-admission).
    pub unit_cost: u64,
    /// Fixed cost of waking the pool for one phase (condvar broadcast +
    /// caller's final wait).
    pub dispatch_cost: u64,
    /// Marginal sync cost per participating worker beyond the caller.
    pub per_worker_cost: u64,
    /// Hard ceiling on the total execution contexts (caller + workers).
    pub max_workers: u32,
}

impl Default for AutoModel {
    fn default() -> Self {
        // Uncalibrated fallback: a mid-weight kernel on a pool sized to the
        // Auto ceiling. `calibrated_for` replaces this at engine
        // construction.
        Self {
            unit_cost: 150,
            dispatch_cost: 12_000,
            per_worker_cost: 4_000,
            max_workers: AUTO_MAX_WORKERS as u32,
        }
    }
}

impl AutoModel {
    /// Calibrates the model for `problem` from its dimensions alone: the
    /// per-unit kernel cost scales with the average class count per flow
    /// (both the rate solve's term refill and the admission sort are linear
    /// in it), and the worker ceiling is capped by the host's hardware
    /// parallelism, resolved once here so repeated derivations agree.
    pub fn calibrated_for(problem: &Problem) -> Self {
        let flows = (problem.num_flows() as u64).max(1);
        let classes_per_flow = (problem.num_classes() as u64).div_ceil(flows).max(1);
        let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            // ~40 for the bounds/price plumbing plus ~25 per class term.
            unit_cost: 40 + 25 * classes_per_flow,
            max_workers: (AUTO_MAX_WORKERS as u32).min(hardware as u32).max(1),
            ..Self::default()
        }
    }

    /// The largest context count (caller + workers) whose pool overhead the
    /// saved kernel work still covers, for a phase of `units` elements;
    /// 1 means stay sequential. Deterministic and monotone in `units` (see
    /// the type docs).
    pub fn workers_for(&self, units: usize) -> usize {
        let ceiling = (self.max_workers as usize).max(1).min(units.max(1));
        let mut best = 1;
        for w in 2..=ceiling {
            let saved = (units - units.div_ceil(w)) as u64 * self.unit_cost;
            let overhead = self.dispatch_cost + self.per_worker_cost * (w as u64 - 1);
            if saved >= overhead {
                best = w;
            }
        }
        best
    }

    /// The smallest unit count at which [`Self::workers_for`] first leaves
    /// the sequential path (`None` if no count up to `limit` does): the
    /// calibrated crossover, exposed for tests and diagnostics.
    pub fn crossover(&self, limit: usize) -> Option<usize> {
        (2..=limit).find(|&units| self.workers_for(units) > 1)
    }
}

/// Which numeric kernel implementations the executor dispatches to.
///
/// [`Numerics::Strict`] is the default and keeps the engine's original
/// guarantee: every plan produces the same `f64::to_bits` trace as the
/// sequential reference. [`Numerics::Vectorized`] opts into the
/// lane-batched kernels in [`crate::kernel::vector`]: price aggregation
/// over the CSR term table runs in fixed-width unrolled chunks with
/// independent partial accumulators (reassociating the sums), and the
/// per-flow rate solve dispatches on the flow's pre-classified utility
/// cohort — closed forms for all-log and uniform-power flows, a
/// shape-grouped derivative for the generic bisection residue. The
/// results differ from Strict only in low-order bits; the differential
/// harness bounds the drift at `< 1e-12` relative total utility at
/// convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Numerics {
    /// Bitwise-reproducible scalar kernels (the default).
    #[default]
    Strict,
    /// Lane-batched kernels with bounded (non-bitwise) drift.
    Vectorized,
}

impl Numerics {
    /// `true` when the plan dispatches to the lane-batched kernels.
    pub fn vectorized(self) -> bool {
        matches!(self, Numerics::Vectorized)
    }
}

/// Whether the step solves the per-flow delivery-reliability variable
/// jointly with the rate.
///
/// [`Reliability::Off`] is the default and leaves the engine's trace
/// bitwise-identical to the pre-reliability pipeline — the ρ phase is
/// skipped entirely, link usage is the plain `Σ cost · r` fold, and total
/// utility carries no reliability term (enforced by the differential
/// harness). [`Reliability::Joint`] activates the
/// [`crate::kernel::reliability`] best-response for problems that carry a
/// [`lrgp_model::ReliabilitySpec`]: each step re-solves dirty flows' ρ
/// against the current link prices, link usage inflates by
/// `redundancy · loss_l · ρ_f` per unit of rate, and total utility gains
/// `Σ_f mass_f · ln(ρ_f)`. On problems without a spec, `Joint` degrades to
/// `Off` (there is nothing to solve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Reliability {
    /// Rate-only allocation; ρ is fixed and free (the default).
    #[default]
    Off,
    /// Joint rate–reliability allocation by alternating best-response.
    Joint,
}

impl Reliability {
    /// `true` when the plan solves ρ jointly with the rate.
    pub fn joint(self) -> bool {
        matches!(self, Reliability::Joint)
    }
}

/// Whether the step recomputes everything or only the dirty subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IncrementalMode {
    /// Recompute everything each step (the reference behaviour; the
    /// executor marks all elements dirty before stepping).
    #[default]
    Off,
    /// Track dirty sets across steps and recompute only what changed.
    On,
    /// Let the engine decide. Currently resolves to [`IncrementalMode::On`]:
    /// the incremental step is bit-identical and its bookkeeping overhead is
    /// linear with small constants, so it pays for itself on every workload
    /// once iterations settle. The variant exists so deployments can pin the
    /// choice explicitly while the heuristic is free to evolve.
    Auto,
}

impl IncrementalMode {
    /// `true` when dirty sets are carried across steps.
    pub fn enabled(self) -> bool {
        !matches!(self, IncrementalMode::Off)
    }
}

/// The resolved execution strategy of an engine: one choice per axis, plus
/// the calibrated [`AutoModel`].
///
/// Derived from [`LrgpConfig`] at construction via
/// [`ExecutionPlan::from_config`] (the engine then calibrates `auto` for
/// its problem); the engine consults it on every step. Plans affect
/// wall-clock time only — never results (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// How each phase shards its work over the pool.
    pub parallelism: Parallelism,
    /// Whether dirty sets persist across steps.
    pub incrementality: IncrementalMode,
    /// The Auto crossover model (only consulted under
    /// [`Parallelism::Auto`]).
    #[serde(default)]
    pub auto: AutoModel,
    /// Which numeric kernel implementations the executor dispatches to.
    #[serde(default)]
    pub numerics: Numerics,
    /// Whether ρ is solved jointly with the rate.
    #[serde(default)]
    pub reliability: Reliability,
}

impl ExecutionPlan {
    /// Reads the plan out of an engine configuration. The `auto` model
    /// starts at its defaults; the engine calibrates it against the problem
    /// via [`AutoModel::calibrated_for`].
    pub fn from_config(config: &LrgpConfig) -> Self {
        Self {
            parallelism: config.parallelism,
            incrementality: config.incremental,
            auto: AutoModel::default(),
            numerics: config.numerics,
            reliability: config.reliability,
        }
    }

    /// `true` when dirty sets persist across steps.
    pub fn incremental(&self) -> bool {
        self.incrementality.enabled()
    }

    /// Resolves the execution-context count (caller + pooled workers) for a
    /// phase of `units` independent elements. A result of 1 means the
    /// sequential path.
    pub fn workers_for(&self, units: usize) -> usize {
        match self.parallelism {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, units.max(1)),
            Parallelism::Auto => self.auto.workers_for(units),
        }
    }

    /// The most execution contexts any phase can ever use under this plan —
    /// what sizes the engine's persistent pool (caller + `max_concurrency
    /// − 1` workers).
    pub fn max_concurrency(&self) -> usize {
        match self.parallelism {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => (self.auto.max_workers as usize).max(1),
        }
    }

    /// A short human-readable rendering, e.g. `"threads(4), incremental"`.
    pub fn describe(&self) -> String {
        let par = match self.parallelism {
            Parallelism::Sequential => "sequential".to_string(),
            Parallelism::Threads(n) => format!("threads({n})"),
            Parallelism::Auto => "auto-parallel".to_string(),
        };
        let inc = if self.incremental() { "incremental" } else { "full recompute" };
        // Strict and Off are the invariant defaults and stay out of the
        // string so pre-existing renderings are unchanged.
        let mut rendered = match self.numerics {
            Numerics::Strict => format!("{par}, {inc}"),
            Numerics::Vectorized => format!("{par}, {inc}, vectorized"),
        };
        if self.reliability.joint() {
            rendered.push_str(", joint reliability");
        }
        rendered
    }

    /// Executes one LRGP iteration under this plan. For non-incremental
    /// plans every element is marked dirty first, which makes the step an
    /// exact full recompute through the same executor. Sharded phases run
    /// on `pool`'s parked workers.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &self,
        state: &mut StepState,
        problem: &Arc<Problem>,
        config: &LrgpConfig,
        pool: &PoolHandle,
        rates: &mut Vec<f64>,
        rhos: &mut Vec<f64>,
        populations: &mut Vec<f64>,
        prices: &mut PriceVector,
        gammas: &mut [GammaController],
    ) -> f64 {
        if !self.incremental() {
            state.mark_all_dirty();
        }
        state.step(problem, config, self, pool, rates, rhos, populations, prices, gammas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_worker() {
        assert_eq!(Parallelism::Sequential.workers_for(10_000), 1);
    }

    #[test]
    fn threads_clamp_to_units_and_one() {
        assert_eq!(Parallelism::Threads(0).workers_for(100), 1);
        assert_eq!(Parallelism::Threads(4).workers_for(100), 4);
        assert_eq!(Parallelism::Threads(64).workers_for(3), 3);
        assert_eq!(Parallelism::Threads(4).workers_for(0), 1);
    }

    #[test]
    fn auto_stays_sequential_on_small_problems() {
        assert_eq!(Parallelism::Auto.workers_for(8), 1);
        assert!(Parallelism::Auto.workers_for(100_000) >= 1);
    }

    #[test]
    fn auto_model_is_deterministic() {
        let model = AutoModel::default();
        for units in [0, 1, 10, 100, 1_000, 100_000] {
            let first = model.workers_for(units);
            for _ in 0..5 {
                assert_eq!(model.workers_for(units), first, "units {units}");
            }
        }
    }

    #[test]
    fn auto_model_is_monotone_in_units() {
        let models = [
            AutoModel::default(),
            AutoModel { unit_cost: 1, dispatch_cost: 100, per_worker_cost: 7, max_workers: 6 },
            AutoModel { unit_cost: 900, dispatch_cost: 50_000, per_worker_cost: 1, max_workers: 3 },
        ];
        for model in models {
            let mut prev = 0usize;
            for units in 0..5_000 {
                let w = model.workers_for(units);
                assert!(
                    w >= prev,
                    "workers_for must be monotone: units {units} gave {w} after {prev}"
                );
                prev = w;
            }
        }
    }

    #[test]
    fn auto_model_crossover_matches_analytic_threshold() {
        // With w = 2: saved = (units − ceil(units/2)) · unit_cost =
        // floor(units/2) · unit_cost; the crossover is the first units with
        // floor(units/2) · 10 ≥ 100 + 5 ⇒ floor(units/2) ≥ 11 ⇒ units = 22.
        let model =
            AutoModel { unit_cost: 10, dispatch_cost: 100, per_worker_cost: 5, max_workers: 2 };
        assert_eq!(model.crossover(1_000), Some(22));
        assert_eq!(model.workers_for(21), 1);
        assert_eq!(model.workers_for(22), 2);
    }

    #[test]
    fn auto_model_respects_the_worker_ceiling() {
        let model = AutoModel { max_workers: 3, ..AutoModel::default() };
        for units in [10usize, 1_000, 1_000_000] {
            assert!(model.workers_for(units) <= 3);
        }
        let solo = AutoModel { max_workers: 1, ..AutoModel::default() };
        assert_eq!(solo.workers_for(1_000_000), 1);
    }

    #[test]
    fn calibration_is_deterministic_and_scales_with_classes() {
        let problem = lrgp_model::workloads::base_workload();
        let a = AutoModel::calibrated_for(&problem);
        let b = AutoModel::calibrated_for(&problem);
        assert_eq!(a, b, "repeated calibration must agree");
        assert!(a.unit_cost > AutoModel::default().dispatch_cost / 1_000);
        assert!(a.max_workers >= 1 && a.max_workers <= AUTO_MAX_WORKERS as u32);
    }

    #[test]
    fn parallelism_serde_round_trip() {
        for p in [Parallelism::Sequential, Parallelism::Threads(6), Parallelism::Auto] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn incremental_mode_enabled_flags() {
        assert!(!IncrementalMode::Off.enabled());
        assert!(IncrementalMode::On.enabled());
        assert!(IncrementalMode::Auto.enabled());
        assert_eq!(IncrementalMode::default(), IncrementalMode::Off);
    }

    #[test]
    fn plan_from_config_copies_both_axes() {
        let config = LrgpConfig {
            parallelism: Parallelism::Threads(4),
            incremental: IncrementalMode::On,
            ..LrgpConfig::default()
        };
        let plan = ExecutionPlan::from_config(&config);
        assert_eq!(plan.parallelism, Parallelism::Threads(4));
        assert!(plan.incremental());
        assert_eq!(plan.describe(), "threads(4), incremental");
        assert_eq!(ExecutionPlan::default().describe(), "sequential, full recompute");
    }

    #[test]
    fn plan_max_concurrency_by_mode() {
        let plan = |parallelism| ExecutionPlan { parallelism, ..ExecutionPlan::default() };
        assert_eq!(plan(Parallelism::Sequential).max_concurrency(), 1);
        assert_eq!(plan(Parallelism::Threads(4)).max_concurrency(), 4);
        assert_eq!(plan(Parallelism::Threads(0)).max_concurrency(), 1);
        let auto = plan(Parallelism::Auto);
        assert_eq!(auto.max_concurrency(), auto.auto.max_workers as usize);
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = ExecutionPlan {
            parallelism: Parallelism::Auto,
            incrementality: IncrementalMode::Auto,
            numerics: Numerics::Vectorized,
            ..ExecutionPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Pre-AutoModel plan JSON (no `auto`/`numerics` fields) still
        // deserializes, defaulting to Strict.
        let legacy = r#"{"parallelism":"Sequential","incrementality":"On"}"#;
        let back: ExecutionPlan = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.auto, AutoModel::default());
        assert_eq!(back.numerics, Numerics::Strict);
    }

    #[test]
    fn numerics_axis_defaults_to_strict_and_renders_only_when_vectorized() {
        assert_eq!(Numerics::default(), Numerics::Strict);
        assert!(!Numerics::Strict.vectorized());
        assert!(Numerics::Vectorized.vectorized());
        let plan = ExecutionPlan { numerics: Numerics::Vectorized, ..ExecutionPlan::default() };
        assert_eq!(plan.describe(), "sequential, full recompute, vectorized");
        // The config axis flows into the plan like the other two.
        let config = LrgpConfig { numerics: Numerics::Vectorized, ..LrgpConfig::default() };
        assert_eq!(ExecutionPlan::from_config(&config).numerics, Numerics::Vectorized);
    }

    #[test]
    fn reliability_axis_defaults_to_off_and_renders_only_when_joint() {
        assert_eq!(Reliability::default(), Reliability::Off);
        assert!(!Reliability::Off.joint());
        assert!(Reliability::Joint.joint());
        let plan = ExecutionPlan { reliability: Reliability::Joint, ..ExecutionPlan::default() };
        assert_eq!(plan.describe(), "sequential, full recompute, joint reliability");
        let both = ExecutionPlan {
            reliability: Reliability::Joint,
            numerics: Numerics::Vectorized,
            ..ExecutionPlan::default()
        };
        assert_eq!(both.describe(), "sequential, full recompute, vectorized, joint reliability");
        // The config axis flows into the plan like the other three, and
        // pre-reliability plan JSON still deserializes to Off.
        let config = LrgpConfig { reliability: Reliability::Joint, ..LrgpConfig::default() };
        assert_eq!(ExecutionPlan::from_config(&config).reliability, Reliability::Joint);
        let legacy = r#"{"parallelism":"Sequential","incrementality":"On"}"#;
        let back: ExecutionPlan = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.reliability, Reliability::Off);
    }
}
