//! Execution planning: how a step runs, separated from what it computes.
//!
//! The kernel layer ([`crate::kernel`]) defines *what* one LRGP iteration
//! computes. This module defines *how* the engine executes it: an
//! [`ExecutionPlan`] is the product of two independent axes —
//!
//! * [`Parallelism`] — whether each phase shards its work over scoped
//!   worker threads, and over how many;
//! * [`IncrementalMode`] — whether the step recomputes everything or only
//!   the dirty subset tracked by [`crate::exec::StepState`].
//!
//! Both axes preserve bit-identical results, so a plan is purely a
//! performance choice: all four combinations produce the same
//! `f64::to_bits` trace as the sequential full-recompute reference
//! (enforced by `tests/differential.rs`).
//!
//! # Determinism guarantee
//!
//! One LRGP iteration is embarrassingly parallel *within* each of its three
//! phases: rate allocation is independent per flow source (Algorithm 1),
//! greedy admission and the node price update are independent per node
//! (Algorithm 2 + Eq. 12; every class is attached to exactly one node, so
//! population writes never conflict), and the link price update is
//! independent per link (Eq. 13). The executor shards each phase over
//! [`std::thread::scope`] workers in contiguous id-order chunks and applies
//! the per-element results in id order. The parallel trace is
//! **bit-identical** to the sequential trace, regardless of worker count or
//! scheduling, by construction rather than by tolerance:
//!
//! * every per-element kernel ([`crate::kernel::rate::allocate_rate_for_flow`],
//!   [`crate::kernel::admission::allocate_consumers`],
//!   [`crate::kernel::price::update_node_price_with_rule`],
//!   [`crate::kernel::price::update_link_price`]) is a pure function of the
//!   *previous* iteration's published state, so workers read frozen inputs;
//! * elements are partitioned by id, writes target disjoint slots, and the
//!   chunk results are reduced back in id order;
//! * every floating-point *summation* (per-flow aggregate prices, per-link
//!   usage, total utility) runs inside one kernel in the same element order
//!   as the sequential reference — the sharding never reassociates a sum.
//!
//! # Composition of the two axes
//!
//! The executor shards the *dirty* element lists instead of the full id
//! ranges, resolving its worker count with [`Parallelism::workers_for`] on
//! the dirty count — a step with ten dirty flows stays sequential under
//! [`Parallelism::Auto`] even on a thousand-flow problem. A
//! non-incremental plan simply marks everything dirty before each step
//! (recomputing a bitwise-unchanged input yields the bitwise-same output,
//! so full recompute is the `all-dirty` special case of the same executor).

use crate::engine::LrgpConfig;
use crate::exec::StepState;
use crate::gamma::GammaController;
use crate::kernel::price::PriceVector;
use lrgp_model::Problem;
use serde::{Deserialize, Serialize};

/// Minimum number of per-phase work units before [`Parallelism::Auto`]
/// bothers spawning workers; below this the per-step thread-spawn cost
/// dominates the kernel work.
const AUTO_MIN_UNITS: usize = 192;

/// Worker-count ceiling for [`Parallelism::Auto`] (spawn cost grows linearly
/// with workers while per-step work is fixed).
const AUTO_MAX_WORKERS: usize = 8;

/// Joins a scoped worker, re-raising its panic payload unchanged.
///
/// Equivalent to `handle.join().expect(...)` but preserves the worker's
/// original panic payload instead of replacing it with a new message, and
/// keeps panicking escape hatches out of library code (the
/// `library-unwrap` lint invariant).
pub(crate) fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// How the engine executes the three phases of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single-threaded reference execution (the default).
    #[default]
    Sequential,
    /// Shard each phase over exactly this many scoped worker threads
    /// (values are clamped to at least 1 and at most one worker per
    /// element).
    Threads(usize),
    /// Pick a worker count from [`std::thread::available_parallelism`], or
    /// stay sequential when the problem is too small to amortize the
    /// per-step spawn cost.
    Auto,
}

impl Parallelism {
    /// Resolves the worker count for a phase of `units` independent
    /// elements. A result of 1 means the sequential path.
    pub fn workers_for(self, units: usize) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.clamp(1, units.max(1)),
            Parallelism::Auto => {
                if units < AUTO_MIN_UNITS {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .min(AUTO_MAX_WORKERS)
                        .min(units)
                }
            }
        }
    }
}

/// Whether the step recomputes everything or only the dirty subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IncrementalMode {
    /// Recompute everything each step (the reference behaviour; the
    /// executor marks all elements dirty before stepping).
    #[default]
    Off,
    /// Track dirty sets across steps and recompute only what changed.
    On,
    /// Let the engine decide. Currently resolves to [`IncrementalMode::On`]:
    /// the incremental step is bit-identical and its bookkeeping overhead is
    /// linear with small constants, so it pays for itself on every workload
    /// once iterations settle. The variant exists so deployments can pin the
    /// choice explicitly while the heuristic is free to evolve.
    Auto,
}

impl IncrementalMode {
    /// `true` when dirty sets are carried across steps.
    pub fn enabled(self) -> bool {
        !matches!(self, IncrementalMode::Off)
    }
}

/// The resolved execution strategy of an engine: one choice per axis.
///
/// Derived from [`LrgpConfig`] at construction via
/// [`ExecutionPlan::from_config`]; the engine consults it on every step.
/// Plans affect wall-clock time only — never results (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// How each phase shards its work over threads.
    pub parallelism: Parallelism,
    /// Whether dirty sets persist across steps.
    pub incrementality: IncrementalMode,
}

impl ExecutionPlan {
    /// Reads the plan out of an engine configuration.
    pub fn from_config(config: &LrgpConfig) -> Self {
        Self { parallelism: config.parallelism, incrementality: config.incremental }
    }

    /// `true` when dirty sets persist across steps.
    pub fn incremental(&self) -> bool {
        self.incrementality.enabled()
    }

    /// Resolves the worker count for a phase of `units` independent
    /// elements (see [`Parallelism::workers_for`]).
    pub fn workers_for(&self, units: usize) -> usize {
        self.parallelism.workers_for(units)
    }

    /// A short human-readable rendering, e.g. `"threads(4), incremental"`.
    pub fn describe(&self) -> String {
        let par = match self.parallelism {
            Parallelism::Sequential => "sequential".to_string(),
            Parallelism::Threads(n) => format!("threads({n})"),
            Parallelism::Auto => "auto-parallel".to_string(),
        };
        let inc = if self.incremental() { "incremental" } else { "full recompute" };
        format!("{par}, {inc}")
    }

    /// Executes one LRGP iteration under this plan. For non-incremental
    /// plans every element is marked dirty first, which makes the step an
    /// exact full recompute through the same executor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &self,
        state: &mut StepState,
        problem: &Problem,
        config: &LrgpConfig,
        rates: &mut [f64],
        populations: &mut [f64],
        prices: &mut PriceVector,
        gammas: &mut [GammaController],
    ) -> f64 {
        if !self.incremental() {
            state.mark_all_dirty();
        }
        state.step(problem, config, self, rates, populations, prices, gammas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_worker() {
        assert_eq!(Parallelism::Sequential.workers_for(10_000), 1);
    }

    #[test]
    fn threads_clamp_to_units_and_one() {
        assert_eq!(Parallelism::Threads(0).workers_for(100), 1);
        assert_eq!(Parallelism::Threads(4).workers_for(100), 4);
        assert_eq!(Parallelism::Threads(64).workers_for(3), 3);
        assert_eq!(Parallelism::Threads(4).workers_for(0), 1);
    }

    #[test]
    fn auto_stays_sequential_on_small_problems() {
        assert_eq!(Parallelism::Auto.workers_for(8), 1);
        assert!(Parallelism::Auto.workers_for(100_000) >= 1);
    }

    #[test]
    fn parallelism_serde_round_trip() {
        for p in [Parallelism::Sequential, Parallelism::Threads(6), Parallelism::Auto] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn incremental_mode_enabled_flags() {
        assert!(!IncrementalMode::Off.enabled());
        assert!(IncrementalMode::On.enabled());
        assert!(IncrementalMode::Auto.enabled());
        assert_eq!(IncrementalMode::default(), IncrementalMode::Off);
    }

    #[test]
    fn plan_from_config_copies_both_axes() {
        let config = LrgpConfig {
            parallelism: Parallelism::Threads(4),
            incremental: IncrementalMode::On,
            ..LrgpConfig::default()
        };
        let plan = ExecutionPlan::from_config(&config);
        assert_eq!(plan.parallelism, Parallelism::Threads(4));
        assert!(plan.incremental());
        assert_eq!(plan.describe(), "threads(4), incremental");
        assert_eq!(ExecutionPlan::default().describe(), "sequential, full recompute");
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = ExecutionPlan {
            parallelism: Parallelism::Auto,
            incrementality: IncrementalMode::Auto,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
