//! Deprecated location of [`IncrementalMode`].
//!
//! The dirty-set machinery became the engine's only step executor
//! ([`crate::exec`], selected by [`crate::plan::ExecutionPlan`]); the mode
//! enum moved to [`crate::plan`]. This re-export keeps the old path
//! compiling for one release.

pub use crate::plan::IncrementalMode;
