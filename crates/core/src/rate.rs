//! Deprecated location of the rate kernel; moved to [`crate::kernel::rate`].

pub use crate::kernel::rate::{
    allocate_rate_for_flow, allocate_rates, solve_rate, AggregateUtility,
};
