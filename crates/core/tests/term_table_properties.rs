//! Property tests for the precomputed price-term tables.
//!
//! The incremental engine aggregates `PL_i`/`PB_i` from the flattened
//! [`PriceTermTable`] instead of walking the problem's accessor maps. The
//! table is only admissible if it performs the **same floating-point
//! additions in the same order** — these tests assert `f64::to_bits`
//! equality of both aggregation routes on randomized problems, prices, and
//! populations.

use lrgp::PriceVector;
use lrgp_model::workloads::{link_bottleneck_workload, RandomWorkload};
use lrgp_model::{PriceTermTable, Problem, UtilityShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fills prices and populations with pseudo-random values (including exact
/// zeros, which exercise the `max(0.0)` projection and the skip guards).
fn randomize_state(problem: &Problem, rng: &mut StdRng) -> (PriceVector, Vec<f64>) {
    let mut prices = PriceVector::zeros(problem);
    for node in problem.node_ids() {
        if rng.gen_range(0..4) != 0 {
            prices.set_node(node, rng.gen_range(0.0..10.0));
        }
    }
    for link in problem.link_ids() {
        if rng.gen_range(0..4) != 0 {
            prices.set_link(link, rng.gen_range(0.0..10.0));
        }
    }
    let populations: Vec<f64> = problem
        .class_ids()
        .map(|c| {
            let max = problem.class(c).max_population as f64;
            if rng.gen_range(0..4) == 0 { 0.0 } else { rng.gen_range(0.0..=max.max(1.0)) }
        })
        .collect();
    (prices, populations)
}

/// Asserts both aggregation routes agree bitwise for every flow.
fn assert_table_matches(problem: &Problem, prices: &PriceVector, populations: &[f64]) {
    let table = PriceTermTable::new(problem);
    for flow in problem.flow_ids() {
        let direct_link = prices.aggregate_link_price(problem, flow);
        let table_link = prices.aggregate_link_price_from_table(&table, flow);
        assert_eq!(
            direct_link.to_bits(),
            table_link.to_bits(),
            "PL diverged for flow {flow:?}: {direct_link:?} vs {table_link:?}"
        );
        let direct_node = prices.aggregate_node_price(problem, flow, populations);
        let table_node = prices.aggregate_node_price_from_table(&table, flow, populations);
        assert_eq!(
            direct_node.to_bits(),
            table_node.to_bits(),
            "PB diverged for flow {flow:?}: {direct_node:?} vs {table_node:?}"
        );
        let direct = prices.aggregate_price(problem, flow, populations);
        let table_total = prices.aggregate_price_from_table(&table, flow, populations);
        assert_eq!(
            direct.to_bits(),
            table_total.to_bits(),
            "PL+PB diverged for flow {flow:?}: {direct:?} vs {table_total:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// On random problems with random prices and populations, the table
    /// route reproduces `aggregate_price` bit-for-bit.
    #[test]
    fn table_aggregation_bit_identical_on_random_problems(
        flows in 2usize..24,
        cnodes in 1usize..8,
        classes in 1usize..5,
        shape in prop_oneof![
            Just(UtilityShape::Log),
            Just(UtilityShape::Pow25),
            Just(UtilityShape::Pow50),
            Just(UtilityShape::Pow75),
        ],
        seed in 0u64..1_000_000,
    ) {
        let workload = RandomWorkload {
            flows,
            consumer_nodes: cnodes,
            classes_per_flow: classes,
            shape,
            ..RandomWorkload::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        let (prices, populations) = randomize_state(&problem, &mut rng);
        assert_table_matches(&problem, &prices, &populations);
    }
}

#[test]
fn table_aggregation_bit_identical_with_links() {
    // RandomWorkload has no links; the bottleneck workload exercises the
    // link-term half of the table (Eq. 8) with nonzero link prices.
    let problem = link_bottleneck_workload(500.0);
    for seed in [3u64, 17, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (prices, populations) = randomize_state(&problem, &mut rng);
        assert_table_matches(&problem, &prices, &populations);
    }
}
