//! Engine-level behavior of `Parallelism::Auto` and its calibrated cost
//! model: derivations are deterministic, and the `set_auto_model` hook
//! flips Auto from sequential to pooled threads at exactly the crossover
//! the model predicts — without disturbing bit-identity.

use lrgp::{AutoModel, Engine, LrgpConfig, Parallelism};
use lrgp_model::workloads::{base_workload, paper_workload};
use lrgp_model::UtilityShape;

fn auto_config() -> LrgpConfig {
    LrgpConfig { parallelism: Parallelism::Auto, ..LrgpConfig::default() }
}

#[test]
fn auto_stays_sequential_at_paper_scale() {
    // The tracked benchmarks (BENCH_lrgp.json, paper_base threads_sweep)
    // show explicit Threads(2)/Threads(4) losing to sequential at the
    // paper's dimensions — pool handoff costs more than the ~9 price
    // units' worth of kernel work it shards. `Auto` must therefore never
    // resolve to threads there: not under the engine's calibrated model,
    // and not under the uncalibrated default either. A failure here means
    // the crossover constants regressed and small workloads silently pay
    // the benchmark regression by default.
    for problem in [base_workload(), paper_workload(UtilityShape::Log, 1, 1)] {
        let units = problem.num_nodes().max(problem.num_flows());
        let calibrated = AutoModel::calibrated_for(&problem);
        assert_eq!(
            calibrated.workers_for(units),
            1,
            "calibrated Auto must stay sequential at {units} paper-scale units"
        );
        assert_eq!(
            AutoModel::default().workers_for(units),
            1,
            "default Auto must stay sequential at {units} paper-scale units"
        );
        let engine = Engine::new(problem, auto_config());
        assert_eq!(
            engine.effective_workers(),
            1,
            "Auto engine must run the sequential path at paper scale"
        );
    }
}

#[test]
fn repeated_plan_derivations_pick_the_same_mode() {
    // Calibration draws only on problem dimensions and the (fixed) hardware
    // parallelism, so two engines over the same problem must agree exactly.
    let a = Engine::new(base_workload(), auto_config());
    let b = Engine::new(base_workload(), auto_config());
    assert_eq!(a.plan(), b.plan());
    assert_eq!(a.effective_workers(), b.effective_workers());
}

#[test]
fn auto_model_hook_flips_sequential_to_threads_at_the_expected_size() {
    let mut engine = Engine::new(base_workload(), auto_config());
    // The base workload (6 flows, 9 nodes) sits far below the default
    // crossover, so Auto resolves to the sequential path.
    assert_eq!(engine.effective_workers(), 1, "base workload should stay sequential");

    // Pin a model whose analytic crossover lands just under the workload's
    // 9 price units: 2 contexts save floor(units/2)·unit_cost, which first
    // covers dispatch_cost + per_worker_cost at units = 8.
    let model = AutoModel {
        unit_cost: 10_000,
        dispatch_cost: 30_000,
        per_worker_cost: 1_000,
        max_workers: 2,
    };
    assert_eq!(model.crossover(64), Some(8));
    assert_eq!(model.workers_for(7), 1);
    assert_eq!(model.workers_for(8), 2);

    engine.set_auto_model(model);
    assert_eq!(
        engine.effective_workers(),
        2,
        "9 units sit past the pinned crossover, so Auto must flip to threads"
    );

    // The flipped mode still matches the sequential reference bitwise.
    engine.force_pool_dispatch(true);
    let mut reference = Engine::new(base_workload(), LrgpConfig::default());
    for k in 0..60 {
        let expected = reference.step();
        let got = engine.step();
        assert_eq!(expected.to_bits(), got.to_bits(), "diverged at iteration {k}");
    }
}
