//! Property-based tests of the LRGP kernels — the Lagrangian rate solver,
//! the greedy admission (Eqs. 5 and 10), the price updates (Eqs. 12–13) and
//! the §4.2 γ controller — plus hand-computed golden values for the rate
//! solver's closed forms (Eqs. 7–9).

use lrgp::kernel::admission::{allocate_consumers, benefit_cost, AdmissionPolicy, PopulationMode};
use lrgp::gamma::{AdaptiveGammaConfig, GammaController, GammaMode};
use lrgp::kernel::price::{update_link_price, update_node_price_with_rule, NodePriceRule};
use lrgp::kernel::rate::{solve_rate, AggregateUtility};
use lrgp_model::{ClassId, NodeId, ProblemBuilder, RateBounds, Utility};
use proptest::prelude::*;

fn utility_strategy() -> impl Strategy<Value = Utility> {
    prop_oneof![
        (0.1f64..200.0).prop_map(Utility::log),
        (0.1f64..200.0, 0.05f64..0.95).prop_map(|(w, k)| Utility::power(w, k)),
        (0.1f64..200.0, 1.0f64..500.0).prop_map(|(w, s)| Utility::saturating(w, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The rate solver's answer maximizes Φ over the interval: no probe
    /// point beats it (up to numerical slack).
    #[test]
    fn solve_rate_is_optimal_on_probes(
        terms in proptest::collection::vec((1.0f64..1000.0, utility_strategy()), 1..5),
        price in 1e-4f64..1e3,
        lo in 0.5f64..50.0,
        width in 1.0f64..2000.0,
    ) {
        let bounds = RateBounds::new(lo, lo + width).unwrap();
        let agg = AggregateUtility::from_terms(terms);
        let phi = |r: f64| agg.value(r) - price * r;
        let r_star = solve_rate(&agg, price, bounds, lo);
        prop_assert!(bounds.contains(r_star, 1e-9));
        let best = phi(r_star);
        for k in 0..=20 {
            let probe = bounds.min + bounds.width() * k as f64 / 20.0;
            prop_assert!(
                best >= phi(probe) - 1e-6 * best.abs().max(1.0),
                "probe {probe} beats r* = {r_star}: {} > {best}",
                phi(probe)
            );
        }
    }

    /// Raising the price never raises the chosen rate (monotone demand).
    #[test]
    fn solve_rate_monotone_in_price(
        weight in 1.0f64..500.0,
        n in 1.0f64..2000.0,
        p1 in 1e-4f64..100.0,
        factor in 1.01f64..100.0,
    ) {
        let bounds = RateBounds::new(1.0, 1000.0).unwrap();
        let agg = AggregateUtility::from_terms([(n, Utility::log(weight))]);
        let r1 = solve_rate(&agg, p1, bounds, 1.0);
        let r2 = solve_rate(&agg, p1 * factor, bounds, 1.0);
        prop_assert!(r2 <= r1 + 1e-9, "price up, rate up: {r1} -> {r2}");
    }

    /// Greedy admission never violates the node budget when flow costs fit,
    /// under every mode/policy combination, and FFD admits at least as much
    /// total utility as the paper's stop-at-block greedy.
    #[test]
    fn admission_budget_and_ffd_dominance(
        specs in proptest::collection::vec(
            (1u32..500, 0.5f64..100.0, 0.5f64..40.0),
            1..6
        ),
        capacity in 1e3f64..1e6,
        rate in 1.0f64..500.0,
    ) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(capacity);
        let mut rates = Vec::new();
        for &(n_max, rank, g) in &specs {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, 0.0);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(rate);
        }
        let p = b.build().unwrap();
        let node = NodeId::new(0);

        let mut utilities = std::collections::HashMap::new();
        for mode in [PopulationMode::Integral, PopulationMode::Fractional] {
            for policy in [AdmissionPolicy::StopAtFirstBlock, AdmissionPolicy::FirstFitDecreasing] {
                let adm = allocate_consumers(&p, node, &rates, mode, policy);
                prop_assert!(adm.used <= capacity + 1e-6, "budget violated: {}", adm.used);
                let utility: f64 = adm
                    .populations
                    .iter()
                    .map(|&(c, n)| n * p.class(c).utility.value(rate))
                    .sum();
                utilities.insert((mode, policy), utility);
                // All populations within their caps.
                for &(c, n) in &adm.populations {
                    prop_assert!(n >= 0.0 && n <= p.class(c).max_population as f64);
                    if mode == PopulationMode::Integral {
                        prop_assert_eq!(n.fract(), 0.0);
                    }
                }
            }
        }
        let stop = utilities[&(PopulationMode::Integral, AdmissionPolicy::StopAtFirstBlock)];
        let ffd = utilities[&(PopulationMode::Integral, AdmissionPolicy::FirstFitDecreasing)];
        prop_assert!(ffd >= stop - 1e-9, "FFD {ffd} must dominate stop-at-block {stop}");
        let frac = utilities[&(PopulationMode::Fractional, AdmissionPolicy::FirstFitDecreasing)];
        prop_assert!(frac >= ffd - 1e-9, "fractional FFD {frac} must dominate integral {ffd}");
    }

    /// The node benefit–cost ratio equals the max ratio over unsaturated
    /// classes reported in the admission result.
    #[test]
    fn node_bc_is_max_over_unsaturated(
        specs in proptest::collection::vec(
            (1u32..50, 0.5f64..100.0, 1.0f64..40.0),
            1..5
        ),
        capacity in 1e2f64..1e5,
    ) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(capacity);
        let mut rates = Vec::new();
        for &(n_max, rank, g) in &specs {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, 0.0);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(100.0);
        }
        let p = b.build().unwrap();
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        let expected = adm
            .populations
            .iter()
            .filter(|&&(c, n)| n < p.class(c).max_population as f64)
            .map(|&(c, _)| lrgp::admission::benefit_cost(&p, c, 100.0))
            .fold(0.0f64, f64::max);
        prop_assert!((adm.benefit_cost - expected).abs() < 1e-12);
    }

    /// Eq. 10: under the paper's greedy (stop at first block), the admitted
    /// classes form a prefix of the benefit–cost order — whenever a class
    /// receives consumers, every *eligible* class ranked above it (higher
    /// BC, ties by class id) must be saturated at `n_j^max`.
    #[test]
    fn admission_is_prefix_of_benefit_cost_order(
        specs in proptest::collection::vec(
            (0u32..60, 0.5f64..100.0, 0.5f64..20.0),
            1..8
        ),
        capacity in 1e2f64..1e6,
        rates_seed in proptest::collection::vec(
            prop_oneof![Just(0.0f64), 1.0f64..500.0],
            8
        ),
    ) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(capacity);
        let mut rates = Vec::new();
        for (i, &(n_max, rank, g)) in specs.iter().enumerate() {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, 0.0);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(rates_seed[i]);
        }
        let p = b.build().unwrap();
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        let admitted: std::collections::HashMap<ClassId, f64> =
            adm.populations.iter().copied().collect();
        // Recompute the engine's ordering: BC descending, class id ascending.
        let mut order: Vec<(ClassId, f64)> = p
            .classes_at_node(NodeId::new(0))
            .iter()
            .map(|&c| (c, benefit_cost(&p, c, rates[p.class(c).flow.index()])))
            .collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for (i, &(class, _)) in order.iter().enumerate() {
            if admitted[&class] > 0.0 {
                for &(earlier, _) in &order[..i] {
                    let spec = p.class(earlier);
                    let eligible = spec.max_population > 0 && rates[spec.flow.index()] > 0.0;
                    if eligible {
                        prop_assert_eq!(
                            admitted[&earlier],
                            spec.max_population as f64,
                            "class {:?} admitted while higher-BC class {:?} was unsaturated",
                            class,
                            earlier
                        );
                    }
                }
            }
        }
    }

    /// Eqs. 12–13: both price laws project onto [0, ∞) for arbitrary
    /// inputs, and stay finite.
    #[test]
    fn prices_projected_nonnegative(
        current in 0.0f64..1e4,
        bc in 0.0f64..1e4,
        used in 0.0f64..1e7,
        capacity in 1.0f64..1e7,
        gamma in 0.0f64..2.0,
    ) {
        for rule in [NodePriceRule::BenefitCost, NodePriceRule::PureGradient] {
            let next = update_node_price_with_rule(rule, current, bc, used, capacity, gamma, gamma);
            prop_assert!(next >= 0.0, "{:?} produced negative price {}", rule, next);
            prop_assert!(next.is_finite());
        }
        let link = update_link_price(current, used, capacity, gamma);
        prop_assert!(link >= 0.0, "link price negative: {link}");
    }
}

// ---------------------------------------------------------------------------
// Rate solver golden values (Eqs. 7–9): hand-computed closed-form optima.
// ---------------------------------------------------------------------------

fn golden_bounds() -> RateBounds {
    RateBounds::new(2.0, 500.0).unwrap()
}

#[test]
fn golden_log_single_class() {
    // 8 consumers of 12.5·log(1+r), price 0.25.
    // S = 8 · 12.5 = 100; r* = S/P − 1 = 100/0.25 − 1 = 399.
    let agg = AggregateUtility::from_terms([(8.0, Utility::log(12.5))]);
    let r = solve_rate(&agg, 0.25, golden_bounds(), 2.0);
    assert!((r - 399.0).abs() < 1e-9, "r = {r}");
}

#[test]
fn golden_log_mixed_weights() {
    // S = 3·6 + 2·11 = 40; P = 0.5 ⇒ r* = 80 − 1 = 79.
    let agg = AggregateUtility::from_terms([(3.0, Utility::log(6.0)), (2.0, Utility::log(11.0))]);
    let r = solve_rate(&agg, 0.5, golden_bounds(), 2.0);
    assert!((r - 79.0).abs() < 1e-9, "r = {r}");
}

#[test]
fn golden_log_clamps_at_rmin_and_rmax() {
    let agg = AggregateUtility::from_terms([(1.0, Utility::log(10.0))]);
    // P = 5 ⇒ unconstrained r* = 10/5 − 1 = 1, below r_min = 2 ⇒ clamp.
    assert_eq!(solve_rate(&agg, 5.0, golden_bounds(), 2.0), 2.0);
    // P = 0.01 ⇒ unconstrained r* = 999, above r_max = 500 ⇒ clamp.
    assert_eq!(solve_rate(&agg, 0.01, golden_bounds(), 2.0), 500.0);
}

#[test]
fn golden_power_half_exponent() {
    // 4 consumers of 5·r^0.5; S = 20, k = 0.5.
    // P = 0.2 ⇒ r* = (kS/P)^(1/(1−k)) = (0.5·20/0.2)² = 50² = 2500 ⇒ clamped.
    let agg = AggregateUtility::from_terms([(4.0, Utility::power(5.0, 0.5))]);
    assert_eq!(solve_rate(&agg, 0.2, golden_bounds(), 2.0), 500.0);
    // P = 2 ⇒ r* = (10/2)² = 25, interior.
    let r = solve_rate(&agg, 2.0, golden_bounds(), 2.0);
    assert!((r - 25.0).abs() < 1e-9, "r = {r}");
}

#[test]
fn golden_power_quarter_exponent() {
    // 1 consumer of 16·r^0.25; k = 0.25, S = 16, P = 1.
    // r* = (0.25·16)^(1/0.75) = 4^(4/3) = 2^(8/3).
    let agg = AggregateUtility::from_terms([(1.0, Utility::power(16.0, 0.25))]);
    let r = solve_rate(&agg, 1.0, golden_bounds(), 2.0);
    let expected = 2f64.powf(8.0 / 3.0);
    assert!((r - expected).abs() < 1e-9, "r = {r}, expected {expected}");
}

#[test]
fn golden_power_optimum_satisfies_first_order_condition() {
    // Interior optimum must zero the derivative of Φ(r) = S·r^k − P·r.
    // S = 21, k = 0.75, P = 5 ⇒ r* = (15.75/5)⁴ ≈ 98.5, inside [2, 500].
    let agg = AggregateUtility::from_terms([(3.0, Utility::power(7.0, 0.75))]);
    let price = 5.0;
    let r = solve_rate(&agg, price, golden_bounds(), 2.0);
    assert!(r > 2.0 && r < 500.0, "expected interior, got {r}");
    assert!((agg.derivative(r) - price).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Price update regressions (Eqs. 12–13) and γ controller (§4.2).
// ---------------------------------------------------------------------------

#[test]
fn overload_strictly_increases_node_price() {
    // Eq. 12 second branch: used > capacity with γ₂ > 0 strictly raises the
    // price, whatever the BC term says.
    for current in [0.0, 0.5, 123.4] {
        for overload in [1e-6, 10.0, 1e5] {
            let next = update_node_price_with_rule(
                NodePriceRule::BenefitCost,
                current,
                0.0, // BC is irrelevant in the overload branch
                1000.0 + overload,
                1000.0,
                0.05,
                0.05,
            );
            assert!(next > current, "overload {overload}: {current} -> {next}");
        }
    }
}

#[test]
fn overload_strictly_increases_link_price() {
    // Eq. 13: usage 1500 over capacity 1000 at γ = 0.01 adds exactly 5.
    for current in [0.0, 0.7, 42.0] {
        let next = update_link_price(current, 1500.0, 1000.0, 0.01);
        assert!((next - (current + 5.0)).abs() < 1e-12);
        assert!(next > current);
    }
}

#[test]
fn underload_moves_node_price_toward_benefit_cost() {
    // Eq. 12 first branch: p ← p + γ₁(BC − p). Exact step check with
    // distinct γ₁ and γ₂ proving the right γ is used.
    let next =
        update_node_price_with_rule(NodePriceRule::BenefitCost, 2.0, 5.0, 10.0, 100.0, 0.1, 0.9);
    assert!((next - 2.3).abs() < 1e-12, "expected 2 + 0.1·(5−2) = 2.3, got {next}");
}

#[test]
fn gamma_controller_grows_by_increment_when_quiet() {
    // §4.2: +0.001 per quiet iteration, clamped at 0.1.
    let cfg = AdaptiveGammaConfig { initial: 0.05, ..AdaptiveGammaConfig::default() };
    let mut ctl = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
    for k in 1..=10 {
        ctl.observe_price(k as f64); // strictly rising: never a fluctuation
        let expected = (0.05 + 0.001 * k as f64).min(0.1);
        assert!(
            (ctl.gamma() - expected).abs() < 1e-12,
            "after {k} quiet steps expected γ {expected}, got {}",
            ctl.gamma()
        );
    }
}

#[test]
fn gamma_controller_halves_on_fluctuation_and_clamps() {
    let cfg = AdaptiveGammaConfig::default(); // initial = max = 0.1
    let mut ctl = GammaController::new(GammaMode::Adaptive(cfg), 0.0);
    ctl.observe_price(1.0); // quiet; γ stays clamped at the 0.1 ceiling
    assert!((ctl.gamma() - 0.1).abs() < 1e-12);
    let mut expected = 0.1f64;
    let mut price = 1.0;
    for _ in 0..12 {
        price = -price; // alternate: every observation fluctuates
        ctl.observe_price(price);
        expected = (expected * 0.5).max(0.001);
        assert!(
            (ctl.gamma() - expected).abs() < 1e-12,
            "expected γ {expected}, got {}",
            ctl.gamma()
        );
    }
    assert!((ctl.gamma() - 0.001).abs() < 1e-12, "γ must clamp at the paper's floor");
}

#[test]
fn fixed_gamma_ignores_observations() {
    let mut ctl = GammaController::new(GammaMode::fixed(0.07), 0.0);
    for price in [1.0, -3.0, 2.5, 0.0, 9.9] {
        ctl.observe_price(price);
        assert_eq!(ctl.gamma(), 0.07);
    }
}

// ---------------------------------------------------------------------------
// Shard assembly (`lrgp::pool`): the executor splits each dirty list into
// contiguous spans handed to pool workers, and applies the results back in
// span order. Bit-identity with the sequential schedule rests entirely on
// those spans partitioning the list exactly — no overlap, no gap, and
// order-preserving concatenation.
// ---------------------------------------------------------------------------

use lrgp::pool::{shard_chunk, shard_count, shard_spans};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Spans tile `0..len` exactly: consecutive, non-empty, in order, and
    /// ending at `len` — for every list size (including 0 and 1) and every
    /// worker count (including more workers than elements).
    #[test]
    fn shard_spans_partition_the_index_range_exactly(
        len in 0usize..5_000,
        workers in 1usize..64,
    ) {
        let spans: Vec<_> = shard_spans(len, workers).collect();
        prop_assert_eq!(spans.len(), shard_count(len, workers));
        prop_assert!(spans.len() <= workers, "never more shards than contexts");
        let mut next_start = 0;
        for span in &spans {
            prop_assert_eq!(span.start, next_start, "gap or overlap at {}", span.start);
            prop_assert!(span.end > span.start, "empty span at {}", span.start);
            next_start = span.end;
        }
        prop_assert_eq!(next_start, len, "spans must end exactly at len");
    }

    /// Every span except the last holds exactly `shard_chunk` elements (the
    /// last holds the remainder), so a worker's shard is one contiguous run.
    #[test]
    fn shard_spans_use_a_fixed_chunk_except_the_tail(
        len in 1usize..5_000,
        workers in 1usize..64,
    ) {
        let chunk = shard_chunk(len, workers);
        prop_assert!(chunk >= 1);
        let spans: Vec<_> = shard_spans(len, workers).collect();
        for span in spans.iter().take(spans.len() - 1) {
            prop_assert_eq!(span.end - span.start, chunk);
        }
        let last = spans.last().expect("len ≥ 1 yields at least one span");
        prop_assert!(last.end - last.start <= chunk);
    }

    /// Concatenating the sharded slices of an arbitrary dirty list
    /// reproduces the list element-for-element — the property the pooled
    /// executor's apply-in-shard-order loop relies on.
    #[test]
    fn shard_spans_reassemble_the_dirty_list(
        dirty in proptest::collection::vec(any::<u32>(), 0..2_000),
        workers in 1usize..17,
    ) {
        let mut reassembled = Vec::with_capacity(dirty.len());
        for span in shard_spans(dirty.len(), workers) {
            reassembled.extend_from_slice(&dirty[span]);
        }
        prop_assert_eq!(reassembled, dirty);
    }
}

#[test]
fn shard_spans_edge_cases() {
    // Empty dirty list: no spans at all, any worker count.
    for workers in [1, 2, 7] {
        assert_eq!(shard_spans(0, workers).count(), 0);
        assert_eq!(shard_count(0, workers), 0);
        assert_eq!(shard_chunk(0, workers), 0);
    }
    // Single element: exactly one span covering it.
    let spans: Vec<_> = shard_spans(1, 8).collect();
    assert_eq!(spans, vec![0..1]);
    // Fewer elements than workers: one single-element span each.
    let spans: Vec<_> = shard_spans(3, 8).collect();
    assert_eq!(spans, vec![0..1, 1..2, 2..3]);
}
