//! Property-based tests of the two LRGP kernels: the Lagrangian rate
//! solver and the greedy admission, on randomized inputs.

use lrgp::admission::{allocate_consumers, AdmissionPolicy, PopulationMode};
use lrgp::rate::{solve_rate, AggregateUtility};
use lrgp_model::{NodeId, ProblemBuilder, RateBounds, Utility};
use proptest::prelude::*;

fn utility_strategy() -> impl Strategy<Value = Utility> {
    prop_oneof![
        (0.1f64..200.0).prop_map(Utility::log),
        (0.1f64..200.0, 0.05f64..0.95).prop_map(|(w, k)| Utility::power(w, k)),
        (0.1f64..200.0, 1.0f64..500.0).prop_map(|(w, s)| Utility::saturating(w, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The rate solver's answer maximizes Φ over the interval: no probe
    /// point beats it (up to numerical slack).
    #[test]
    fn solve_rate_is_optimal_on_probes(
        terms in proptest::collection::vec((1.0f64..1000.0, utility_strategy()), 1..5),
        price in 1e-4f64..1e3,
        lo in 0.5f64..50.0,
        width in 1.0f64..2000.0,
    ) {
        let bounds = RateBounds::new(lo, lo + width).unwrap();
        let agg = AggregateUtility::from_terms(terms);
        let phi = |r: f64| agg.value(r) - price * r;
        let r_star = solve_rate(&agg, price, bounds, lo);
        prop_assert!(bounds.contains(r_star, 1e-9));
        let best = phi(r_star);
        for k in 0..=20 {
            let probe = bounds.min + bounds.width() * k as f64 / 20.0;
            prop_assert!(
                best >= phi(probe) - 1e-6 * best.abs().max(1.0),
                "probe {probe} beats r* = {r_star}: {} > {best}",
                phi(probe)
            );
        }
    }

    /// Raising the price never raises the chosen rate (monotone demand).
    #[test]
    fn solve_rate_monotone_in_price(
        weight in 1.0f64..500.0,
        n in 1.0f64..2000.0,
        p1 in 1e-4f64..100.0,
        factor in 1.01f64..100.0,
    ) {
        let bounds = RateBounds::new(1.0, 1000.0).unwrap();
        let agg = AggregateUtility::from_terms([(n, Utility::log(weight))]);
        let r1 = solve_rate(&agg, p1, bounds, 1.0);
        let r2 = solve_rate(&agg, p1 * factor, bounds, 1.0);
        prop_assert!(r2 <= r1 + 1e-9, "price up, rate up: {r1} -> {r2}");
    }

    /// Greedy admission never violates the node budget when flow costs fit,
    /// under every mode/policy combination, and FFD admits at least as much
    /// total utility as the paper's stop-at-block greedy.
    #[test]
    fn admission_budget_and_ffd_dominance(
        specs in proptest::collection::vec(
            (1u32..500, 0.5f64..100.0, 0.5f64..40.0),
            1..6
        ),
        capacity in 1e3f64..1e6,
        rate in 1.0f64..500.0,
    ) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(capacity);
        let mut rates = Vec::new();
        for &(n_max, rank, g) in &specs {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, 0.0);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(rate);
        }
        let p = b.build().unwrap();
        let node = NodeId::new(0);

        let mut utilities = std::collections::HashMap::new();
        for mode in [PopulationMode::Integral, PopulationMode::Fractional] {
            for policy in [AdmissionPolicy::StopAtFirstBlock, AdmissionPolicy::FirstFitDecreasing] {
                let adm = allocate_consumers(&p, node, &rates, mode, policy);
                prop_assert!(adm.used <= capacity + 1e-6, "budget violated: {}", adm.used);
                let utility: f64 = adm
                    .populations
                    .iter()
                    .map(|&(c, n)| n * p.class(c).utility.value(rate))
                    .sum();
                utilities.insert((mode, policy), utility);
                // All populations within their caps.
                for &(c, n) in &adm.populations {
                    prop_assert!(n >= 0.0 && n <= p.class(c).max_population as f64);
                    if mode == PopulationMode::Integral {
                        prop_assert_eq!(n.fract(), 0.0);
                    }
                }
            }
        }
        let stop = utilities[&(PopulationMode::Integral, AdmissionPolicy::StopAtFirstBlock)];
        let ffd = utilities[&(PopulationMode::Integral, AdmissionPolicy::FirstFitDecreasing)];
        prop_assert!(ffd >= stop - 1e-9, "FFD {ffd} must dominate stop-at-block {stop}");
        let frac = utilities[&(PopulationMode::Fractional, AdmissionPolicy::FirstFitDecreasing)];
        prop_assert!(frac >= ffd - 1e-9, "fractional FFD {frac} must dominate integral {ffd}");
    }

    /// The node benefit–cost ratio equals the max ratio over unsaturated
    /// classes reported in the admission result.
    #[test]
    fn node_bc_is_max_over_unsaturated(
        specs in proptest::collection::vec(
            (1u32..50, 0.5f64..100.0, 1.0f64..40.0),
            1..5
        ),
        capacity in 1e2f64..1e5,
    ) {
        let mut b = ProblemBuilder::new();
        let sink = b.add_node(capacity);
        let mut rates = Vec::new();
        for &(n_max, rank, g) in &specs {
            let src = b.add_node(1e12);
            let f = b.add_flow(src, RateBounds::new(0.0, 1000.0).unwrap());
            b.set_node_cost(f, sink, 0.0);
            b.add_class(f, sink, n_max, Utility::log(rank), g);
            rates.push(100.0);
        }
        let p = b.build().unwrap();
        let adm = allocate_consumers(
            &p,
            NodeId::new(0),
            &rates,
            PopulationMode::Integral,
            AdmissionPolicy::StopAtFirstBlock,
        );
        let expected = adm
            .populations
            .iter()
            .filter(|&&(c, n)| n < p.class(c).max_population as f64)
            .map(|&(c, _)| lrgp::admission::benefit_cost(&p, c, 100.0))
            .fold(0.0f64, f64::max);
        prop_assert!((adm.benefit_cost - expected).abs() < 1e-12);
    }
}
