//! Property tests for the vectorized kernel layer's lane/tail boundaries.
//!
//! [`dot_gather`] splits a term list into unrolled chunks of [`LANES`]
//! elements plus a scalar tail, so every off-by-one in the chunking shows
//! up at term counts near lane multiples. The strategies here sweep counts
//! in `0..=3·LANES` — empty, sub-lane, exact one/two/three lanes, and
//! every ragged tail in between — and pin two contracts:
//!
//! * **Vectorized tracks scalar within 4 ULPs.** The lane partials
//!   reassociate the sum; with same-sign terms of comparable magnitude the
//!   reordering perturbs only the last couple of bits.
//! * **Strict is exact.** Below one full lane the vectorized sum degrades
//!   to the scalar tail loop plus a tree of zeros, so it is bitwise equal
//!   to the strict fold — and the strict engine itself must stay bitwise
//!   equal to the default engine, which is the `Numerics::Strict = default`
//!   guarantee the plan axis advertises.

use lrgp::kernel::rate::AggregateUtility;
use lrgp::kernel::vector::{dot_gather, GroupedAggregate, LANES};
use lrgp::{Engine, LrgpConfig, Numerics};
use lrgp_model::workloads::RandomWorkload;
use lrgp_model::{Utility, UtilityShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ULP distance between two finite f64s of the same sign.
fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(
        a.is_finite() && b.is_finite() && (a >= 0.0) == (b >= 0.0),
        "ulp distance needs finite same-sign inputs: {a} vs {b}"
    );
    a.to_bits().abs_diff(b.to_bits())
}

/// Term lists of every length in `0..=3·LANES`, with same-sign costs and
/// values a few binades wide (no catastrophic cancellation, which neither
/// the CSR tables nor the price vectors can produce: costs and prices are
/// non-negative by construction).
fn terms_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<(usize, f64)>)> {
    let values = proptest::collection::vec(0.125f64..8.0, 1..64);
    values.prop_flat_map(|values| {
        let len = values.len();
        let terms = proptest::collection::vec((0..len, 0.125f64..8.0), 0..=3 * LANES);
        (Just(values), terms)
    })
}

fn utility_strategy() -> impl Strategy<Value = Utility> {
    prop_oneof![
        (0.1f64..200.0).prop_map(Utility::log),
        (0.1f64..200.0, 0.05f64..0.95).prop_map(|(w, k)| Utility::power(w, k)),
        (0.1f64..200.0, 1.0f64..500.0).prop_map(|(w, s)| Utility::saturating(w, s)),
        (0.1f64..200.0).prop_map(Utility::linear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Across every lane/tail split in `0..=3·LANES`, the lane-batched
    /// gather dot product stays within 4 ULPs of the strict left-to-right
    /// fold.
    #[test]
    fn dot_gather_within_4_ulps_of_the_scalar_fold(
        (values, terms) in terms_strategy(),
    ) {
        let terms: Vec<(u32, f64)> =
            terms.into_iter().map(|(i, c)| (i as u32, c)).collect();
        let mut scalar = 0.0;
        for &(i, c) in &terms {
            scalar += c * values[i as usize];
        }
        let vectorized = dot_gather(&terms, &values);
        let ulps = ulp_distance(scalar, vectorized);
        prop_assert!(
            ulps <= 4,
            "dot_gather drifted {ulps} ULPs at {} terms: {scalar:?} vs {vectorized:?}",
            terms.len()
        );
    }

    /// Below one full lane the chunked loop never runs: the vectorized sum
    /// IS the scalar tail fold (plus an exactly-zero reduction tree), so
    /// it must be bit-identical, not merely close.
    #[test]
    fn dot_gather_is_bitwise_scalar_below_one_lane(
        (values, terms) in terms_strategy(),
    ) {
        let terms: Vec<(u32, f64)> = terms
            .into_iter()
            .take(LANES - 1)
            .map(|(i, c)| (i as u32, c))
            .collect();
        let mut scalar = 0.0;
        for &(i, c) in &terms {
            scalar += c * values[i as usize];
        }
        let vectorized = dot_gather(&terms, &values);
        prop_assert!(
            scalar.to_bits() == vectorized.to_bits(),
            "sub-lane gather must be exact: {scalar:?} vs {vectorized:?}"
        );
    }

    /// The shape-grouped derivative tracks the scalar per-term aggregate
    /// across term counts up to 3·LANES (grouping reassociates each
    /// family's mass sum, nothing more).
    #[test]
    fn grouped_derivative_tracks_scalar_aggregate(
        terms in proptest::collection::vec(
            (1.0f64..1000.0, utility_strategy()),
            0..=3 * LANES,
        ),
        rate in 0.5f64..2000.0,
    ) {
        let scalar = AggregateUtility::from_terms(terms.iter().cloned());
        let mut grouped = GroupedAggregate::default();
        for &(n, u) in &terms {
            grouped.push(n, u);
        }
        prop_assert_eq!(scalar.is_empty(), grouped.is_empty());
        let a = scalar.derivative(rate);
        let b = grouped.derivative(rate);
        prop_assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(1.0),
            "grouped derivative drifted at {} terms, rate {rate}: {a:?} vs {b:?}",
            terms.len()
        );
    }
}

proptest! {
    // Engine pairs are costlier than kernel calls; fewer cases suffice.
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `Numerics::Strict` — the default — runs the exact scalar code the
    /// engine always ran: an explicitly-strict engine must stay
    /// `to_bits`-identical to a default-config engine, step by step.
    #[test]
    fn strict_engine_is_bitwise_the_default_engine(
        flows in 2usize..16,
        cnodes in 1usize..6,
        classes in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let workload = RandomWorkload {
            flows,
            consumer_nodes: cnodes,
            classes_per_flow: classes,
            shape: UtilityShape::Log,
            mixed_shapes: true,
            ..RandomWorkload::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        let strict_config =
            LrgpConfig { numerics: Numerics::Strict, ..LrgpConfig::default() };
        let mut default_engine = Engine::new(problem.clone(), LrgpConfig::default());
        let mut strict_engine = Engine::new(problem, strict_config);
        for k in 1..=25 {
            let u_default = default_engine.step();
            let u_strict = strict_engine.step();
            prop_assert!(
                u_default.to_bits() == u_strict.to_bits(),
                "explicit Strict diverged from the default at iteration {}: {:?} vs {:?}",
                k, u_default, u_strict
            );
        }
    }
}
