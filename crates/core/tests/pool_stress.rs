//! Stress suite for the persistent worker pool (`lrgp::pool`).
//!
//! The pool's risk profile is classic shared-state concurrency: a lost
//! wakeup parks a worker forever, a missed `done` notification wedges the
//! caller, and a respawn-per-step bug silently reintroduces the spawn/join
//! cost the pool exists to remove. Each test hammers one of those failure
//! modes under a watchdog: thousands of tiny steps through one pool,
//! several pools interleaved on one thread, pools driven concurrently from
//! many threads, and clone/drop churn. Every test also keeps a sequential
//! reference engine in lockstep, so a scheduling bug that corrupts results
//! (rather than hanging) still fails loudly via `f64::to_bits` equality.
//!
//! Dispatch is forced (`Engine::force_pool_dispatch`) so the cross-thread
//! handoff is exercised even on single-CPU hosts, where the pool would
//! otherwise run shards inline on the caller.

use lrgp::{Engine, LrgpConfig, Parallelism};
use lrgp_model::workloads::base_workload;
use std::collections::HashSet;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Runs `body` on a helper thread and fails the test if it has not
/// finished within `timeout` — a deadlock or lost wakeup in the pool shows
/// up as this panic instead of a CI-level job timeout.
fn with_watchdog<F>(name: &str, timeout: Duration, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let worker = thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            body();
            let _ = tx.send(());
        })
        .expect("spawning the watchdog body thread");
    match rx.recv_timeout(timeout) {
        Ok(()) => worker.join().expect("watchdog body panicked"),
        Err(_) => panic!(
            "watchdog: `{name}` did not finish within {timeout:?} — \
             pool deadlock or lost wakeup"
        ),
    }
}

fn pooled_config(workers: usize) -> LrgpConfig {
    LrgpConfig { parallelism: Parallelism::Threads(workers), ..LrgpConfig::default() }
}

#[test]
fn thousands_of_tiny_steps_reuse_the_same_workers() {
    with_watchdog("tiny-steps", Duration::from_secs(300), || {
        let mut engine = Engine::new(base_workload(), pooled_config(3));
        engine.force_pool_dispatch(true);
        let ids_before = engine.pool_worker_ids();
        // Threads(3) = the caller plus two pooled workers, each a distinct
        // OS thread.
        assert_eq!(ids_before.len(), 2, "Threads(3) should hold 2 pooled workers");
        let distinct: HashSet<_> = ids_before.iter().collect();
        assert_eq!(distinct.len(), ids_before.len(), "worker thread ids must be distinct");

        let mut reference = Engine::new(base_workload(), LrgpConfig::default());
        for k in 0..2_000 {
            let pooled = engine.step();
            let expected = reference.step();
            assert_eq!(
                expected.to_bits(),
                pooled.to_bits(),
                "pooled utility diverged from sequential at step {k}"
            );
        }

        // The same threads served every step: no respawning mid-run.
        assert_eq!(
            ids_before,
            engine.pool_worker_ids(),
            "worker threads were respawned during the run"
        );
        // And they actually worked — the base workload dispatches the rate
        // and admission phases every step, so each worker completed at
        // least one job per step.
        let jobs = engine.pool_jobs_completed();
        assert!(
            jobs.iter().all(|&count| count >= 2_000),
            "every worker should have run a shard of every step, got {jobs:?}"
        );
    });
}

#[test]
fn interleaved_engines_with_separate_pools_stay_in_lockstep() {
    with_watchdog("interleaved", Duration::from_secs(300), || {
        // Four pools parked and woken alternately from one driver thread;
        // worker counts straddle the workload's 6 flows so shard layouts
        // differ per engine.
        let mut pooled: Vec<Engine> = [2usize, 3, 4, 7]
            .iter()
            .map(|&w| {
                let engine = Engine::new(base_workload(), pooled_config(w));
                engine.force_pool_dispatch(true);
                engine
            })
            .collect();
        let mut reference = Engine::new(base_workload(), LrgpConfig::default());
        for k in 0..1_000 {
            let expected = reference.step();
            for (engine, w) in pooled.iter_mut().zip([2usize, 3, 4, 7]) {
                let got = engine.step();
                assert_eq!(
                    expected.to_bits(),
                    got.to_bits(),
                    "Threads({w}) diverged from sequential at step {k}"
                );
            }
        }
    });
}

#[test]
fn engines_step_concurrently_from_many_threads() {
    with_watchdog("concurrent-engines", Duration::from_secs(300), || {
        let expected = {
            let mut engine = Engine::new(base_workload(), LrgpConfig::default());
            engine.run(800)
        };
        // Each driver thread owns an engine (and thus a pool); they all run
        // at once, so pool wakeups from different pools interleave on the
        // scheduler.
        let drivers: Vec<_> = (0..4)
            .map(|i| {
                thread::spawn(move || {
                    let engine = &mut Engine::new(base_workload(), pooled_config(2 + i % 3));
                    engine.force_pool_dispatch(true);
                    engine.run(800)
                })
            })
            .collect();
        for driver in drivers {
            let got = driver.join().expect("driver thread panicked");
            assert_eq!(expected.to_bits(), got.to_bits(), "concurrent engine diverged");
        }
    });
}

#[test]
fn clone_and_drop_churn_neither_wedges_nor_diverges() {
    with_watchdog("clone-drop", Duration::from_secs(300), || {
        let mut engine = Engine::new(base_workload(), pooled_config(3));
        engine.force_pool_dispatch(true);
        engine.run(25);
        let ids_before = engine.pool_worker_ids();
        for round in 0..50 {
            // A clone gets a fresh pool of the same size; stepping both and
            // then dropping the clone joins its workers cleanly.
            let mut clone = engine.clone();
            clone.force_pool_dispatch(true);
            let original = engine.step();
            let cloned = clone.step();
            assert_eq!(
                original.to_bits(),
                cloned.to_bits(),
                "clone diverged from original at round {round}"
            );
        }
        assert_eq!(
            ids_before,
            engine.pool_worker_ids(),
            "clone churn must not disturb the original engine's pool"
        );
    });
}
