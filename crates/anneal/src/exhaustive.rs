//! Exhaustive grid search for tiny instances.
//!
//! The paper notes that "the size of the solution space does not allow
//! exhaustive search for the workloads we have presented" — but for *tiny*
//! problems (a flow or two, a handful of consumers) exhaustive enumeration
//! is the ground truth against which LRGP and the annealing baseline are
//! validated in this repository's tests.

use lrgp_model::{Allocation, Problem};

/// Error returned when the exhaustive search space is too large.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceTooLarge {
    /// Number of population/rate combinations the request would enumerate.
    pub combinations: u128,
    /// The configured limit.
    pub limit: u128,
}

impl std::fmt::Display for SpaceTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive search space has {} combinations (limit {})",
            self.combinations, self.limit
        )
    }
}

impl std::error::Error for SpaceTooLarge {}

/// Result of an exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveOutcome {
    /// The best feasible allocation on the grid.
    pub best: Allocation,
    /// Its utility.
    pub best_utility: f64,
    /// Feasible grid points visited.
    pub feasible_points: u64,
    /// Total grid points visited.
    pub total_points: u64,
}

/// Enumerates every population vector × every rate grid point and returns
/// the best feasible allocation.
///
/// Rates are discretized to `rate_grid` evenly spaced points per flow
/// (including both bounds). Populations enumerate `0..=n_j^max` per class.
///
/// # Errors
///
/// Returns [`SpaceTooLarge`] when the total number of combinations exceeds
/// `limit` — call sites should keep instances tiny (this is a test oracle,
/// not an optimizer).
#[must_use = "this Result reports a failure the caller must handle"]
pub fn exhaustive_search(
    problem: &Problem,
    rate_grid: usize,
    limit: u128,
) -> Result<ExhaustiveOutcome, SpaceTooLarge> {
    assert!(rate_grid >= 1, "rate grid must have at least one point");
    let mut combinations: u128 = 1;
    for c in problem.class_ids() {
        combinations =
            combinations.saturating_mul(problem.class(c).max_population as u128 + 1);
    }
    for _ in problem.flow_ids() {
        combinations = combinations.saturating_mul(rate_grid as u128);
    }
    if combinations > limit {
        return Err(SpaceTooLarge { combinations, limit });
    }

    let rate_points: Vec<Vec<f64>> = problem
        .flow_ids()
        .map(|f| {
            let b = problem.flow(f).bounds;
            if rate_grid == 1 || b.width() == 0.0 {
                vec![b.min]
            } else {
                (0..rate_grid)
                    .map(|k| b.min + b.width() * k as f64 / (rate_grid - 1) as f64)
                    .collect()
            }
        })
        .collect();
    let pop_maxes: Vec<u32> =
        problem.class_ids().map(|c| problem.class(c).max_population).collect();

    let mut best: Option<Allocation> = None;
    let mut best_utility = f64::NEG_INFINITY;
    let mut feasible_points = 0;
    let mut total_points = 0;

    let mut rate_idx = vec![0usize; problem.num_flows()];
    loop {
        let rates: Vec<f64> =
            rate_idx.iter().enumerate().map(|(f, &k)| rate_points[f][k]).collect();
        let mut pops = vec![0u32; problem.num_classes()];
        loop {
            total_points += 1;
            let alloc = Allocation::from_parts(
                problem,
                rates.clone(),
                pops.iter().map(|&n| n as f64).collect(),
            );
            if alloc.is_feasible(problem, 1e-9) {
                feasible_points += 1;
                let u = alloc.total_utility(problem);
                if u > best_utility {
                    best_utility = u;
                    best = Some(alloc);
                }
            }
            // Odometer over populations.
            let mut carry = true;
            for (n, &max) in pops.iter_mut().zip(&pop_maxes) {
                if !carry {
                    break;
                }
                if *n < max {
                    *n += 1;
                    carry = false;
                } else {
                    *n = 0;
                }
            }
            if carry {
                break;
            }
        }
        // Odometer over rates.
        let mut carry = true;
        for (k, points) in rate_idx.iter_mut().zip(&rate_points) {
            if !carry {
                break;
            }
            if *k + 1 < points.len() {
                *k += 1;
                carry = false;
            } else {
                *k = 0;
            }
        }
        if carry {
            break;
        }
    }

    // lrgp-lint: allow(library-unwrap, reason = "the all-zero grid point is always enumerated and feasible, so best is Some")
    let best = best.expect("the all-zero population point is always enumerated");
    Ok(ExhaustiveOutcome { best, best_utility, feasible_points, total_points })
}

/// Exact exhaustive search for *single-attachment* problems: every flow
/// reaches exactly one node and traverses no links.
///
/// Populations are enumerated exhaustively as in [`exhaustive_search`], but
/// for each population vector the rates are solved **exactly**: with
/// populations fixed, each node's rate subproblem is convex (separable
/// increasing concave objective over one linear constraint), solved by
/// bisection on the node's Lagrange multiplier. The result is therefore the
/// true global optimum (up to 1e-9 multiplier tolerance), making this the
/// strongest available oracle: no heuristic may exceed it.
///
/// # Errors
///
/// Returns [`SpaceTooLarge`] when the population space exceeds `limit`.
///
/// # Panics
///
/// Panics if some flow reaches more than one node or traverses a link
/// (the multiplier decomposition would no longer be exact).
#[must_use = "this Result reports a failure the caller must handle"]
pub fn exhaustive_search_exact_rates(
    problem: &Problem,
    limit: u128,
) -> Result<ExhaustiveOutcome, SpaceTooLarge> {
    use lrgp::kernel::rate::{solve_rate, AggregateUtility};

    for f in problem.flow_ids() {
        assert!(
            problem.nodes_of_flow(f).len() == 1 && problem.links_of_flow(f).is_empty(),
            "exact oracle requires every flow to reach exactly one node with no links"
        );
    }
    let mut combinations: u128 = 1;
    for c in problem.class_ids() {
        combinations =
            combinations.saturating_mul(problem.class(c).max_population as u128 + 1);
    }
    if combinations > limit {
        return Err(SpaceTooLarge { combinations, limit });
    }

    let pop_maxes: Vec<u32> =
        problem.class_ids().map(|c| problem.class(c).max_population).collect();
    let mut pops = vec![0u32; problem.num_classes()];
    let mut best: Option<Allocation> = None;
    let mut best_utility = f64::NEG_INFINITY;
    let mut feasible_points = 0u64;
    let mut total_points = 0u64;

    loop {
        total_points += 1;
        let populations: Vec<f64> = pops.iter().map(|&n| n as f64).collect();
        // Solve rates node by node.
        let mut rates = vec![0.0; problem.num_flows()];
        let mut feasible = true;
        'nodes: for node in problem.node_ids() {
            let flows = problem.flows_at_node(node);
            if flows.is_empty() {
                continue;
            }
            let capacity = problem.node(node).capacity;
            // Per-flow linear coefficient a_i = F + Σ G·n_j and aggregate
            // utility.
            let entries: Vec<(usize, f64, AggregateUtility, lrgp_model::RateBounds)> = flows
                .iter()
                .map(|&f| {
                    let mut a = problem.flow_node_cost(node, f);
                    for class in problem.classes_of_flow_at_node(f, node) {
                        a += problem.class(class).consumer_cost * populations[class.index()];
                    }
                    (
                        f.index(),
                        a,
                        AggregateUtility::for_flow(problem, f, &populations),
                        problem.flow(f).bounds,
                    )
                })
                .collect();
            let usage_at = |lambda: f64, rates: &mut Vec<f64>| -> f64 {
                let mut total = 0.0;
                for (idx, a, agg, bounds) in &entries {
                    let r = if *a == 0.0 {
                        bounds.max
                    } else {
                        solve_rate(agg, lambda * a, *bounds, bounds.min)
                    };
                    rates[*idx] = r;
                    total += a * r;
                }
                total
            };
            // Unconstrained (λ = 0) solution feasible?
            if usage_at(0.0, &mut rates) <= capacity + 1e-9 {
                continue;
            }
            // Find a bracketing λ_hi.
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            let mut guard = 0;
            while usage_at(hi, &mut rates) > capacity {
                lo = hi;
                hi *= 2.0;
                guard += 1;
                if guard > 200 {
                    // Even enormous prices cannot fit (minimum rates alone
                    // overflow): population vector infeasible.
                    feasible = false;
                    break 'nodes;
                }
            }
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if usage_at(mid, &mut rates) > capacity {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if hi - lo < 1e-12 * hi.max(1.0) {
                    break;
                }
            }
            // Final rates at the feasible end of the bracket.
            let final_usage = usage_at(hi, &mut rates);
            if final_usage > capacity + 1e-6 {
                feasible = false;
                break 'nodes;
            }
        }
        if feasible {
            let alloc = Allocation::from_parts(problem, rates, populations);
            debug_assert!(alloc.is_feasible(problem, 1e-6), "oracle produced infeasible point");
            feasible_points += 1;
            let u = alloc.total_utility(problem);
            if u > best_utility {
                best_utility = u;
                best = Some(alloc);
            }
        }
        // Odometer over populations.
        let mut carry = true;
        for (n, &max) in pops.iter_mut().zip(&pop_maxes) {
            if !carry {
                break;
            }
            if *n < max {
                *n += 1;
                carry = false;
            } else {
                *n = 0;
            }
        }
        if carry {
            break;
        }
    }

    // lrgp-lint: allow(library-unwrap, reason = "the all-zero/minimum-rate point is always enumerated and feasible, so best is Some")
    let best = best.expect("all-zero populations with minimum rates must be enumerated");
    Ok(ExhaustiveOutcome { best, best_utility, feasible_points, total_points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};

    /// One flow into one node: capacity fits `cap_consumers` consumers at
    /// the max rate.
    fn tiny(n_max: u32, capacity: f64) -> Problem {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e12);
        let sink = b.add_node(capacity);
        let f = b.add_flow(src, RateBounds::new(10.0, 100.0).unwrap());
        b.set_node_cost(f, sink, 1.0);
        b.add_class(f, sink, n_max, Utility::log(10.0), 2.0);
        b.build().unwrap()
    }

    #[test]
    fn finds_saturating_optimum_when_capacity_ample() {
        // Capacity 1e6: even n = 8, r = 100 uses 1 · 100 + 2·8·100 = 1700.
        let p = tiny(8, 1e6);
        let out = exhaustive_search(&p, 10, 1_000_000).unwrap();
        // Optimum: everyone admitted at max rate.
        assert_eq!(out.best.populations(), &[8.0]);
        assert_eq!(out.best.rates(), &[100.0]);
        let expected = 8.0 * 10.0 * 101.0f64.ln();
        assert!((out.best_utility - expected).abs() < 1e-9);
        assert_eq!(out.total_points, 9 * 10);
        assert_eq!(out.feasible_points, out.total_points);
    }

    #[test]
    fn respects_capacity_tradeoff() {
        // Capacity 500: at r = 100, F·r = 100 leaves room for 2 consumers
        // (2·100 each); at r = 10 it fits 8 consumers easily. The optimal
        // grid point trades rate against population.
        let p = tiny(8, 500.0);
        let out = exhaustive_search(&p, 10, 1_000_000).unwrap();
        assert!(out.best.is_feasible(&p, 1e-9));
        // Check optimality against a brute-force re-scan.
        let mut best = f64::NEG_INFINITY;
        for k in 0..10 {
            let r = 10.0 + 90.0 * k as f64 / 9.0;
            for n in 0..=8 {
                let a = Allocation::from_parts(&p, vec![r], vec![n as f64]);
                if a.is_feasible(&p, 1e-9) {
                    best = best.max(a.total_utility(&p));
                }
            }
        }
        assert!((out.best_utility - best).abs() < 1e-9);
        assert!(out.feasible_points < out.total_points);
    }

    #[test]
    fn rejects_oversized_spaces() {
        let p = tiny(1_000_000, 1e6);
        let err = exhaustive_search(&p, 10, 1_000).unwrap_err();
        assert!(err.combinations > err.limit);
        assert!(err.to_string().contains("combinations"));
    }

    #[test]
    fn exact_oracle_dominates_grid_oracle() {
        let p = tiny(8, 500.0);
        let grid = exhaustive_search(&p, 25, 1_000_000).unwrap();
        let exact = exhaustive_search_exact_rates(&p, 1_000_000).unwrap();
        assert!(exact.best_utility >= grid.best_utility - 1e-9);
        assert!(exact.best.is_feasible(&p, 1e-6));
    }

    #[test]
    fn exact_oracle_matches_hand_solution_when_capacity_ample() {
        let p = tiny(8, 1e6);
        let exact = exhaustive_search_exact_rates(&p, 1_000_000).unwrap();
        assert_eq!(exact.best.populations(), &[8.0]);
        assert!((exact.best.rates()[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn exact_oracle_balances_two_flows_on_one_node() {
        // Two flows, one node: with equal consumer masses the optimal rates
        // are equal; with unequal masses the heavier flow gets more.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_node(1e12);
        let s1 = b.add_node(1e12);
        let sink = b.add_node(1_000.0);
        let f0 = b.add_flow(s0, RateBounds::new(1.0, 500.0).unwrap());
        let f1 = b.add_flow(s1, RateBounds::new(1.0, 500.0).unwrap());
        b.set_node_cost(f0, sink, 1.0);
        b.set_node_cost(f1, sink, 1.0);
        b.add_class(f0, sink, 1, Utility::log(30.0), 1.0);
        b.add_class(f1, sink, 1, Utility::log(10.0), 1.0);
        let p = b.build().unwrap();
        let exact = exhaustive_search_exact_rates(&p, 1_000).unwrap();
        // Best admits both consumers; rates split 3:1 in (1+r) terms under
        // the binding constraint 2(r0 + r1) = 1000... (a = F + G·n = 2).
        assert_eq!(exact.best.populations(), &[1.0, 1.0]);
        let (r0, r1) = (exact.best.rates()[0], exact.best.rates()[1]);
        assert!(r0 > r1, "heavier class should get more rate: {r0} vs {r1}");
        let usage = 2.0 * (r0 + r1);
        assert!((usage - 1_000.0).abs() < 1e-3, "constraint should bind: {usage}");
        assert!(((1.0 + r0) / (1.0 + r1) - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "exactly one node")]
    fn exact_oracle_rejects_multi_node_flows() {
        let mut b = ProblemBuilder::new();
        let src = b.add_node(1e12);
        let a = b.add_node(1e6);
        let c = b.add_node(1e6);
        let f = b.add_flow(src, RateBounds::new(1.0, 10.0).unwrap());
        b.set_node_cost(f, a, 1.0);
        b.set_node_cost(f, c, 1.0);
        b.add_class(f, a, 1, Utility::log(1.0), 1.0);
        b.add_class(f, c, 1, Utility::log(1.0), 1.0);
        let p = b.build().unwrap();
        let _ = exhaustive_search_exact_rates(&p, 1_000);
    }

    #[test]
    fn single_grid_point_uses_min_rate() {
        let p = tiny(2, 1e6);
        let out = exhaustive_search(&p, 1, 1_000).unwrap();
        assert_eq!(out.best.rates(), &[10.0]);
        assert_eq!(out.best.populations(), &[2.0]);
    }
}
