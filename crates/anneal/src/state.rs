//! Incrementally evaluated search state shared by the centralized
//! baselines.
//!
//! A [`SearchState`] keeps the current rates/populations together with
//! cached node usages, link usages and total utility, and applies moves in
//! `O(affected entities)` instead of recomputing the whole objective. The
//! caches are exact (they are recomputed from scratch only in tests), which
//! keeps 10⁶–10⁸-step annealing runs tractable.

use lrgp_model::{Allocation, ClassId, FlowId, Problem};

/// A candidate move in the (rates × populations) search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Move {
    /// Set flow `flow`'s rate to `rate` (already clamped by the proposer).
    SetRate {
        /// The flow whose rate changes.
        flow: FlowId,
        /// The proposed new rate.
        rate: f64,
    },
    /// Set class `class`'s population to `population` (already clamped).
    SetPopulation {
        /// The class whose population changes.
        class: ClassId,
        /// The proposed new population.
        population: f64,
    },
}

/// Mutable search state over a [`Problem`] with incremental evaluation.
#[derive(Debug, Clone)]
pub struct SearchState<'p> {
    problem: &'p Problem,
    rates: Vec<f64>,
    populations: Vec<f64>,
    node_used: Vec<f64>,
    link_used: Vec<f64>,
    utility: f64,
}

impl<'p> SearchState<'p> {
    /// Builds the state from an allocation, computing all caches.
    pub fn new(problem: &'p Problem, allocation: &Allocation) -> Self {
        let rates = allocation.rates().to_vec();
        let populations = allocation.populations().to_vec();
        let node_used =
            problem.node_ids().map(|n| allocation.node_usage(problem, n)).collect();
        let link_used =
            problem.link_ids().map(|l| allocation.link_usage(problem, l)).collect();
        let utility = allocation.total_utility(problem);
        Self { problem, rates, populations, node_used, link_used, utility }
    }

    /// The feasible all-minimum starting state.
    pub fn lower_bounds(problem: &'p Problem) -> Self {
        Self::new(problem, &Allocation::lower_bounds(problem))
    }

    /// Current total utility (cached).
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// Current rate of `flow`.
    pub fn rate(&self, flow: FlowId) -> f64 {
        self.rates[flow.index()]
    }

    /// Current population of `class`.
    pub fn population(&self, class: ClassId) -> f64 {
        self.populations[class.index()]
    }

    /// Snapshot as an [`Allocation`].
    pub fn to_allocation(&self) -> Allocation {
        Allocation::from_parts(self.problem, self.rates.clone(), self.populations.clone())
    }

    /// The problem this state searches over.
    pub fn problem(&self) -> &'p Problem {
        self.problem
    }

    /// Evaluates a move without applying it: returns `Some(utility_delta)`
    /// when the move keeps every touched constraint feasible, `None` when it
    /// would violate one (bound violations are the proposer's bug and are
    /// checked by `debug_assert`).
    pub fn evaluate(&self, mv: Move) -> Option<f64> {
        match mv {
            Move::SetRate { flow, rate } => {
                let bounds = self.problem.flow(flow).bounds;
                debug_assert!(bounds.contains(rate, 1e-12), "proposer must clamp rates");
                let old = self.rates[flow.index()];
                let delta_r = rate - old;
                // Node feasibility: usage changes by (F + Σ G n_j) · Δr.
                for &(node, f_cost) in self.problem.nodes_of_flow(flow) {
                    let mut per_rate = f_cost;
                    for class in self.problem.classes_of_flow_at_node(flow, node) {
                        per_rate += self.problem.class(class).consumer_cost
                            * self.populations[class.index()];
                    }
                    let next = self.node_used[node.index()] + per_rate * delta_r;
                    if next > self.problem.node(node).capacity + 1e-9 {
                        return None;
                    }
                }
                for &(link, l_cost) in self.problem.links_of_flow(flow) {
                    let next = self.link_used[link.index()] + l_cost * delta_r;
                    if next > self.problem.link(link).capacity + 1e-9 {
                        return None;
                    }
                }
                let mut delta_u = 0.0;
                for &class in self.problem.classes_of_flow(flow) {
                    let n = self.populations[class.index()];
                    if n > 0.0 {
                        let u = self.problem.class(class).utility;
                        delta_u += n * (u.value(rate) - u.value(old));
                    }
                }
                Some(delta_u)
            }
            Move::SetPopulation { class, population } => {
                let spec = self.problem.class(class);
                debug_assert!(
                    (0.0..=spec.max_population as f64 + 1e-12).contains(&population),
                    "proposer must clamp populations"
                );
                let old = self.populations[class.index()];
                let delta_n = population - old;
                let rate = self.rates[spec.flow.index()];
                let node = spec.node;
                let next =
                    self.node_used[node.index()] + spec.consumer_cost * delta_n * rate;
                if next > self.problem.node(node).capacity + 1e-9 {
                    return None;
                }
                Some(delta_n * spec.utility.value(rate))
            }
        }
    }

    /// Applies a move previously vetted by [`Self::evaluate`], updating all
    /// caches. Returns the utility delta.
    pub fn apply(&mut self, mv: Move) -> f64 {
        match mv {
            Move::SetRate { flow, rate } => {
                let old = self.rates[flow.index()];
                let delta_r = rate - old;
                for &(node, f_cost) in self.problem.nodes_of_flow(flow) {
                    let mut per_rate = f_cost;
                    for class in self.problem.classes_of_flow_at_node(flow, node) {
                        per_rate += self.problem.class(class).consumer_cost
                            * self.populations[class.index()];
                    }
                    self.node_used[node.index()] += per_rate * delta_r;
                }
                for &(link, l_cost) in self.problem.links_of_flow(flow) {
                    self.link_used[link.index()] += l_cost * delta_r;
                }
                let mut delta_u = 0.0;
                for &class in self.problem.classes_of_flow(flow) {
                    let n = self.populations[class.index()];
                    if n > 0.0 {
                        let u = self.problem.class(class).utility;
                        delta_u += n * (u.value(rate) - u.value(old));
                    }
                }
                self.rates[flow.index()] = rate;
                self.utility += delta_u;
                delta_u
            }
            Move::SetPopulation { class, population } => {
                let spec = self.problem.class(class);
                let old = self.populations[class.index()];
                let delta_n = population - old;
                let rate = self.rates[spec.flow.index()];
                self.node_used[spec.node.index()] += spec.consumer_cost * delta_n * rate;
                let delta_u = delta_n * spec.utility.value(rate);
                self.populations[class.index()] = population;
                self.utility += delta_u;
                delta_u
            }
        }
    }

    /// Recomputes every cache from scratch (testing / paranoia hook).
    /// Returns the maximum absolute cache drift found before the rebuild.
    pub fn rebuild_caches(&mut self) -> f64 {
        let alloc = self.to_allocation();
        let mut drift: f64 = 0.0;
        for node in self.problem.node_ids() {
            let exact = alloc.node_usage(self.problem, node);
            drift = drift.max((exact - self.node_used[node.index()]).abs());
            self.node_used[node.index()] = exact;
        }
        for link in self.problem.link_ids() {
            let exact = alloc.link_usage(self.problem, link);
            drift = drift.max((exact - self.link_used[link.index()]).abs());
            self.link_used[link.index()] = exact;
        }
        let exact = alloc.total_utility(self.problem);
        drift = drift.max((exact - self.utility).abs());
        self.utility = exact;
        drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;
    use lrgp_model::RateBounds;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lower_bounds_state_matches_direct_evaluation() {
        let p = base_workload();
        let s = SearchState::lower_bounds(&p);
        assert_eq!(s.utility(), 0.0);
        assert_eq!(s.rate(FlowId::new(0)), 10.0);
        assert_eq!(s.population(ClassId::new(0)), 0.0);
    }

    #[test]
    fn population_move_evaluates_and_applies() {
        let p = base_workload();
        let mut s = SearchState::lower_bounds(&p);
        let mv = Move::SetPopulation { class: ClassId::new(18), population: 10.0 };
        let delta = s.evaluate(mv).expect("feasible");
        let expected = 10.0 * 100.0 * (11.0f64).ln(); // rank 100 at rate 10
        assert!((delta - expected).abs() < 1e-9);
        let applied = s.apply(mv);
        assert!((applied - delta).abs() < 1e-12);
        assert!((s.utility() - expected).abs() < 1e-9);
    }

    #[test]
    fn infeasible_population_move_rejected() {
        let p = base_workload();
        let mut s = SearchState::lower_bounds(&p);
        // Max out the rate first so consumers are expensive.
        s.apply(Move::SetRate { flow: FlowId::new(5), rate: 1000.0 });
        // 9e5 / (19·1000) ≈ 47 consumers fit; 100 do not.
        let mv = Move::SetPopulation { class: ClassId::new(18), population: 100.0 };
        assert_eq!(s.evaluate(mv), None);
        let ok = Move::SetPopulation { class: ClassId::new(18), population: 40.0 };
        assert!(s.evaluate(ok).is_some());
    }

    #[test]
    fn infeasible_rate_move_rejected() {
        let p = base_workload();
        let mut s = SearchState::lower_bounds(&p);
        // Fill a node with consumers at the low rate, then try to raise the
        // rate past what the node can carry.
        s.apply(Move::SetPopulation { class: ClassId::new(18), population: 1500.0 });
        // Usage at S1: 19·1500·r + flow costs; capacity 9e5 ⇒ r ≲ 31.
        let bad = Move::SetRate { flow: FlowId::new(5), rate: 100.0 };
        assert_eq!(s.evaluate(bad), None);
        let good = Move::SetRate { flow: FlowId::new(5), rate: 25.0 };
        assert!(s.evaluate(good).is_some());
    }

    #[test]
    fn random_walk_keeps_caches_exact() {
        let p = base_workload();
        let mut s = SearchState::lower_bounds(&p);
        let mut rng = StdRng::seed_from_u64(42);
        let mut applied = 0;
        for _ in 0..2000 {
            let mv = if rng.gen_bool(0.5) {
                let flow = FlowId::new(rng.gen_range(0..p.num_flows() as u32));
                let RateBounds { min, max } = p.flow(flow).bounds;
                Move::SetRate { flow, rate: rng.gen_range(min..=max) }
            } else {
                let class = ClassId::new(rng.gen_range(0..p.num_classes() as u32));
                let max = p.class(class).max_population as f64;
                Move::SetPopulation { class, population: rng.gen_range(0.0..=max).floor() }
            };
            if s.evaluate(mv).is_some() {
                s.apply(mv);
                applied += 1;
            }
        }
        assert!(applied > 100, "walk too constrained: {applied}");
        let drift = s.clone().rebuild_caches();
        assert!(drift < 1e-6, "cache drift {drift}");
        // And the final state is genuinely feasible.
        assert!(s.to_allocation().is_feasible(&p, 1e-6));
    }

    #[test]
    fn evaluate_does_not_mutate() {
        let p = base_workload();
        let s = SearchState::lower_bounds(&p);
        let before = s.to_allocation();
        let _ = s.evaluate(Move::SetPopulation { class: ClassId::new(0), population: 5.0 });
        assert_eq!(s.to_allocation(), before);
        assert_eq!(s.utility(), 0.0);
    }
}
