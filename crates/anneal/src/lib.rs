//! Centralized baselines for the LRGP reproduction.
//!
//! The paper compares LRGP against a **centralized simulated annealing**
//! solver (§4.4) sweeping start temperatures {5, 10, 50, 100} and step
//! budgets {10⁶, 10⁷, 10⁸} with geometric cooling (×0.999 per round, stop at
//! T ≤ 1), reporting the best run per workload. This crate implements that
//! solver plus supporting baselines:
//!
//! * [`sa`] — simulated annealing with the paper's cooling schedule, the
//!   parallel sweep harness, and the hill-climbing / random-walk ablations.
//! * [`state`] — the incrementally evaluated search state shared by all
//!   baselines (`O(touched entities)` per move).
//! * [`exhaustive`] — exact grid enumeration for tiny instances, used as a
//!   ground-truth oracle in tests.
//!
//! # Examples
//!
//! ```
//! use lrgp_anneal::{anneal, AnnealConfig};
//! use lrgp_model::workloads;
//!
//! let problem = workloads::base_workload();
//! let config = AnnealConfig::paper(5.0, 50_000, 42);
//! let outcome = anneal(&problem, &config);
//! assert!(outcome.best.is_feasible(&problem, 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exhaustive;
pub mod sa;
pub mod state;

pub use exhaustive::{exhaustive_search, exhaustive_search_exact_rates, ExhaustiveOutcome, SpaceTooLarge};
pub use sa::{
    anneal, anneal_from, hill_climb, random_walk, sweep, AnnealConfig, CoolingSchedule,
    SearchOutcome, SweepRun,
};
pub use state::{Move, SearchState};
