//! Centralized simulated annealing (§4.4).
//!
//! The paper evaluates LRGP against "a centralized approach based on
//! simulated annealing" with a geometric cooling schedule: a start
//! temperature in {5, 10, 50, 100}, multiplied by 0.999 after each round,
//! stopping at T ≤ 1, with a total step budget (10⁶–10⁸) divided equally
//! among the rounds. Moves perturb one flow rate or one class population;
//! infeasible moves are rejected outright.

use crate::state::{Move, SearchState};
use lrgp_model::{Allocation, ClassId, FlowId, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The paper's geometric cooling schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingSchedule {
    /// Initial temperature.
    pub start_temperature: f64,
    /// Multiplicative factor applied per round (paper: 0.999).
    pub cooling_factor: f64,
    /// Simulation ends when the temperature is ≤ this (paper: 1.0).
    pub stop_temperature: f64,
}

impl CoolingSchedule {
    /// The paper's schedule with the given start temperature.
    pub fn paper(start_temperature: f64) -> Self {
        Self { start_temperature, cooling_factor: 0.999, stop_temperature: 1.0 }
    }

    /// Number of temperature rounds until the stop temperature is reached.
    pub fn rounds(&self) -> u64 {
        let mut t = self.start_temperature;
        let mut rounds = 0;
        while t > self.stop_temperature {
            t *= self.cooling_factor;
            rounds += 1;
        }
        rounds.max(1)
    }

    /// Iterator over the round temperatures (before each multiplication).
    pub fn temperatures(&self) -> impl Iterator<Item = f64> + '_ {
        let mut t = self.start_temperature;
        let stop = self.stop_temperature;
        let factor = self.cooling_factor;
        std::iter::from_fn(move || {
            if t > stop {
                let current = t;
                t *= factor;
                Some(current)
            } else {
                None
            }
        })
    }
}

/// Simulated annealing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Cooling schedule (paper defaults via [`CoolingSchedule::paper`]).
    pub schedule: CoolingSchedule,
    /// Total move budget, divided equally among rounds (paper: 10⁶–10⁸).
    pub total_steps: u64,
    /// Rate move magnitude, as a fraction of the flow's bound width.
    pub rate_step_fraction: f64,
    /// Maximum consumers added/removed by one population move.
    pub population_step: u32,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl AnnealConfig {
    /// A paper-style configuration with the given start temperature and
    /// step budget.
    ///
    /// The move magnitudes (±0.5 % of the rate range, ≤ 4 consumers) were
    /// tuned so that a 10⁸-step run on the base workload reaches the same
    /// utility regime as the paper's best SA run (~1.25·10⁶); coarser moves
    /// strand the search on the rate/population ridge.
    pub fn paper(start_temperature: f64, total_steps: u64, seed: u64) -> Self {
        Self {
            schedule: CoolingSchedule::paper(start_temperature),
            total_steps,
            rate_step_fraction: 0.005,
            population_step: 4,
            seed,
        }
    }
}

/// Result of one annealing (or hill-climbing / random-walk) run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best allocation found.
    pub best: Allocation,
    /// Utility of [`SearchOutcome::best`].
    pub best_utility: f64,
    /// Moves proposed.
    pub steps: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Proposes a random move: with probability ½ perturb one flow's rate by up
/// to `rate_step_fraction` of its bound width, otherwise move one class's
/// population by up to ±`population_step` consumers. Always returns a
/// bound-respecting move; problems with no flows or no classes fall back to
/// whichever move kind exists.
fn propose(state: &SearchState<'_>, cfg: &AnnealConfig, rng: &mut StdRng) -> Option<Move> {
    let problem = state.problem();
    let flows = problem.num_flows();
    let classes = problem.num_classes();
    if flows == 0 && classes == 0 {
        return None;
    }
    let pick_rate = classes == 0 || (flows > 0 && rng.gen_bool(0.5));
    if pick_rate {
        let flow = FlowId::new(rng.gen_range(0..flows as u32));
        let bounds = problem.flow(flow).bounds;
        if bounds.width() == 0.0 {
            return None;
        }
        let step = cfg.rate_step_fraction * bounds.width();
        let rate = bounds.clamp(state.rate(flow) + rng.gen_range(-step..=step));
        Some(Move::SetRate { flow, rate })
    } else {
        let class = ClassId::new(rng.gen_range(0..classes as u32));
        let max = problem.class(class).max_population;
        if max == 0 {
            return None;
        }
        let step = cfg.population_step.max(1) as i64;
        let delta = loop {
            let d = rng.gen_range(-step..=step);
            if d != 0 {
                break d;
            }
        };
        let population =
            (state.population(class) + delta as f64).clamp(0.0, max as f64);
        Some(Move::SetPopulation { class, population })
    }
}

/// Runs simulated annealing on `problem` from the all-minimum state.
///
/// Acceptance follows Metropolis: improving (or equal) moves always accept;
/// a worsening move of magnitude `Δ` accepts with probability `exp(Δ/T)`.
/// Infeasible moves are rejected without counting as backward steps.
pub fn anneal(problem: &Problem, config: &AnnealConfig) -> SearchOutcome {
    anneal_from(problem, &Allocation::lower_bounds(problem), config)
}

/// Runs simulated annealing from an arbitrary feasible starting allocation.
///
/// Useful as a *polish* pass: seeding SA with another optimizer's solution
/// measures how much local improvement that solution leaves on the table
/// (LRGP leaves very little — see the `polish` experiment binary).
///
/// # Panics
///
/// Panics if `initial` is infeasible (SA's move evaluation assumes it never
/// leaves the feasible region).
pub fn anneal_from(
    problem: &Problem,
    initial: &Allocation,
    config: &AnnealConfig,
) -> SearchOutcome {
    assert!(
        initial.is_feasible(problem, 1e-9),
        "annealing must start from a feasible allocation"
    );
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut state = SearchState::new(problem, initial);
    let mut best = state.to_allocation();
    let mut best_utility = state.utility();
    let mut steps = 0;
    let mut accepted = 0;

    let rounds = config.schedule.rounds();
    let steps_per_round = (config.total_steps / rounds).max(1);

    'outer: for temperature in config.schedule.temperatures() {
        for _ in 0..steps_per_round {
            if steps >= config.total_steps {
                break 'outer;
            }
            steps += 1;
            let Some(mv) = propose(&state, config, &mut rng) else { continue };
            let Some(delta) = state.evaluate(mv) else { continue };
            let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temperature).exp();
            if accept {
                state.apply(mv);
                accepted += 1;
                if state.utility() > best_utility {
                    best_utility = state.utility();
                    best = state.to_allocation();
                }
            }
        }
    }

    SearchOutcome { best, best_utility, steps, accepted, elapsed: start.elapsed() }
}

/// Greedy hill climbing: annealing at zero temperature (only improving
/// moves accepted). Ablation baseline showing the value of SA's backward
/// steps.
pub fn hill_climb(problem: &Problem, config: &AnnealConfig) -> SearchOutcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut state = SearchState::lower_bounds(problem);
    let mut steps = 0;
    let mut accepted = 0;
    while steps < config.total_steps {
        steps += 1;
        let Some(mv) = propose(&state, config, &mut rng) else { continue };
        if let Some(delta) = state.evaluate(mv) {
            if delta > 0.0 {
                state.apply(mv);
                accepted += 1;
            }
        }
    }
    let best_utility = state.utility();
    SearchOutcome {
        best: state.to_allocation(),
        best_utility,
        steps,
        accepted,
        elapsed: start.elapsed(),
    }
}

/// Random walk: every feasible move is accepted; the best state seen is
/// kept. Weakest baseline, included for scale.
pub fn random_walk(problem: &Problem, config: &AnnealConfig) -> SearchOutcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut state = SearchState::lower_bounds(problem);
    let mut best = state.to_allocation();
    let mut best_utility = state.utility();
    let mut steps = 0;
    let mut accepted = 0;
    while steps < config.total_steps {
        steps += 1;
        let Some(mv) = propose(&state, config, &mut rng) else { continue };
        if state.evaluate(mv).is_some() {
            state.apply(mv);
            accepted += 1;
            if state.utility() > best_utility {
                best_utility = state.utility();
                best = state.to_allocation();
            }
        }
    }
    SearchOutcome { best, best_utility, steps, accepted, elapsed: start.elapsed() }
}

/// One cell of an annealing sweep (Table 2/3 report the best cell).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// Start temperature of this cell.
    pub start_temperature: f64,
    /// Step budget of this cell.
    pub total_steps: u64,
    /// The run's outcome.
    pub outcome: SearchOutcome,
}

/// Runs the paper's sweep — every start temperature × every step budget —
/// in parallel, returning all runs sorted best-first.
///
/// The paper sweeps temperatures {5, 10, 50, 100} × steps {10⁶, 10⁷, 10⁸}
/// and reports the best of the twelve runs per workload.
pub fn sweep(
    problem: &Problem,
    temperatures: &[f64],
    step_budgets: &[u64],
    seed: u64,
) -> Vec<SweepRun> {
    let cells: Vec<(f64, u64)> = temperatures
        .iter()
        .flat_map(|&t| step_budgets.iter().map(move |&s| (t, s)))
        .collect();
    let mut runs: Vec<SweepRun> = Vec::with_capacity(cells.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .enumerate()
            .map(|(i, &(t, s))| {
                scope.spawn(move || {
                    let cfg = AnnealConfig::paper(t, s, seed.wrapping_add(i as u64));
                    SweepRun { start_temperature: t, total_steps: s, outcome: anneal(problem, &cfg) }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(run) => runs.push(run),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    sort_runs_best_first(&mut runs);
    runs
}

/// Sorts sweep runs best-utility-first under `f64::total_cmp`, so a
/// degenerate (NaN-utility) run lands in a fixed position instead of an
/// input-order-dependent one. `sort_by` is stable, so equal-utility cells
/// keep the deterministic temperature-major sweep order. Note the
/// `total_cmp` NaN ordering: a positive-NaN outcome sorts *before* +∞ here
/// — callers that must never pick a poisoned run should validate utility
/// finiteness, not rely on ordering.
pub fn sort_runs_best_first(runs: &mut [SweepRun]) {
    runs.sort_by(|a, b| b.outcome.best_utility.total_cmp(&a.outcome.best_utility));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;

    fn small_cfg(seed: u64) -> AnnealConfig {
        AnnealConfig::paper(5.0, 50_000, seed)
    }

    #[test]
    fn sort_runs_best_first_is_deterministic_with_nan_utility() {
        let p = base_workload();
        let mk = |utility: f64, label: f64| SweepRun {
            start_temperature: label,
            total_steps: 1,
            outcome: SearchOutcome {
                best: Allocation::lower_bounds(&p),
                best_utility: utility,
                steps: 1,
                accepted: 0,
                elapsed: Duration::ZERO,
            },
        };
        let mut a = vec![mk(1.0, 1.0), mk(f64::NAN, 2.0), mk(5.0, 3.0)];
        let mut b = vec![mk(5.0, 3.0), mk(1.0, 1.0), mk(f64::NAN, 2.0)];
        sort_runs_best_first(&mut a);
        sort_runs_best_first(&mut b);
        let labels = |runs: &[SweepRun]| -> Vec<f64> {
            runs.iter().map(|r| r.start_temperature).collect()
        };
        // Same order regardless of input permutation; positive NaN sorts
        // first under descending total_cmp, the finite runs descend after.
        assert_eq!(labels(&a), labels(&b));
        assert!(a[0].outcome.best_utility.is_nan());
        assert_eq!(labels(&a)[1..], [3.0, 1.0]);
    }

    #[test]
    fn schedule_rounds_match_closed_form() {
        let s = CoolingSchedule::paper(5.0);
        // ln(5)/−ln(0.999) ≈ 1609
        let rounds = s.rounds();
        assert!((1605..=1615).contains(&rounds), "rounds {rounds}");
        assert_eq!(rounds, s.temperatures().count() as u64);
        let temps: Vec<f64> = s.temperatures().take(2).collect();
        assert_eq!(temps[0], 5.0);
        assert!((temps[1] - 4.995).abs() < 1e-12);
    }

    #[test]
    fn schedule_degenerate_start_still_one_round() {
        let s = CoolingSchedule { start_temperature: 0.5, cooling_factor: 0.999, stop_temperature: 1.0 };
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.temperatures().count(), 0);
    }

    #[test]
    fn anneal_finds_positive_utility_and_feasible_best() {
        let p = base_workload();
        let out = anneal(&p, &small_cfg(1));
        assert!(out.best_utility > 1e5, "utility {}", out.best_utility);
        assert!(out.best.is_feasible(&p, 1e-6));
        assert!(out.accepted > 0 && out.accepted <= out.steps);
        // Integer division of the budget across rounds may leave a remainder
        // unspent.
        assert!(out.steps <= 50_000 && out.steps > 45_000, "steps {}", out.steps);
        assert!((out.best.total_utility(&p) - out.best_utility).abs() < 1e-6);
    }

    #[test]
    fn anneal_deterministic_per_seed() {
        let p = base_workload();
        let a = anneal(&p, &small_cfg(9));
        let b = anneal(&p, &small_cfg(9));
        assert_eq!(a.best_utility, b.best_utility);
        assert_eq!(a.best, b.best);
        let c = anneal(&p, &small_cfg(10));
        assert_ne!(a.best_utility, c.best_utility);
    }

    #[test]
    fn more_steps_do_not_hurt() {
        let p = base_workload();
        let short = anneal(&p, &AnnealConfig::paper(5.0, 10_000, 3));
        let long = anneal(&p, &AnnealConfig::paper(5.0, 200_000, 3));
        assert!(
            long.best_utility >= 0.9 * short.best_utility,
            "long {} vs short {}",
            long.best_utility,
            short.best_utility
        );
    }

    #[test]
    fn hill_climb_accepts_only_improvements() {
        let p = base_workload();
        let out = hill_climb(&p, &small_cfg(4));
        assert!(out.best_utility > 0.0);
        assert!(out.best.is_feasible(&p, 1e-6));
    }

    #[test]
    fn random_walk_tracks_best_seen() {
        let p = base_workload();
        let out = random_walk(&p, &small_cfg(5));
        assert!(out.best_utility > 0.0);
        assert!(out.best.is_feasible(&p, 1e-6));
        // The walk's final state can be worse than the best, but the best is
        // what's reported.
        assert!(out.best_utility >= out.best.total_utility(&p) - 1e-9);
    }

    #[test]
    fn sweep_returns_sorted_runs() {
        let p = base_workload();
        let runs = sweep(&p, &[5.0, 50.0], &[5_000, 20_000], 7);
        assert_eq!(runs.len(), 4);
        for w in runs.windows(2) {
            assert!(w[0].outcome.best_utility >= w[1].outcome.best_utility);
        }
    }

    #[test]
    fn anneal_from_polishes_without_regressing() {
        let p = base_workload();
        // Seed with a decent feasible point (a short SA run's best).
        let seed_run = anneal(&p, &small_cfg(1));
        let polished = anneal_from(&p, &seed_run.best, &small_cfg(2));
        assert!(
            polished.best_utility >= seed_run.best_utility,
            "polish {} must not regress below its seed {}",
            polished.best_utility,
            seed_run.best_utility
        );
        assert!(polished.best.is_feasible(&p, 1e-6));
    }

    #[test]
    #[should_panic(expected = "feasible allocation")]
    fn anneal_from_rejects_infeasible_seed() {
        let p = base_workload();
        let bad = Allocation::upper_bounds(&p);
        let _ = anneal_from(&p, &bad, &small_cfg(1));
    }

    #[test]
    fn anneal_populations_integral() {
        let p = base_workload();
        let out = anneal(&p, &small_cfg(2));
        assert!(out.best.populations_are_integral());
    }
}
