//! Known-good fixture: a total, NaN-stable comparator.

/// Sorts utilities descending under `f64::total_cmp`.
pub fn sort_desc(v: &mut [f64]) {
    v.sort_by(|a, b| b.total_cmp(a));
}
