//! Known-bad fixture: float accumulation in hash iteration order.

/// Sums per-class utility by walking the map directly.
pub fn total(utilities: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for (_class, u) in utilities {
        sum += u;
    }
    sum
}
