//! Known-bad fixture: condvar waits with no predicate re-check.

/// A single wait: a spurious wakeup continues early, a lost wakeup
/// hangs forever.
pub fn await_once(cv: &Condvar, mut guard: Guard) -> Guard {
    guard = cv.wait(guard);
    guard
}

/// A bare `loop` with no conditional exit around the wait.
pub fn await_forever(cv: &Condvar, mut guard: Guard) {
    loop {
        guard = cv.wait(guard);
    }
}
