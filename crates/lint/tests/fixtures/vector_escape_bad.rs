//! Known-bad fixture: lane-batched f64 reduction outside
//! kernel/vector.rs.

/// Chunked reduction: reassociates the adds.
pub fn chunked_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ch in xs.chunks_exact(4) {
        acc += ch[0] + ch[1] + ch[2] + ch[3];
    }
    acc
}

/// Manual two-lane unrolling, recombined at the end.
pub fn unrolled_sum(xs: &[f64]) -> f64 {
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut i = 0;
    while i + 1 < xs.len() {
        s0 += xs[i];
        s1 += xs[i + 1];
        i += 2;
    }
    s0 + s1
}
