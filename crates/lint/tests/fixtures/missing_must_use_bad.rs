//! Known-bad: public Result-returning APIs without `#[must_use]`.

use std::io;

pub fn persist(path: &str) -> io::Result<()> {
    let _ = path;
    Ok(())
}

pub struct Store;

impl Store {
    pub fn flush(&self) -> Result<(), String> {
        Ok(())
    }
}
