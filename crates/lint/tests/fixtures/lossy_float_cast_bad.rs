//! Known-bad: narrowing casts with positive f64 evidence.

pub struct Meter {
    pub rate: f64,
}

pub fn quantize(price: f64) -> u32 {
    price as u32
}

pub fn bucket(m: &Meter) -> usize {
    m.rate as usize
}
