//! Known-good twin: total slicing — an out-of-range window is empty, not
//! a panic.

/// The helper slices totally.
fn tail_sum(xs: &[f64], lo: usize) -> f64 {
    xs.get(lo..).unwrap_or(&[]).iter().sum()
}

/// The step fn stays within the panic budget.
pub fn step(xs: &[f64], lo: usize) -> f64 {
    tail_sum(xs, lo)
}
