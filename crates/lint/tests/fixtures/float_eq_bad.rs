//! Known-bad fixture: value-level float equality.

/// Compares a computed rate against a magic constant.
pub fn at_target(rate: f64) -> bool {
    rate == 62.5
}
