//! Known-bad fixture: a kernel fn acquiring IO through a callee.

/// Looks pure, but the trace helper it calls prints.
pub fn shape_rate(x: f64, gamma: f64) -> f64 {
    trace_rate(x);
    (x * gamma).max(0.0)
}

fn trace_rate(x: f64) {
    println!("rate input {x}");
}
