//! Known-good fixture: iterate a sorted key list, then accumulate.

/// Sums per-class utility in ascending class order.
pub fn total(utilities: &HashMap<u32, f64>) -> f64 {
    let mut classes: Vec<u32> = utilities.keys().copied().collect();
    classes.sort_unstable();
    let mut sum = 0.0;
    for class in &classes {
        sum += utilities[class];
    }
    sum
}
