//! Known-good twin: workers own moved chunks and report through the join.

use std::thread;

pub fn fan_out(chunks: Vec<Vec<u64>>) -> u64 {
    let mut handles = Vec::new();
    for chunk in chunks {
        handles.push(thread::spawn(move || chunk.iter().sum::<u64>()));
    }
    handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
}
