//! Known-good twin: the caller owns the buffer; the hot path only fills
//! it (the `*_into` / scratch-buffer idiom).

/// Writes doubled values into the caller's scratch buffer.
pub fn gather_into(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for &x in xs {
        out.push(x * 2.0);
    }
}
