//! Known-bad fixture: a guard stays live across blocking calls.

/// Joins a worker while holding the state lock the worker needs.
pub fn drain(state: &SharedState, handle: Handle) {
    let guard = state.inner.lock_unpoisoned();
    handle.join();
    finish(&guard);
}

/// Sleeps while holding a read guard.
pub fn poll(state: &SharedState) -> u64 {
    let snapshot = state.inner.read();
    sleep(POLL_INTERVAL);
    snapshot.epoch
}
