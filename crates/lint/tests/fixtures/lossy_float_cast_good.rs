//! Known-good twin: integer-to-integer casts carry no f64 evidence, and a
//! bare name shared with an f64-returning fn proves nothing.

pub fn rate(slot: u32) -> f64 {
    f64::from(slot)
}

pub fn widen(count: u32) -> usize {
    count as usize
}

pub fn index_of(rate: u32) -> usize {
    rate as usize
}
