//! Known-good fixture: guards are scoped or dropped before blocking.

/// The pool.rs Drop shape: the guard lives in its own block.
pub fn drain(state: &SharedState, handle: Handle) {
    {
        let guard = state.inner.lock_unpoisoned();
        finish(&guard);
    }
    handle.join();
}

/// Explicit drop before blocking.
pub fn poll(state: &SharedState) -> u64 {
    let snapshot = state.inner.read();
    let epoch = snapshot.epoch;
    drop(snapshot);
    sleep(POLL_INTERVAL);
    epoch
}

/// Condvar waits release the guard they are given: exempt.
pub fn await_work(state: &SharedState, cv: &Condvar) {
    let mut guard = state.inner.lock_unpoisoned();
    while guard.remaining > 0 {
        guard = cv.wait(guard);
    }
}
