//! Fixture: a justified suppression silences its finding; a wrong-rule
//! suppression does not.

/// A documented infallible unwrap.
pub fn first(v: &[f64]) -> f64 {
    // lrgp-lint: allow(library-unwrap, reason = "caller guarantees non-empty")
    *v.first().unwrap()
}

/// The allow below names the wrong rule, so the comparator still fires.
pub fn bad(v: &mut [f64]) {
    // lrgp-lint: allow(float-eq, reason = "does not apply to this line")
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
