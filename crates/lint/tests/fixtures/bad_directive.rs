//! Fixture: malformed and unknown-rule directives are themselves findings.

// lrgp-lint: allow(no-such-rule, reason = "unknown rule id")
pub fn a() {}

// lrgp-lint: allow(float-eq)
pub fn b() {}
