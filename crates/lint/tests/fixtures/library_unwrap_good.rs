//! Known-good fixture: fallible lookups return Option/Result.

/// Reads a rate, surfacing absence and non-finite values to the caller.
pub fn rate_of(rates: &BTreeMap<u32, f64>, flow: u32) -> Option<f64> {
    let r = *rates.get(&flow)?;
    r.is_finite().then_some(r)
}
