//! Known-good fixture: cached-state writes paired with dirty marking
//! (directly or through a helper the effect fixpoint can see).

pub(crate) struct StepState {
    cached_utility: f64,
    link_usage: Vec<f64>,
    rate_changed: Vec<bool>,
    dirty_flows: Vec<u32>,
}

pub(crate) fn mark(flags: &mut [bool], list: &mut Vec<u32>, id: u32) {
    if !flags[id as usize] {
        flags[id as usize] = true;
        list.push(id);
    }
}

/// The write is paired with an exact mark.
pub(crate) fn publish(state: &mut StepState, total: f64, flow: u32) {
    state.cached_utility = total;
    mark(&mut state.rate_changed, &mut state.dirty_flows, flow);
}

/// Marking through a helper is visible interprocedurally.
pub(crate) fn publish_via(state: &mut StepState, total: f64, flow: u32) {
    state.cached_utility = total;
    note_rate(state, flow);
}

fn note_rate(state: &mut StepState, flow: u32) {
    mark(&mut state.rate_changed, &mut state.dirty_flows, flow);
}
