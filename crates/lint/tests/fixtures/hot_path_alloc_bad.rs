//! Known-bad fixture (analyzed under a kernel label): a hot-path root fn
//! allocates a fresh Vec on every call.

/// Builds and returns a new buffer per step.
pub fn gather(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x * 2.0).collect()
}
