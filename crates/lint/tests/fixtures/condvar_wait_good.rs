//! Known-good fixture: every wait is re-entered by a predicate check.

/// The canonical predicate loop.
pub fn await_drained(cv: &Condvar, mut guard: Guard) -> Guard {
    while guard.remaining > 0 {
        guard = cv.wait(guard);
    }
    guard
}

/// A bare `loop` is fine when it exits through a conditional break.
pub fn await_epoch(cv: &Condvar, mut guard: Guard, epoch: u64) -> Guard {
    loop {
        if guard.epoch != epoch {
            break;
        }
        guard = cv.wait(guard);
    }
    guard
}

/// `Child::wait()` takes no guard and is not a condvar wait.
pub fn reap(child: &mut Child) {
    let _ = child.wait();
}
