//! Known-good twin: both fns honor one global order (`alpha` before
//! `beta`), so no interleaving can deadlock.

/// Takes `alpha`, then `beta` under it.
pub fn forward(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    touch(&a, &b);
}

/// Same order; the second lock is also staged after an explicit drop,
/// so no guard overlaps out of order.
pub fn staged(s: &Shared) {
    let a = s.alpha.lock();
    drop(a);
    let b = s.beta.lock();
    touch_one(&b);
}
