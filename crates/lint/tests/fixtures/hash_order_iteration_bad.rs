//! Known-bad: hash iteration escaping into state, output, and serialization.

use std::collections::{HashMap, HashSet};

#[derive(Serialize)]
pub struct Snapshot {
    pub members: HashSet<u32>,
}

pub fn collect_all(weights: &HashMap<u32, u64>, out: &mut Vec<u64>) {
    for (_, w) in weights.iter() {
        out.push(*w);
    }
}

pub fn keys(weights: &HashMap<u32, u64>) -> Vec<u32> {
    weights.keys().copied().collect()
}
