//! Known-good fixture: sequential accumulation keeps the reference
//! association order.

/// One accumulator, source order: bit-identical to the spec path.
pub fn sequential_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Chunking without accumulation (copying lanes) is not a reduction.
pub fn copy_lanes(xs: &[f64], out: &mut Vec<f64>) {
    for ch in xs.chunks_exact(2) {
        out.extend_from_slice(ch);
    }
}
