//! Known-bad fixture: a cached-state write with no path to the
//! dirty-set API.

pub(crate) struct StepState {
    cached_utility: f64,
    link_usage: Vec<f64>,
    rate_changed: Vec<bool>,
    dirty_flows: Vec<u32>,
}

/// Overwrites cached state and never marks anything dirty.
pub(crate) fn clobber(state: &mut StepState, total: f64) {
    state.cached_utility = total;
}
