//! Known-bad: mutable state crossing a spawn boundary three ways.

use std::cell::RefCell;
use std::thread;

pub fn race(touch: fn(&mut f64)) {
    let mut total = 0.0;
    let cell = RefCell::new(0.0);
    thread::spawn(|| {
        total += 1.0;
        touch(&mut total);
        cell.replace(2.0);
    });
}
