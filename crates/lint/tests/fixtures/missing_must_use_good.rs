//! Known-good twin: annotated, private, non-Result, and trait-declared
//! functions are all out of scope.

use std::io;

#[must_use = "the save may fail"]
pub fn persist(path: &str) -> io::Result<()> {
    let _ = path;
    Ok(())
}

fn internal() -> io::Result<()> {
    Ok(())
}

pub fn answer() -> u32 {
    let _ = internal();
    7
}

pub trait Sink {
    fn put(&mut self) -> Result<(), String>;
}
