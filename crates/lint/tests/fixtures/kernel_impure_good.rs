//! Known-good fixture: kernels may read static tables and fill
//! caller-provided `&mut` scratch — that is the kernel contract.

static GAMMA_TABLE: [f64; 2] = [0.5, 0.25];

/// Pure per-element math over injected inputs.
pub fn shape_rate(x: f64, class: usize) -> f64 {
    (x * GAMMA_TABLE[class]).max(0.0)
}

/// Out-parameter scratch is allowed; no ambient effect is.
pub fn shape_all(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for &x in xs {
        out.push(shape_rate(x, 0));
    }
}
