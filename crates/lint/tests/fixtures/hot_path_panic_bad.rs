//! Known-bad fixture (analyzed under a kernel label): a hot-path root fn
//! reaches a panicking slice through a helper.

/// The helper does the panicking range slicing.
fn tail_sum(xs: &[f64], lo: usize) -> f64 {
    xs[lo..].iter().sum()
}

/// The step fn reaches the panic transitively through `tail_sum`.
pub fn step(xs: &[f64], lo: usize) -> f64 {
    tail_sum(xs, lo)
}
