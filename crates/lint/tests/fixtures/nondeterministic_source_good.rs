//! Known-good fixture: determinism inputs are injected by the caller.

/// The caller passes the seed; the kernel never consults ambient state.
pub fn solve_step(seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    rng.next_f64()
}
