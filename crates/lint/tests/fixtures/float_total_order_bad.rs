//! Known-bad fixture: a non-total float comparator.

/// Sorts utilities descending with a NaN-unstable comparator.
pub fn sort_desc(v: &mut [f64]) {
    v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
}
