//! Known-good twin: ordered containers, local-only loops, and order-free
//! terminals stay clean.

use std::collections::{BTreeMap, HashMap};

pub struct Snapshot {
    pub members: BTreeMap<u32, u64>,
}

pub fn total(weights: &BTreeMap<u32, u64>) -> u64 {
    let mut sum = 0;
    for (_, w) in weights.iter() {
        sum += w;
    }
    sum
}

pub fn occupancy(load: &HashMap<u32, u64>) -> usize {
    load.values().count()
}
