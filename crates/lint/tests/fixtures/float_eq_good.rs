//! Known-good fixture: exact-zero sentinel and bitwise comparison.

/// Zero population is an exact sentinel; cross-engine equality is
/// defined over bit patterns.
pub fn checks(n: f64, a: f64, b: f64) -> bool {
    n == 0.0 && a.to_bits() == b.to_bits()
}
