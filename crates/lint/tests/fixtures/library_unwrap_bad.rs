//! Known-bad fixture: panicking escape hatches in library code.

/// Reads a rate that "must" exist and panics when the map disagrees.
pub fn rate_of(rates: &BTreeMap<u32, f64>, flow: u32) -> f64 {
    let r = rates.get(&flow).unwrap();
    if !r.is_finite() {
        panic!("rate for flow {flow} is not finite");
    }
    *r
}
