//! Known-bad fixture: two fns acquire the same pair of locks in
//! opposite orders — a classic ABBA deadlock.

/// Takes `alpha`, then `beta` under it.
pub fn forward(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    touch(&a, &b);
}

/// Takes `beta`, then `alpha` under it — the inversion.
pub fn backward(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    touch(&a, &b);
}
