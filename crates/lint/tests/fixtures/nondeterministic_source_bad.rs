//! Known-bad fixture: ambient nondeterminism in a numeric path.

/// Times a solve with the wall clock and seeds from the OS.
pub fn solve_step() -> f64 {
    let t0 = Instant::now();
    let mut rng = thread_rng();
    rng.gen::<f64>() + t0.elapsed().as_secs_f64()
}
