//! Pipeline fuzzing: arbitrary byte soup, random token soup, and
//! truncated/mutated Rust-like sources must flow through the whole
//! analyzer stack — lexer → parser → symbol table → CFG → interprocedural
//! effect fixpoint → lock graph — without panicking, and the fixpoint
//! must terminate (each `proptest!` case finishing under the shim's
//! deterministic driver *is* the termination bound: a diverging fixpoint
//! hangs the test rather than passing it).
//!
//! The analyzer promises graceful degradation on malformed input: it
//! lints work-in-progress trees and `--changed` subsets where files are
//! mid-edit, so "garbage in" must mean "fewer findings out", never a
//! crash.

use proptest::prelude::*;

/// Token alphabet for soup generation: everything the lexer classifies,
/// including the constructs the deeper layers key on (locks, slices,
/// macros, generics) so the soup actually reaches the layer-3/4 code.
const VOCAB: &[&str] = &[
    "fn", "pub", "let", "mut", "if", "else", "while", "loop", "for", "in", "match", "impl",
    "struct", "enum", "trait", "use", "mod", "unsafe", "return", "break", "continue", "move",
    "self", "Self", "static", "const", "ref", "where", "dyn", "as", "crate",
    "(", ")", "[", "]", "{", "}", "<", ">", ",", ";", ":", "::", "->", "=>", "=", "==", "!=",
    "<=", ">=", "+", "-", "*", "/", "%", "&", "&&", "|", "||", "!", "?", ".", "..", "..=", "#",
    "'a", "@", "_",
    "x", "y", "foo", "bar", "state", "Vec", "String", "Mutex", "HashMap", "Box", "Result",
    "Option", "Some", "None", "Ok", "Err", "new", "default", "len", "iter", "map", "collect",
    "clone", "to_vec", "to_string", "with_capacity", "push", "extend", "insert", "lock",
    "unwrap", "expect", "drop", "get", "spawn", "rand", "now",
    "unwrap(", "expect(", "lock()", "vec!", "format!", "panic!", "assert!", "assert_eq!",
    "debug_assert!", "unimplemented!", "todo!", "println!",
    "0", "1", "42", "0.5", "1.0", "1e-9", "0x1f", "\"str\"", "'c'", "b\"bytes\"",
    "// line comment", "/* block */", "/// doc", "#[test]", "#[allow(dead_code)]",
    "r#\"raw\"#", "\u{1F980}", "\\",
];

/// A strategy producing token soup: random vocabulary entries joined by
/// random separators (space / nothing / newline), so token boundaries
/// themselves get fuzzed too.
fn token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (0usize..VOCAB.len(), 0u8..3),
        0..120,
    )
    .prop_map(|picks| {
        let mut src = String::new();
        for (i, sep) in picks {
            src.push_str(VOCAB[i]);
            match sep {
                0 => src.push(' '),
                1 => src.push('\n'),
                _ => {}
            }
        }
        src
    })
}

/// A well-formed template exercising every analysis layer: items with
/// callees, a lock pair, slicing, allocation, generics, and a test
/// module. Truncating or splicing it produces realistic mid-edit
/// sources (unclosed braces, dangling generics, half a macro call).
const TEMPLATE: &str = r#"
//! Template module.
use std::sync::Mutex;

pub struct State {
    pub alpha: Mutex<Vec<f64>>,
    pub beta: Mutex<Vec<f64>>,
}

fn helper(xs: &[f64], lo: usize) -> f64 {
    xs[lo..].iter().sum()
}

pub fn step(s: &State, xs: &[f64]) -> f64 {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    let total: f64 = a.iter().chain(b.iter()).sum();
    total + helper(xs, 1)
}

pub fn gather<T: Clone>(xs: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend(xs.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        assert_eq!(super::gather(&[1, 2, 3]).len(), 3);
    }
}
"#;

/// Truncate the template at an arbitrary char boundary and append a
/// slice of token soup — a model of a file caught mid-edit.
fn truncated_rust() -> impl Strategy<Value = String> {
    (0usize..TEMPLATE.len(), token_soup()).prop_map(|(cut, tail)| {
        let mut end = cut.min(TEMPLATE.len());
        while !TEMPLATE.is_char_boundary(end) {
            end -= 1;
        }
        let mut src = TEMPLATE[..end].to_string();
        src.push('\n');
        src.push_str(&tail);
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Token soup through the single-file pipeline (lexer → parser →
    /// symbols → CFG → dataflow): no panics, analysis always returns.
    #[test]
    fn token_soup_never_panics(src in token_soup()) {
        // Both a library label (all rules armed, kernel budgets active)
        // and a test label (suppression paths) must survive.
        let _ = lrgp_lint::analyze_source("crates/core/src/kernel/fuzzed.rs", &src);
        let _ = lrgp_lint::analyze_source("crates/core/tests/fuzzed.rs", &src);
    }

    /// Truncated/mutated Rust through the same pipeline: unclosed
    /// groups, dangling items, and half-lexed literals must degrade to
    /// partial analysis, not a crash.
    #[test]
    fn truncated_rust_never_panics(src in truncated_rust()) {
        let analysis = lrgp_lint::analyze_source("crates/core/src/fuzzed.rs", &src);
        // Findings must carry in-range anchors even on malformed input.
        for f in &analysis.findings {
            prop_assert!(f.line >= 1, "finding with zero line: {f:?}");
            prop_assert!(f.col >= 1, "finding with zero col: {f:?}");
        }
    }

    /// The whole-program layer (callgraph + effect fixpoint + lock
    /// graph + effect surface) over a multi-file soup workspace: the
    /// interprocedural fixpoint must terminate and the lock-graph walk
    /// must not panic even when call targets are garbage.
    #[test]
    fn whole_program_fixpoint_terminates_on_soup(
        a in token_soup(),
        b in truncated_rust(),
    ) {
        let files = vec![
            ("crates/core/src/kernel/fuzz_a.rs".to_string(), a),
            ("crates/core/src/fuzz_b.rs".to_string(), b),
            ("crates/core/src/fuzz_c.rs".to_string(), TEMPLATE.to_string()),
        ];
        let analyses = lrgp_lint::analyze_files(&files);
        prop_assert_eq!(analyses.len(), files.len());
        let (surface, _locks) = lrgp_lint::effect_surface(&files);
        // The surface only lists pub fns the parser recovered — it may
        // be empty on soup, but the template's pub fns must survive the
        // soup sharing their workspace.
        prop_assert!(
            surface.iter().any(|l| l.contains("::step")),
            "template fn lost from surface: {surface:?}"
        );
    }
}
