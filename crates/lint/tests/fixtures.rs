//! Fixture-based end-to-end tests: every rule has a known-bad file that is
//! detected at an exact `file:line:col`, a known-good twin that stays
//! clean, and the suppression machinery is exercised on real files.
//!
//! Fixtures live under `tests/fixtures/` (a [`lrgp_lint::SKIPPED_DIRS`]
//! component, so the workspace self-check never scans them) and are fed to
//! the analyzer under a synthetic library-crate label, since rules key off
//! the repo-relative path.

use lrgp_lint::analyze_source;

/// Analyzes a fixture as if it lived at `crates/<krate>/src/fixture.rs`.
fn run(krate: &str, src: &str) -> lrgp_lint::FileAnalysis {
    analyze_source(&format!("crates/{krate}/src/fixture.rs"), src)
}

/// Analyzes a fixture under an explicit label, for rules whose scope is a
/// specific path (kernel files, kernel/vector.rs).
fn run_at(label: &str, src: &str) -> lrgp_lint::FileAnalysis {
    analyze_source(label, src)
}

fn triples(analysis: &lrgp_lint::FileAnalysis) -> Vec<(&str, u32, u32)> {
    analysis.findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn float_total_order_fixture_pair() {
    let bad = run("model", include_str!("fixtures/float_total_order_bad.rs"));
    assert_eq!(triples(&bad), vec![("float-total-order", 5, 24)]);
    let good = run("model", include_str!("fixtures/float_total_order_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn float_eq_fixture_pair() {
    let bad = run("model", include_str!("fixtures/float_eq_bad.rs"));
    assert_eq!(triples(&bad), vec![("float-eq", 5, 10)]);
    let good = run("model", include_str!("fixtures/float_eq_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn nondeterministic_source_fixture_pair() {
    let src = include_str!("fixtures/nondeterministic_source_bad.rs");
    let bad = run("core", src);
    assert_eq!(
        triples(&bad),
        vec![("nondeterministic-source", 5, 14), ("nondeterministic-source", 6, 19)]
    );
    // The same file outside the numeric crates is out of the rule's scope.
    assert!(triples(&run("overlay", src)).is_empty());
    let good = run("core", include_str!("fixtures/nondeterministic_source_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn unordered_float_iteration_fixture_pair() {
    let bad = run("model", include_str!("fixtures/unordered_float_iteration_bad.rs"));
    // The semantic hash-order rule independently reaches the same site.
    assert_eq!(
        triples(&bad),
        vec![("hash-order-iteration", 6, 5), ("unordered-float-iteration", 6, 5)]
    );
    let good = run("model", include_str!("fixtures/unordered_float_iteration_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn library_unwrap_fixture_pair() {
    let src = include_str!("fixtures/library_unwrap_bad.rs");
    let bad = run("model", src);
    assert_eq!(triples(&bad), vec![("library-unwrap", 5, 30), ("library-unwrap", 7, 9)]);
    // Harness crates may panic on bad input; the same file there is clean.
    assert!(triples(&run("cli", src)).is_empty());
    let good = run("model", include_str!("fixtures/library_unwrap_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn hash_order_iteration_fixture_pair() {
    let bad = run("overlay", include_str!("fixtures/hash_order_iteration_bad.rs"));
    assert_eq!(
        triples(&bad),
        vec![
            // Serialized HashSet field, anchored at the struct keyword.
            ("hash-order-iteration", 6, 5),
            // Escaping `for` loop (grows the caller's collection).
            ("hash-order-iteration", 11, 5),
            // Unterminated iterator chain reaching the caller.
            ("hash-order-iteration", 17, 13),
        ]
    );
    let good = run("overlay", include_str!("fixtures/hash_order_iteration_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
    // The same bad file outside the order-sensitive crates is out of scope.
    let elsewhere = run("lint", include_str!("fixtures/hash_order_iteration_bad.rs"));
    assert!(triples(&elsewhere).is_empty(), "{:?}", elsewhere.findings);
}

#[test]
fn shared_mut_fixture_pair() {
    let bad = run("model", include_str!("fixtures/shared_mut_bad.rs"));
    assert_eq!(
        triples(&bad),
        vec![
            // Non-`move` closure writing a captured binding.
            ("shared-mut-across-threads", 10, 9),
            // `&mut` reference reaching out of the closure.
            ("shared-mut-across-threads", 11, 15),
            // RefCell-typed capture.
            ("shared-mut-across-threads", 12, 9),
        ]
    );
    let good = run("model", include_str!("fixtures/shared_mut_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn lossy_float_cast_fixture_pair() {
    let bad = run("model", include_str!("fixtures/lossy_float_cast_bad.rs"));
    assert_eq!(
        triples(&bad),
        vec![("lossy-float-cast", 8, 11), ("lossy-float-cast", 12, 12)]
    );
    // The good twin includes `rate as usize` on a u32 while a `fn rate()
    // -> f64` exists in the same file: name-based return evidence must
    // only apply to actual calls.
    let good = run("model", include_str!("fixtures/lossy_float_cast_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn missing_must_use_fixture_pair() {
    let src = include_str!("fixtures/missing_must_use_bad.rs");
    let bad = run("model", src);
    assert_eq!(
        triples(&bad),
        vec![("missing-must-use", 5, 5), ("missing-must-use", 13, 9)]
    );
    // Harness crates are exempt: panicking or ignoring errors at the CLI
    // boundary is its own policy.
    assert!(triples(&run("cli", src)).is_empty());
    let good = run("model", include_str!("fixtures/missing_must_use_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn kernel_impure_fixture_pair() {
    let src = include_str!("fixtures/kernel_impure_bad.rs");
    let bad = run_at("crates/core/src/kernel/fixture.rs", src);
    // Both the IO-doing helper and the kernel fn that reaches it through
    // a call are flagged — the effect is interprocedural.
    assert_eq!(
        triples(&bad),
        vec![("kernel-impure", 4, 5), ("kernel-impure", 9, 1)]
    );
    // The same file outside kernel/ is allowed to trace.
    assert!(triples(&run("core", src)).is_empty());
    let good = run_at(
        "crates/core/src/kernel/fixture.rs",
        include_str!("fixtures/kernel_impure_good.rs"),
    );
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn unmarked_dirty_write_fixture_pair() {
    let src = include_str!("fixtures/unmarked_dirty_write_bad.rs");
    let bad = run("core", src);
    assert_eq!(triples(&bad), vec![("unmarked-dirty-write", 13, 11)]);
    // The rule is scoped to crates/core's cached-state structs.
    assert!(triples(&run("model", src)).is_empty());
    let good = run("core", include_str!("fixtures/unmarked_dirty_write_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn condvar_wait_fixture_pair() {
    let bad = run("core", include_str!("fixtures/condvar_wait_bad.rs"));
    assert_eq!(
        triples(&bad),
        vec![
            // No loop at all.
            ("condvar-wait-no-predicate-loop", 6, 16),
            // Bare `loop` with no conditional exit.
            ("condvar-wait-no-predicate-loop", 13, 20),
        ]
    );
    let good = run("core", include_str!("fixtures/condvar_wait_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn lock_held_across_park_fixture_pair() {
    let bad = run("core", include_str!("fixtures/lock_held_bad.rs"));
    assert_eq!(
        triples(&bad),
        vec![
            ("lock-held-across-park", 6, 12),
            ("lock-held-across-park", 13, 5),
        ]
    );
    let good = run("core", include_str!("fixtures/lock_held_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn vector_escape_fixture_pair() {
    let src = include_str!("fixtures/vector_escape_bad.rs");
    let bad = run("core", src);
    assert_eq!(
        triples(&bad),
        vec![
            // Chunked reduction, anchored at the chunks_exact call.
            ("vector-escape", 7, 18),
            // Two-lane unrolling, anchored at the loop keyword.
            ("vector-escape", 18, 5),
        ]
    );
    // The identical shapes inside kernel/vector.rs are the sanctioned home
    // for the vector policy — but the layer-4 hot-path budget still sees
    // the panic-capable `xs[i + 1]` arithmetic indexing there.
    assert_eq!(
        triples(&run_at("crates/core/src/kernel/vector.rs", src)),
        vec![("hot-path-panic", 14, 5)]
    );
    // Outside crates/core the vector policy does not apply.
    assert!(triples(&run("model", src)).is_empty());
    let good = run("core", include_str!("fixtures/vector_escape_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn lock_order_inversion_fixture_pair() {
    let bad = run("core", include_str!("fixtures/lock_order_bad.rs"));
    // One cycle, reported once, anchored at its canonical first edge (the
    // `beta.lock()` taken while `alpha` is held).
    assert_eq!(triples(&bad), vec![("lock-order-inversion", 7, 20)]);
    assert!(
        bad.findings[0].message.contains("`alpha` → `beta`")
            && bad.findings[0].message.contains("`beta` → `alpha`"),
        "witness chain must show both edges: {}",
        bad.findings[0].message
    );
    let good = run("core", include_str!("fixtures/lock_order_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn hot_path_alloc_fixture_pair() {
    let src = include_str!("fixtures/hot_path_alloc_bad.rs");
    let bad = run_at("crates/core/src/kernel/fixture.rs", src);
    assert_eq!(triples(&bad), vec![("hot-path-alloc", 5, 5)]);
    // Outside the declared root set the same file is clean.
    assert!(triples(&run("model", src)).is_empty());
    let good =
        run_at("crates/core/src/kernel/fixture.rs", include_str!("fixtures/hot_path_alloc_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn hot_path_panic_fixture_pair() {
    let src = include_str!("fixtures/hot_path_panic_bad.rs");
    let bad = run_at("crates/core/src/kernel/fixture.rs", src);
    // Both the helper (itself a root under `kernel/ *`) and the step fn
    // that reaches the panic transitively are flagged.
    assert_eq!(
        triples(&bad),
        vec![("hot-path-panic", 5, 1), ("hot-path-panic", 10, 5)]
    );
    let step = &bad.findings[1];
    assert!(
        step.message.contains("`step` → `tail_sum`"),
        "transitive finding must carry the call-chain witness: {}",
        step.message
    );
    let good =
        run_at("crates/core/src/kernel/fixture.rs", include_str!("fixtures/hot_path_panic_good.rs"));
    assert!(triples(&good).is_empty(), "{:?}", good.findings);
}

#[test]
fn layer4_findings_anchor_at_the_root_file() {
    // `--changed <ref>` keeps findings whose file is in the changed set.
    // A hot-path finding whose *witness* crosses into an unchanged file
    // must therefore anchor at the root fn's file — otherwise editing the
    // root would silently drop the report under diff-scoped linting.
    let files = [
        (
            "crates/core/src/kernel/fixture.rs".to_string(),
            "/// Root: reaches the allocation through the helper crate.\n\
             pub fn step(xs: &[f64]) -> Vec<f64> { widen(xs) }\n"
                .to_string(),
        ),
        (
            "crates/model/src/helper.rs".to_string(),
            "/// The allocation lives here, outside the changed set.\n\
             pub fn widen(xs: &[f64]) -> Vec<f64> { xs.to_vec() }\n"
                .to_string(),
        ),
    ];
    let analyses = lrgp_lint::analyze_files(&files);
    let kernel: Vec<_> = triples(&analyses[0])
        .into_iter()
        .filter(|(rule, _, _)| *rule == "hot-path-alloc")
        .collect();
    assert_eq!(kernel, vec![("hot-path-alloc", 2, 5)], "{:?}", analyses[0].findings);
    assert!(
        analyses[0].findings.iter().any(|f| f.message.contains("`step` → `widen`")),
        "{:?}",
        analyses[0].findings
    );
    // The helper's file carries no hot-path finding: it is not a root,
    // so scoping a lint run to the kernel file alone loses nothing.
    assert!(
        !analyses[1].findings.iter().any(|f| f.rule == "hot-path-alloc"),
        "{:?}",
        analyses[1].findings
    );
}

#[test]
fn layer3_rules_are_report_only() {
    // The CFG/dataflow rules have no mechanical rewrite whose correctness
    // is decidable from the finding (wrapping a bare `wait` in a predicate
    // loop needs the predicate), so none of their findings may claim
    // `fixable` — which is also what keeps the `--fix` no-op idempotence
    // self-check trivially true for them.
    let sources = [
        run_at("crates/core/src/kernel/fixture.rs", include_str!("fixtures/kernel_impure_bad.rs")),
        run("core", include_str!("fixtures/unmarked_dirty_write_bad.rs")),
        run("core", include_str!("fixtures/condvar_wait_bad.rs")),
        run("core", include_str!("fixtures/lock_held_bad.rs")),
        run("core", include_str!("fixtures/vector_escape_bad.rs")),
        run("core", include_str!("fixtures/lock_order_bad.rs")),
        run_at("crates/core/src/kernel/fixture.rs", include_str!("fixtures/hot_path_alloc_bad.rs")),
        run_at("crates/core/src/kernel/fixture.rs", include_str!("fixtures/hot_path_panic_bad.rs")),
    ];
    for analysis in &sources {
        assert!(!analysis.findings.is_empty());
        for f in &analysis.findings {
            assert!(!f.fixable, "{}: layer-3 finding claims a machine fix", f.rule);
        }
    }
}

#[test]
fn suppression_silences_only_the_named_rule() {
    let analysis = run("model", include_str!("fixtures/suppressed.rs"));
    // The wrong-rule allow leaves the comparator finding standing.
    assert_eq!(triples(&analysis), vec![("float-total-order", 13, 24)]);
    // The justified allow is honored and reported with its reason.
    assert_eq!(analysis.suppressions.len(), 1);
    let s = &analysis.suppressions[0];
    assert_eq!((s.rule.as_str(), s.line), ("library-unwrap", 6));
    assert_eq!(s.reason, "caller guarantees non-empty");
}

#[test]
fn malformed_and_unknown_directives_are_findings() {
    let analysis = run("model", include_str!("fixtures/bad_directive.rs"));
    assert_eq!(
        triples(&analysis),
        vec![("bad-directive", 3, 1), ("bad-directive", 6, 1)]
    );
    assert!(analysis.suppressions.is_empty());
}
