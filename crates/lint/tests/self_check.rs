//! The linter must hold on its own workspace: `lrgp-lint --deny` exiting 0
//! over the repo is an acceptance criterion, and `crates/core` must be
//! clean without a single suppression outside the one module allowed to
//! carry them (`kernel/vector.rs`, whose float-eq sentinels are load-
//! bearing — see `core_suppressions_confined_to_the_vector_module`).

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Canonicalize so labels contain no `..` components — `crate_of` keys
    // off the first `crates/<name>` pair in the label.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lrgp_lint::lint_paths(&[repo_root()]).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated: {} files", report.files_scanned);
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
}

#[test]
fn core_suppressions_confined_to_the_vector_module() {
    // The vectorized kernel legitimately compares floats for exact
    // sentinel equality (an exponent stored as exactly 1.0; the +∞ a power
    // derivative produces at r = 0), so its module carries suppressions —
    // each with a mandatory reason. Everywhere else in `crates/core` the
    // zero-suppression bar still holds: a new allow outside
    // `kernel/vector.rs`, or one without a reason, fails this test.
    let core = repo_root().join("crates/core");
    let report = lrgp_lint::lint_paths(&[core]).expect("core scan");
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
    let strays: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| !s.file.ends_with("kernel/vector.rs"))
        .collect();
    assert!(
        strays.is_empty(),
        "crates/core outside kernel/vector.rs must satisfy every rule without allows: {strays:?}"
    );
    let vector: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| s.file.ends_with("kernel/vector.rs"))
        .collect();
    assert!(
        !vector.is_empty(),
        "kernel/vector.rs should carry its documented float-eq sentinels"
    );
    for s in vector {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression at {}:{} has no reason",
            s.file,
            s.line
        );
    }
}

#[test]
fn semantic_rules_are_registered_and_enforced() {
    for id in
        ["hash-order-iteration", "shared-mut-across-threads", "lossy-float-cast", "missing-must-use"]
    {
        assert!(lrgp_lint::is_known_rule(id), "rule {id} missing from RULES");
    }
    // `workspace_is_lint_clean` passing with the semantic rules active is
    // the acceptance criterion; the registry check keeps that meaningful.
}

#[test]
fn fix_plans_nothing_on_the_clean_workspace() {
    // `lrgp lint --fix` must be a no-op on a workspace that lints clean:
    // every fixable finding has been applied, so planning again finds no
    // edits. CI re-asserts this on every push.
    let root = repo_root();
    let mut files = Vec::new();
    for path in lrgp_lint::collect_rust_files(&root).expect("collect") {
        let src = std::fs::read_to_string(&path).expect("read");
        files.push((lrgp_lint::label_of(&path), src));
    }
    let plans = lrgp_lint::fix::plan_fixes(&files);
    let touched: Vec<&str> = plans.iter().map(|(label, _, _)| label.as_str()).collect();
    assert!(touched.is_empty(), "--fix would still rewrite: {touched:?}");
}

#[test]
fn json_report_is_stable_and_sorted() {
    let root = repo_root();
    let a = lrgp_lint::lint_paths(std::slice::from_ref(&root)).expect("scan");
    let b = lrgp_lint::lint_paths(&[root]).expect("scan");
    assert_eq!(a.to_json(), b.to_json(), "repeated scans must serialize identically");
    let sups = &a.suppressions;
    for w in sups.windows(2) {
        assert!(
            (&w[0].file, w[0].line) <= (&w[1].file, w[1].line),
            "suppressions out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}
