//! The linter must hold on its own workspace: `lrgp-lint --deny` exiting 0
//! over the repo is an acceptance criterion, and `crates/core` must be
//! clean without a single suppression.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Canonicalize so labels contain no `..` components — `crate_of` keys
    // off the first `crates/<name>` pair in the label.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lrgp_lint::lint_paths(&[repo_root()]).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated: {} files", report.files_scanned);
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
}

#[test]
fn core_crate_needs_no_suppressions() {
    let core = repo_root().join("crates/core");
    let report = lrgp_lint::lint_paths(&[core]).expect("core scan");
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
    assert!(
        report.suppressions.is_empty(),
        "crates/core must satisfy every rule without allows: {:?}",
        report.suppressions
    );
}

#[test]
fn semantic_rules_are_registered_and_enforced() {
    for id in
        ["hash-order-iteration", "shared-mut-across-threads", "lossy-float-cast", "missing-must-use"]
    {
        assert!(lrgp_lint::is_known_rule(id), "rule {id} missing from RULES");
    }
    // `workspace_is_lint_clean` passing with the semantic rules active is
    // the acceptance criterion; the registry check keeps that meaningful.
}

#[test]
fn fix_plans_nothing_on_the_clean_workspace() {
    // `lrgp lint --fix` must be a no-op on a workspace that lints clean:
    // every fixable finding has been applied, so planning again finds no
    // edits. CI re-asserts this on every push.
    let root = repo_root();
    let mut files = Vec::new();
    for path in lrgp_lint::collect_rust_files(&root).expect("collect") {
        let src = std::fs::read_to_string(&path).expect("read");
        files.push((lrgp_lint::label_of(&path), src));
    }
    let plans = lrgp_lint::fix::plan_fixes(&files);
    let touched: Vec<&str> = plans.iter().map(|(label, _, _)| label.as_str()).collect();
    assert!(touched.is_empty(), "--fix would still rewrite: {touched:?}");
}

#[test]
fn json_report_is_stable_and_sorted() {
    let root = repo_root();
    let a = lrgp_lint::lint_paths(std::slice::from_ref(&root)).expect("scan");
    let b = lrgp_lint::lint_paths(&[root]).expect("scan");
    assert_eq!(a.to_json(), b.to_json(), "repeated scans must serialize identically");
    let sups = &a.suppressions;
    for w in sups.windows(2) {
        assert!(
            (&w[0].file, w[0].line) <= (&w[1].file, w[1].line),
            "suppressions out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}
