//! The linter must hold on its own workspace: `lrgp-lint --deny` exiting 0
//! over the repo is an acceptance criterion, and `crates/core` must be
//! clean without a single suppression outside the one module allowed to
//! carry them (`kernel/vector.rs`, whose float-eq sentinels are load-
//! bearing — see `core_suppressions_confined_to_the_vector_module`).

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Canonicalize so labels contain no `..` components — `crate_of` keys
    // off the first `crates/<name>` pair in the label.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lrgp_lint::lint_paths(&[repo_root()]).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated: {} files", report.files_scanned);
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
}

#[test]
fn core_suppressions_confined_to_the_vector_module() {
    // The vectorized kernel legitimately compares floats for exact
    // sentinel equality (an exponent stored as exactly 1.0; the +∞ a power
    // derivative produces at r = 0), so its module carries suppressions —
    // each with a mandatory reason. Everywhere else in `crates/core` the
    // zero-suppression bar still holds: a new allow outside
    // `kernel/vector.rs`, or one without a reason, fails this test.
    let core = repo_root().join("crates/core");
    let report = lrgp_lint::lint_paths(&[core]).expect("core scan");
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
    let strays: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| !s.file.ends_with("kernel/vector.rs"))
        .collect();
    assert!(
        strays.is_empty(),
        "crates/core outside kernel/vector.rs must satisfy every rule without allows: {strays:?}"
    );
    // The dirty-set soundness rule in particular may never be allowed in
    // core — an unmarked cached write breaks incremental-vs-full bitwise
    // equality silently, so there is no legitimate exception to document.
    let dirty_allows: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| s.rule == "unmarked-dirty-write")
        .collect();
    assert!(
        dirty_allows.is_empty(),
        "unmarked-dirty-write must never be suppressed in crates/core: {dirty_allows:?}"
    );
    let vector: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| s.file.ends_with("kernel/vector.rs"))
        .collect();
    assert!(
        !vector.is_empty(),
        "kernel/vector.rs should carry its documented float-eq sentinels"
    );
    for s in vector {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression at {}:{} has no reason",
            s.file,
            s.line
        );
    }
}

#[test]
fn semantic_rules_are_registered_and_enforced() {
    for id in
        ["hash-order-iteration", "shared-mut-across-threads", "lossy-float-cast", "missing-must-use"]
    {
        assert!(lrgp_lint::is_known_rule(id), "rule {id} missing from RULES");
    }
    // `workspace_is_lint_clean` passing with the semantic rules active is
    // the acceptance criterion; the registry check keeps that meaningful.
}

#[test]
fn fix_plans_nothing_on_the_clean_workspace() {
    // `lrgp lint --fix` must be a no-op on a workspace that lints clean:
    // every fixable finding has been applied, so planning again finds no
    // edits. CI re-asserts this on every push.
    let root = repo_root();
    let mut files = Vec::new();
    for path in lrgp_lint::collect_rust_files(&root).expect("collect") {
        let src = std::fs::read_to_string(&path).expect("read");
        files.push((lrgp_lint::label_of(&path), src));
    }
    let plans = lrgp_lint::fix::plan_fixes(&files);
    let touched: Vec<&str> = plans.iter().map(|(label, _, _)| label.as_str()).collect();
    assert!(touched.is_empty(), "--fix would still rewrite: {touched:?}");
}

#[test]
fn json_report_is_stable_and_sorted() {
    let root = repo_root();
    let mut a = lrgp_lint::lint_paths(std::slice::from_ref(&root)).expect("scan");
    let mut b = lrgp_lint::lint_paths(&[root]).expect("scan");
    // The four per-layer `*_ms` wallclocks are the only non-deterministic
    // fields; everything else must be byte-identical across runs.
    for r in [&mut a, &mut b] {
        r.lex_ms = 0;
        r.semantic_ms = 0;
        r.dataflow_ms = 0;
        r.graph_ms = 0;
    }
    assert_eq!(a.to_json(), b.to_json(), "repeated scans must serialize identically");
    let sups = &a.suppressions;
    for w in sups.windows(2) {
        assert!(
            (&w[0].file, w[0].line) <= (&w[1].file, w[1].line),
            "suppressions out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn every_rule_has_explain_text() {
    // `--explain <rule>` renders `Rule::explain`; a rule landing without
    // one would print an empty card. Require real prose: a rationale plus
    // the example/remediation sections the card format promises.
    for rule in lrgp_lint::RULES {
        assert!(
            rule.explain.trim().len() > 80,
            "rule {} has no substantive explain text",
            rule.id
        );
        assert!(
            rule.explain.contains("Example:"),
            "rule {} explain lacks an Example: section",
            rule.id
        );
        assert!(
            rule.explain.contains("Fix:"),
            "rule {} explain lacks a Fix: section",
            rule.id
        );
    }
}

#[test]
fn suppression_count_stays_within_budget() {
    // CI gates on this too (see `suppressions_budget.txt`): the allow
    // count may go down freely, but growing it is an explicit, reviewed
    // decision — bump the budget file in the same PR as the new allow.
    let budget_file = repo_root().join("crates/lint/suppressions_budget.txt");
    let budget: usize = std::fs::read_to_string(&budget_file)
        .expect("suppressions_budget.txt exists")
        .trim()
        .parse()
        .expect("budget file holds a single integer");
    let report = lrgp_lint::lint_paths(&[repo_root()]).expect("workspace scan");
    assert!(
        report.suppressions.len() <= budget,
        "workspace carries {} suppressions, over the budget of {budget}; \
         remove one or raise crates/lint/suppressions_budget.txt in review",
        report.suppressions.len()
    );
}

#[test]
fn kernel_fns_are_pure_on_the_real_workspace() {
    // Regression guard for the layer-3 sweep: every fn in
    // `crates/core/src/kernel/` must keep an empty denied-effect set under
    // the interprocedural fixpoint — not merely "no unsuppressed finding",
    // so a suppression can never smuggle impurity back in.
    use lrgp_lint::dataflow::EffectSet;
    let core = repo_root().join("crates/core");
    let report = lrgp_lint::lint_paths(&[core]).expect("core scan");
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
    let kernel_allows: Vec<_> = report
        .suppressions
        .iter()
        .filter(|s| s.rule == "kernel-impure")
        .collect();
    assert!(
        kernel_allows.is_empty(),
        "kernel-impure must never be suppressed: {kernel_allows:?}"
    );
    // Drive the dataflow layer directly over the kernel sources to assert
    // the effect sets themselves, independent of rule wiring.
    let root = repo_root();
    let mut files = Vec::new();
    for path in lrgp_lint::collect_rust_files(&root.join("crates/core")).expect("collect") {
        let src = std::fs::read_to_string(&path).expect("read");
        files.push((lrgp_lint::label_of(&path), src));
    }
    let analyses = lrgp_lint::analyze_files(&files);
    let mut kernel_fns = 0usize;
    let mut budgeted_fns = 0usize;
    let hot = lrgp_lint::hotpath::HotPaths::builtin();
    for ((label, _), analysis) in files.iter().zip(&analyses) {
        if !label.contains("/kernel/") {
            continue;
        }
        for (name, effects) in &analysis.kernel_effects {
            kernel_fns += 1;
            assert!(
                effects.intersect(EffectSet::KERNEL_DENIED).is_empty(),
                "{label}: kernel fn `{name}` carries denied effects {:?}",
                effects.intersect(EffectSet::KERNEL_DENIED).names()
            );
            // The layer-4 budget on top: every kernel fn that is not
            // explicitly exempted in hot_paths.txt must also stay free of
            // ALLOC and PANIC reachability — combined with KERNEL_DENIED
            // this pins `kernel::*` free of IO/LOCK/ALLOC/PANIC.
            if hot.is_exempt(label, name) {
                continue;
            }
            budgeted_fns += 1;
            let denied = EffectSet::KERNEL_DENIED
                .union(EffectSet::ALLOC)
                .union(EffectSet::PANIC);
            assert!(
                effects.intersect(denied).is_empty(),
                "{label}: hot-path kernel fn `{name}` carries budgeted effects {:?}",
                effects.intersect(denied).names()
            );
        }
    }
    assert!(kernel_fns > 10, "kernel purity sweep looks truncated: {kernel_fns} fns");
    assert!(
        budgeted_fns > 10,
        "hot-path budget sweep looks truncated: {budgeted_fns} fns"
    );
}
