//! The linter must hold on its own workspace: `lrgp-lint --deny` exiting 0
//! over the repo is an acceptance criterion, and `crates/core` must be
//! clean without a single suppression.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Canonicalize so labels contain no `..` components — `crate_of` keys
    // off the first `crates/<name>` pair in the label.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lrgp_lint::lint_paths(&[repo_root()]).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated: {} files", report.files_scanned);
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
}

#[test]
fn core_crate_needs_no_suppressions() {
    let core = repo_root().join("crates/core");
    let report = lrgp_lint::lint_paths(&[core]).expect("core scan");
    assert!(report.findings.is_empty(), "\n{}", report.render_human());
    assert!(
        report.suppressions.is_empty(),
        "crates/core must satisfy every rule without allows: {:?}",
        report.suppressions
    );
}

#[test]
fn json_report_is_stable_and_sorted() {
    let root = repo_root();
    let a = lrgp_lint::lint_paths(&[root.clone()]).expect("scan");
    let b = lrgp_lint::lint_paths(&[root]).expect("scan");
    assert_eq!(a.to_json(), b.to_json(), "repeated scans must serialize identically");
    let sups = &a.suppressions;
    for w in sups.windows(2) {
        assert!(
            (&w[0].file, w[0].line) <= (&w[1].file, w[1].line),
            "suppressions out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}
