//! Effect-surface snapshot: the inferred effect set of every public
//! library fn is pinned in `crates/lint/effect_surface.txt` (the output
//! of `lrgp-lint --effects`). A change that makes a previously pure fn
//! allocate, lock, or panic-reach fails this test (and CI's lint job)
//! with a diff; intentional changes regenerate the snapshot with
//! `UPDATE_EFFECT_SURFACE=1 cargo test -p lrgp-lint --test effect_surface`.

use std::path::PathBuf;

const SNAPSHOT: &str = "effect_surface.txt";

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf()
}

fn scan() -> String {
    let (lines, _) = lrgp_lint::effect_surface_paths(std::slice::from_ref(&repo_root()))
        .expect("workspace scan");
    let mut out = String::with_capacity(lines.len() * 48);
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[test]
fn effect_surface_matches_snapshot() {
    let actual = scan();
    let snapshot_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT);
    if std::env::var_os("UPDATE_EFFECT_SURFACE").is_some() {
        std::fs::write(&snapshot_path, &actual).expect("write snapshot");
        eprintln!(
            "effect_surface: snapshot regenerated ({} lines)",
            actual.lines().count()
        );
        return;
    }
    let expected = std::fs::read_to_string(&snapshot_path).expect(
        "crates/lint/effect_surface.txt exists; regenerate with UPDATE_EFFECT_SURFACE=1",
    );
    if expected == actual {
        return;
    }
    let expected_set: std::collections::BTreeSet<&str> = expected.lines().collect();
    let actual_set: std::collections::BTreeSet<&str> = actual.lines().collect();
    let removed: Vec<&&str> = expected_set.difference(&actual_set).collect();
    let added: Vec<&&str> = actual_set.difference(&expected_set).collect();
    panic!(
        "effect surface changed.\n\nremoved ({}):\n{}\n\nadded ({}):\n{}\n\n\
         If intentional, regenerate: UPDATE_EFFECT_SURFACE=1 cargo test -p lrgp-lint \
         --test effect_surface",
        removed.len(),
        removed.iter().map(|s| format!("  - {s}")).collect::<Vec<_>>().join("\n"),
        added.len(),
        added.iter().map(|s| format!("  + {s}")).collect::<Vec<_>>().join("\n"),
    );
}

#[test]
fn effect_surface_is_deterministic() {
    // Two independent scans of the same tree must be byte-identical —
    // the property that lets CI diff the committed snapshot at all.
    assert_eq!(scan(), scan(), "repeated scans must serialize identically");
}
