//! Workspace call graph, derived from the same parsed view that feeds the
//! symbol table.
//!
//! Each `fn` item in every non-test file becomes a node; call sites are
//! recovered token-structurally (an identifier directly followed by `(`,
//! excluding keywords, macro invocations, and the defining occurrence).
//! Resolution follows the symbol table's philosophy — name-based, crate
//! first, workspace second — because the workspace's function names are
//! effectively unique per crate. Where they are not (constructor names
//! like `new`), [`crate::dataflow`] resolves the ambiguity conservatively
//! by intersecting the candidates' effect sets, so a collision can only
//! *hide* an effect behind a suppressible imprecision, never invent a
//! spurious cross-module edge that poisons every caller of `new`.

use crate::lexer::{Token, TokenKind};
use crate::parser::{ItemKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Key used for files outside any `crates/<name>/` directory (matches
/// [`crate::symbols`]).
pub const ROOT_CRATE: &str = "(root)";

fn crate_key(krate: Option<&str>) -> String {
    krate.unwrap_or(ROOT_CRATE).to_string()
}

/// Identifiers that look like calls but are control/operator keywords.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "let", "else",
    "move", "unsafe", "ref", "mut", "break", "continue", "where", "impl", "dyn",
];

/// One function in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Crate key ([`ROOT_CRATE`] for files outside `crates/`).
    pub krate: String,
    /// Repo-relative file label.
    pub file: String,
    /// Declared name.
    pub name: String,
    /// Token index of the `fn` keyword in its file.
    pub kw: usize,
    /// Token indices of the body braces, if the fn has a body.
    pub body: Option<(usize, usize)>,
    /// Deduplicated callee names appearing in the body, sorted.
    pub callees: Vec<String>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in (file, token) scan order.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<(String, String), Vec<usize>>,
    by_bare_name: BTreeMap<String, Vec<usize>>,
    by_site: BTreeMap<(String, usize), usize>,
}

impl CallGraph {
    /// Builds the graph from every non-test file. Each entry is
    /// `(file label, crate, parsed view, tokens, test ranges)`; fn items
    /// whose keyword falls in a test range are skipped, mirroring how the
    /// rules themselves treat `#[cfg(test)]` regions.
    pub fn build<'a>(
        files: impl IntoIterator<
            Item = (&'a str, Option<&'a str>, &'a ParsedFile, &'a [Token], &'a [(usize, usize)]),
        >,
    ) -> CallGraph {
        let mut graph = CallGraph::default();
        for (file, krate, parsed, tokens, test_ranges) in files {
            let in_test =
                |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);
            for item in &parsed.items {
                if item.kind != ItemKind::Fn || in_test(item.kw) {
                    continue;
                }
                let params: BTreeSet<&str> = item
                    .sig
                    .iter()
                    .flat_map(|s| s.params.iter().map(|(n, _)| n.as_str()))
                    .collect();
                let callees = match item.body {
                    Some((open, close)) => callees_in(tokens, open + 1, close, &params),
                    None => Vec::new(),
                };
                let idx = graph.fns.len();
                graph.fns.push(FnNode {
                    krate: crate_key(krate),
                    file: file.to_string(),
                    name: item.name.clone(),
                    kw: item.kw,
                    body: item.body,
                    callees,
                });
                let node = &graph.fns[idx];
                graph
                    .by_name
                    .entry((node.krate.clone(), node.name.clone()))
                    .or_default()
                    .push(idx);
                graph.by_bare_name.entry(node.name.clone()).or_default().push(idx);
                graph.by_site.insert((node.file.clone(), node.kw), idx);
            }
        }
        graph
    }

    /// The node index of the fn whose `fn` keyword sits at token `kw` of
    /// `file`, if it was indexed.
    pub fn fn_at(&self, file: &str, kw: usize) -> Option<usize> {
        self.by_site.get(&(file.to_string(), kw)).copied()
    }

    /// Candidate definitions for a call to `name` made from crate
    /// `krate`: same-crate definitions if any exist, otherwise every
    /// definition of that name in the workspace.
    pub fn candidates(&self, krate: &str, name: &str) -> &[usize] {
        if let Some(same) = self.by_name.get(&(krate.to_string(), name.to_string())) {
            return same;
        }
        self.by_bare_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Recovers callee names from a body token range: identifiers directly
/// followed by `(`, excluding keywords, macro bangs (`name!(..)` — those
/// are the lexical layer's business), fn definitions themselves, and bare
/// calls of a fn *parameter* (`apply(f, rate)` where `apply: impl FnMut`
/// is a closure argument — a higher-order call whose target is unknown,
/// which must not resolve by name to an unrelated workspace fn).
fn callees_in(tokens: &[Token], lo: usize, hi: usize, params: &BTreeSet<&str>) -> Vec<String> {
    let mut names = BTreeSet::new();
    for i in lo..hi.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        if i >= 1 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        let bare = i == 0
            || !(tokens[i - 1].is_punct(".") || tokens[i - 1].is_punct("::"));
        if bare && params.contains(t.text.as_str()) {
            continue;
        }
        names.insert(t.text.clone());
    }
    names.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph_of(files: &[(&str, Option<&str>, &str)]) -> CallGraph {
        let lexed: Vec<_> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let parsed: Vec<_> = lexed.iter().map(|l| parse(&l.tokens)).collect();
        let empty: Vec<(usize, usize)> = Vec::new();
        CallGraph::build(files.iter().enumerate().map(|(i, (file, krate, _))| {
            (*file, *krate, &parsed[i], lexed[i].tokens.as_slice(), empty.as_slice())
        }))
    }

    #[test]
    fn collects_fns_and_callees() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            Some("core"),
            "fn outer() { helper(1); x.method(); macro_like!(skip); let v = Thing::new(); }\n\
             fn helper(n: u32) {}\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        let outer = &g.fns[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.callees, vec!["helper", "method", "new"]);
        assert!(
            !outer.callees.iter().any(|c| c == "macro_like"),
            "macro invocations are not calls"
        );
    }

    #[test]
    fn bare_call_of_a_fn_parameter_is_not_a_callee() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            Some("core"),
            "fn drive(apply: impl FnMut(u32)) { apply(1); }\n\
             fn drive_method(apply: impl FnMut(u32)) { other.apply(2); }\n\
             fn apply(n: u32) {}\n",
        )]);
        // The bare `apply(1)` goes through the closure param, not the
        // workspace fn named `apply`.
        assert!(g.fns[0].callees.is_empty(), "{:?}", g.fns[0].callees);
        // A *method* call spelled like the param still resolves by name.
        assert_eq!(g.fns[1].callees, vec!["apply"]);
    }

    #[test]
    fn resolution_prefers_same_crate_then_workspace() {
        let g = graph_of(&[
            ("crates/core/src/a.rs", Some("core"), "fn shared() {}\nfn core_only() {}"),
            ("crates/model/src/b.rs", Some("model"), "fn shared() {}"),
        ]);
        let core_shared = g.candidates("core", "shared");
        assert_eq!(core_shared.len(), 1);
        assert_eq!(g.fns[core_shared[0]].krate, "core");
        // No same-crate definition: fall back to the workspace.
        let from_model = g.candidates("model", "core_only");
        assert_eq!(from_model.len(), 1);
        assert_eq!(g.fns[from_model[0]].krate, "core");
        assert!(g.candidates("core", "nonexistent").is_empty());
    }

    #[test]
    fn fn_at_keys_by_file_and_keyword() {
        let g = graph_of(&[("crates/core/src/a.rs", Some("core"), "fn f() { g(); }")]);
        let kw = g.fns[0].kw;
        assert_eq!(g.fn_at("crates/core/src/a.rs", kw), Some(0));
        assert_eq!(g.fn_at("crates/core/src/other.rs", kw), None);
    }

    #[test]
    fn test_range_fns_are_excluded() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let helper_kw = parsed
            .items
            .iter()
            .find(|i| i.name == "helper")
            .map(|i| i.kw)
            .expect("helper parsed");
        let ranges = vec![(helper_kw.saturating_sub(8), lexed.tokens.len())];
        let g = CallGraph::build([(
            "crates/core/src/a.rs",
            Some("core"),
            &parsed,
            lexed.tokens.as_slice(),
            ranges.as_slice(),
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }
}
