//! `lrgp-lint` — determinism-invariant static analysis for the LRGP
//! workspace.
//!
//! The repo's core guarantee is that the sequential, parallel-sharded, and
//! incremental LRGP engines produce **bit-identical** (`f64::to_bits`)
//! results. That guarantee is enforced dynamically by the differential
//! harness, but the bug classes that break it are visible statically —
//! PR 2 had to hand-fix a `partial_cmp(..).unwrap_or(Equal)` admission
//! comparator that this tool now catches at review time. This crate is the
//! static side of the enforcement:
//!
//! * [`lexer`] — a hand-rolled, line/column-tracked Rust lexer (no `syn`,
//!   consistent with the vendored-shims policy): comment/string/attribute
//!   aware, and the scanner for inline suppression directives.
//! * [`rules`] — the rules themselves; see [`rules::RULES`] for the list
//!   and the engine invariant each one protects.
//! * [`engine`] — per-file orchestration: `#[cfg(test)]` region detection,
//!   path-based file classification, suppression application.
//! * [`report`] — stable, sorted human and JSON output.
//!
//! # Suppressions
//!
//! Intentional uses are documented in place and must carry a reason:
//!
//! ```text
//! // lrgp-lint: allow(float-total-order, reason = "three-valued compare is the API")
//! ```
//!
//! A directive covers its own line and the next line with code. Malformed
//! directives and unknown rule ids are themselves findings
//! (`bad-directive`), so a typo can never silently disable enforcement.
//!
//! # Example
//!
//! ```
//! let analysis = lrgp_lint::analyze_source(
//!     "crates/model/src/x.rs",
//!     "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
//! );
//! let rules: Vec<_> = analysis.findings.iter().map(|f| f.rule).collect();
//! assert_eq!(rules, ["float-total-order", "library-unwrap"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod engine;
pub mod fix;
pub mod hotpath;
pub mod lexer;
pub mod lockgraph;
pub mod parser;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod symbols;

pub use engine::{
    analyze_files, analyze_files_timed, analyze_source, classify, crate_of, effect_surface,
    FileAnalysis, FileKind, Finding, PhaseTimings, Suppression, BAD_DIRECTIVE,
};
pub use fix::{fix_paths, FixOutcome};
pub use report::{Report, JSON_SCHEMA_VERSION};
pub use rules::{is_known_rule, Rule, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into when scanning.
///
/// * `target`, `.git`, `results` — build/VCS/experiment outputs.
/// * `shims` — vendored stand-ins mimicking external crates' APIs
///   (panicking to mirror the real crate is part of their contract).
/// * `tests`, `benches`, `examples`, `fixtures` — test-like code is exempt
///   from every rule, so scanning it is pure noise (and the lint's own
///   known-bad fixtures live under `tests/fixtures/`).
pub const SKIPPED_DIRS: &[&str] =
    &["target", ".git", "results", "shims", "tests", "benches", "examples", "fixtures"];

/// Normalizes a path into the repo-relative, `/`-separated label used in
/// diagnostics (and relied on for stable report ordering).
pub fn label_of(path: &Path) -> String {
    let raw = path.to_string_lossy().replace('\\', "/");
    raw.strip_prefix("./").unwrap_or(&raw).to_string()
}

fn walk_into(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let name = name.as_deref().unwrap_or("");
        if path.is_dir() {
            if !SKIPPED_DIRS.contains(&name) {
                walk_into(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Collects every `.rs` file under `root` (or `root` itself if it is a
/// file), skipping [`SKIPPED_DIRS`]. Results are sorted by label.
#[must_use = "the file list is the entire point of calling this"]
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if root.is_dir() {
        walk_into(root, &mut files)?;
    } else {
        files.push(root.to_path_buf());
    }
    files.sort_by_key(|p| label_of(p));
    Ok(files)
}

/// Labels of the `.rs` files that differ from `base`, as reported by
/// `git diff --name-only <base>` (deleted files excluded). Paths come back
/// repo-relative with `/` separators, i.e. already in [`label_of`] form —
/// so diff-scoped linting (`lrgp lint --changed <ref>`) must run from the
/// repository root, which is where every other workspace-relative command
/// runs from too.
#[must_use = "this Result reports a failure the caller must handle"]
pub fn changed_labels(base: &str) -> io::Result<std::collections::BTreeSet<String>> {
    let out = std::process::Command::new("git")
        .args(["diff", "--name-only", "--diff-filter=d", base, "--", "*.rs"])
        .output()?;
    if !out.status.success() {
        return Err(io::Error::other(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        )));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

/// Lints every Rust file under the given roots and aggregates a
/// stable-sorted [`Report`].
///
/// The whole set is analyzed as one workspace (see
/// [`engine::analyze_files`]): symbols resolve across files, so e.g. a
/// hash-typed struct field declared in one module is seen by iteration
/// sites in another.
#[must_use = "the report carries the findings; dropping it skips enforcement"]
pub fn lint_paths(roots: &[PathBuf]) -> io::Result<Report> {
    lint_paths_filtered(roots, None)
}

/// Like [`lint_paths`], but reports findings and suppressions only for
/// files whose label is in `only` (when given). The **whole** tree is
/// still read and analyzed — cross-file symbol resolution needs it — so a
/// diff-scoped run (`lrgp lint --changed <ref>`) is faster to act on, not
/// less correct. `files_scanned` counts analyzed files, not reported ones.
#[must_use = "the report carries the findings; dropping it skips enforcement"]
pub fn lint_paths_filtered(
    roots: &[PathBuf],
    only: Option<&std::collections::BTreeSet<String>>,
) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    for root in roots {
        for file in collect_rust_files(root)? {
            files.push((label_of(&file), std::fs::read_to_string(&file)?));
        }
    }
    let (analyses, timings) = engine::analyze_files_timed(&files);
    let mut findings = Vec::new();
    let mut suppressions = Vec::new();
    for ((label, _), analysis) in files.iter().zip(analyses) {
        if only.is_some_and(|set| !set.contains(label)) {
            continue;
        }
        findings.extend(analysis.findings);
        suppressions.extend(analysis.suppressions);
    }
    let mut report = Report::new(findings, suppressions, files.len());
    report.lex_ms = timings.lex_ms as u64;
    report.semantic_ms = timings.semantic_ms as u64;
    report.dataflow_ms = timings.dataflow_ms as u64;
    report.graph_ms = timings.graph_ms as u64;
    Ok(report)
}

/// The deterministic effect-surface snapshot over the given roots: one
/// sorted line per public library fn (`module::path::fn effect,names`,
/// `-` when pure) plus the lock-order graph, for `--effects` and the CI
/// snapshot gate.
#[must_use = "the surface lines are the entire point of calling this"]
pub fn effect_surface_paths(
    roots: &[PathBuf],
) -> io::Result<(Vec<String>, lockgraph::LockGraph)> {
    let mut files: Vec<(String, String)> = Vec::new();
    for root in roots {
        for file in collect_rust_files(root)? {
            files.push((label_of(&file), std::fs::read_to_string(&file)?));
        }
    }
    Ok(engine::effect_surface(&files))
}
