//! Layer-4 hot-path budget rules: the declared root set
//! (`crates/lint/hot_paths.txt` — the kernel modules, the `exec.rs` step
//! fns, the `pool.rs` worker protocol) must reach neither `ALLOC` nor
//! `PANIC` under the interprocedural effect fixpoint. These are the fns
//! the steady-state step executes per delta; a new allocation or panic
//! branch on them is a latency cliff or an abort waiting for the
//! sustained-traffic regime, and it fails `hot-path-alloc` /
//! `hot-path-panic` with the full call-chain witness in the message.

use crate::dataflow::EffectSet;
use crate::engine::{FileContext, FileKind, Finding};
use crate::parser::ItemKind;

/// The parsed root-set policy from `crates/lint/hot_paths.txt`.
#[derive(Debug, Default)]
pub struct HotPaths {
    /// `(path prefix-or-file, fn name or "*")` root declarations.
    roots: Vec<(String, String)>,
    /// `(path, fn name)` exemptions carved out of the roots.
    exempt: Vec<(String, String)>,
}

impl HotPaths {
    /// Parses the committed policy file (compiled in, so the binary and
    /// the repo can't disagree).
    pub fn builtin() -> HotPaths {
        Self::parse(include_str!("../hot_paths.txt"))
    }

    /// Parses the `hot_paths.txt` format: `<path> <fn-or-*>` per root
    /// line, `! <path> <fn>` per exemption (trailing words are the
    /// human-readable reason), `#` comments.
    pub fn parse(text: &str) -> HotPaths {
        let mut hp = HotPaths::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("!") => {
                    if let (Some(path), Some(name)) = (words.next(), words.next()) {
                        hp.exempt.push((path.to_string(), name.to_string()));
                    }
                }
                Some(path) => {
                    if let Some(name) = words.next() {
                        hp.roots.push((path.to_string(), name.to_string()));
                    }
                }
                None => {}
            }
        }
        hp
    }

    fn path_matches(pattern: &str, file: &str) -> bool {
        // Labels may be absolute (`/root/repo/crates/...`) when the lint
        // library is handed absolute roots; anchor the comparison at the
        // workspace-relative `crates/` segment so the policy file can stay
        // in repo-relative form.
        let file = match file.find("crates/") {
            Some(i) => &file[i..],
            None => file,
        };
        if pattern.ends_with('/') {
            file.starts_with(pattern)
        } else {
            file == pattern
        }
    }

    /// True if `(file, name)` is declared a hot-path root and not exempt.
    pub fn is_root(&self, file: &str, name: &str) -> bool {
        !self.is_exempt(file, name)
            && self
                .roots
                .iter()
                .any(|(p, n)| Self::path_matches(p, file) && (n == "*" || n == name))
    }

    /// True if `(file, name)` carries an explicit `!` exemption.
    pub fn is_exempt(&self, file: &str, name: &str) -> bool {
        self.exempt.iter().any(|(p, n)| Self::path_matches(p, file) && n == name)
    }
}

/// `hot-path-alloc`: a root fn reaches an allocation.
pub fn hot_path_alloc(ctx: &FileContext) -> Vec<Finding> {
    budget(
        ctx,
        EffectSet::ALLOC,
        "hot-path-alloc",
        "allocates",
        "hot paths must reuse caller-owned capacity (the *_into / scratch-buffer \
         idiom); move the allocation to setup or exempt the fn in \
         crates/lint/hot_paths.txt with a reason",
    )
}

/// `hot-path-panic`: a root fn reaches a panic site.
pub fn hot_path_panic(ctx: &FileContext) -> Vec<Finding> {
    budget(
        ctx,
        EffectSet::PANIC,
        "hot-path-panic",
        "can panic",
        "a panic on the steady-state step aborts the worker mid-delta; replace \
         with a total operation (`get`/`min`/iterator), validate at the \
         boundary, or exempt the fn in crates/lint/hot_paths.txt with a reason",
    )
}

fn budget(
    ctx: &FileContext,
    bit: EffectSet,
    rule: &'static str,
    verb: &str,
    remedy: &str,
) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let hot = HotPaths::builtin();
    let mut out = Vec::new();
    for item in &ctx.parsed.items {
        if item.kind != ItemKind::Fn || ctx.in_test(item.kw) {
            continue;
        }
        if !hot.is_root(ctx.path, &item.name) {
            continue;
        }
        let Some(i) = ctx.flow.graph.fn_at(ctx.path, item.kw) else { continue };
        if !ctx.flow.table.effects[i].contains(bit) {
            continue;
        }
        let chain = ctx.flow.table.witness_chain(i, bit);
        let names: Vec<String> = chain
            .iter()
            .map(|&f| format!("`{}`", ctx.flow.graph.fns[f].name))
            .collect();
        let origin = chain
            .last()
            .and_then(|&f| ctx.flow.table.origins.get(f))
            .and_then(|m| m.get(&bit.0))
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        out.push(ctx.finding(
            rule,
            item.kw,
            format!(
                "hot-path fn `{}` {verb}: {} (origin: {origin}); {remedy}",
                item.name,
                names.join(" → "),
            ),
        ));
    }
    out
}
