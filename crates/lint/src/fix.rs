//! Machine-applicable rewrites (`lrgp lint --fix`).
//!
//! Only rewrites whose correctness is decidable from the finding itself
//! are applied — everything else stays a diagnostic for a human:
//!
//! * `a.partial_cmp(b).unwrap()` / `.expect(..)` → `a.total_cmp(b)` — the
//!   exact rewrite PR 2 made by hand in the admission comparator.
//! * `HashMap`/`HashSet` → `BTreeMap`/`BTreeSet`, whole-file, when a
//!   `hash-order-iteration` finding fired there and the file does not
//!   already use BTree containers (which an ident swap would collide
//!   with). Key types must be `Ord`; if they are not, the compiler says
//!   so immediately rather than the engine diverging silently.
//! * Inserting `#[must_use = "..."]` above flagged `pub fn .. -> Result`.
//!
//! Fixes are **idempotent**: applying them removes the pattern each one
//! keys on, so a second pass plans zero edits. The self-check suite and CI
//! both assert this, and the differential harness re-verifies that fixed
//! code still produces bit-identical engine results.

use crate::engine::analyze_files;
use crate::lexer::{lex, TokenKind};
use crate::parser::match_delims;
use crate::rules::partial_cmp_unwrap_span;
use crate::{collect_rust_files, label_of};
use std::io;
use std::path::PathBuf;

/// What applying fixes did (or would do).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FixOutcome {
    /// Files whose content changed.
    pub files_changed: usize,
    /// Individual edits applied across all files.
    pub edits_applied: usize,
}

/// One textual edit in character offsets (`start == end` is an insert).
struct Edit {
    start: usize,
    end: usize,
    replacement: String,
}

/// Reason string inserted by the `missing-must-use` fix.
const MUST_USE_ATTR: &str =
    "#[must_use = \"this Result reports a failure the caller must handle\"]";

/// Plans fixes for a set of `(label, source)` files. Returns
/// `(label, fixed source, edit count)` for every file that would change.
pub fn plan_fixes(files: &[(String, String)]) -> Vec<(String, String, usize)> {
    let analyses = analyze_files(files);
    let mut out = Vec::new();
    for ((label, src), analysis) in files.iter().zip(&analyses) {
        let fixable: Vec<&crate::engine::Finding> =
            analysis.findings.iter().filter(|f| f.fixable).collect();
        if fixable.is_empty() {
            continue;
        }
        let lexed = lex(src);
        let match_of = match_delims(&lexed.tokens);
        let chars: Vec<char> = src.chars().collect();
        let mut edits: Vec<Edit> = Vec::new();
        let token_at = |line: u32, col: u32| -> Option<usize> {
            lexed.tokens.iter().position(|t| t.line == line && t.col == col)
        };
        let mut swap_hash_idents = false;
        for f in &fixable {
            match f.rule {
                "float-total-order" => {
                    let Some(idx) = token_at(f.line, f.col) else { continue };
                    let tok = &lexed.tokens[idx];
                    let Some((dot, close)) =
                        partial_cmp_unwrap_span(&lexed.tokens, &match_of, idx)
                    else {
                        continue;
                    };
                    edits.push(Edit {
                        start: tok.offset,
                        end: tok.offset + tok.len,
                        replacement: "total_cmp".to_string(),
                    });
                    let del_start = lexed.tokens[dot].offset;
                    let del_end = lexed.tokens[close].offset + lexed.tokens[close].len;
                    edits.push(Edit { start: del_start, end: del_end, replacement: String::new() });
                }
                "missing-must-use" => {
                    let Some(idx) = token_at(f.line, f.col) else { continue };
                    let tok = &lexed.tokens[idx];
                    let line_start = tok.offset.saturating_sub(tok.col as usize - 1);
                    let indent: String = chars[line_start..]
                        .iter()
                        .take_while(|c| **c == ' ' || **c == '\t')
                        .collect();
                    edits.push(Edit {
                        start: line_start,
                        end: line_start,
                        replacement: format!("{indent}{MUST_USE_ATTR}\n"),
                    });
                }
                "hash-order-iteration" => swap_hash_idents = true,
                _ => {}
            }
        }
        if swap_hash_idents {
            for t in &lexed.tokens {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let replacement = match t.text.as_str() {
                    "HashMap" => "BTreeMap",
                    "HashSet" => "BTreeSet",
                    _ => continue,
                };
                edits.push(Edit {
                    start: t.offset,
                    end: t.offset + t.len,
                    replacement: replacement.to_string(),
                });
            }
        }
        if let Some((fixed, applied)) = apply_edits(&chars, edits) {
            if fixed != *src {
                out.push((label.clone(), fixed, applied));
            }
        }
    }
    out
}

/// Applies non-overlapping edits to a char buffer; returns the new string
/// and how many edits were applied (overlapping or duplicate edits are
/// dropped deterministically, keeping the earliest-starting one).
fn apply_edits(chars: &[char], mut edits: Vec<Edit>) -> Option<(String, usize)> {
    if edits.is_empty() {
        return None;
    }
    edits.sort_by_key(|e| (e.start, e.end));
    let mut kept: Vec<Edit> = Vec::new();
    for e in edits {
        match kept.last() {
            Some(prev) if e.start < prev.end => continue,
            Some(prev) if e.start == prev.start && e.end == prev.end => continue,
            _ => kept.push(e),
        }
    }
    let applied = kept.len();
    let mut out = String::with_capacity(chars.len());
    let mut pos = 0usize;
    for e in &kept {
        if e.start > chars.len() || e.end > chars.len() || e.start < pos {
            continue;
        }
        out.extend(&chars[pos..e.start]);
        out.push_str(&e.replacement);
        pos = e.end;
    }
    out.extend(&chars[pos..]);
    Some((out, applied))
}

/// Applies machine-applicable fixes to every Rust file under the given
/// roots, writing changed files in place.
#[must_use = "the outcome reports how many files were rewritten"]
pub fn fix_paths(roots: &[PathBuf]) -> io::Result<FixOutcome> {
    let mut paths = Vec::new();
    let mut files = Vec::new();
    for root in roots {
        for file in collect_rust_files(root)? {
            let src = std::fs::read_to_string(&file)?;
            files.push((label_of(&file), src));
            paths.push(file);
        }
    }
    let mut outcome = FixOutcome::default();
    for (label, fixed, applied) in plan_fixes(&files) {
        let Some(pos) = files.iter().position(|(l, _)| *l == label) else { continue };
        std::fs::write(&paths[pos], fixed)?;
        outcome.files_changed += 1;
        outcome.edits_applied += applied;
    }
    Ok(outcome)
}

/// Exposed for tests: the spelling of tokens after lexing a fixed source,
/// to assert structural (not just textual) properties of rewrites.
#[cfg(test)]
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_one(label: &str, src: &str) -> Option<String> {
        plan_fixes(&[(label.to_string(), src.to_string())])
            .pop()
            .map(|(_, fixed, _)| fixed)
    }

    #[test]
    fn total_cmp_rewrite_deletes_unwrap() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let fixed = plan_one("crates/model/src/x.rs", src).unwrap_or_default();
        assert!(fixed.contains("a.total_cmp(b));"), "{fixed}");
        assert!(!fixed.contains("partial_cmp"));
        assert!(!fixed.contains("unwrap"));
        // expect(..) with an argument is deleted wholesale too.
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"cmp\")); }\n";
        let fixed = plan_one("crates/model/src/x.rs", src).unwrap_or_default();
        assert!(fixed.contains("a.total_cmp(b));"), "{fixed}");
        // Bare partial_cmp without .unwrap() is NOT auto-fixed.
        let src = "fn f(a: f64, b: f64) -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(plan_one("crates/model/src/x.rs", src).is_none());
    }

    #[test]
    fn must_use_insert_matches_indentation() {
        let src = "impl X {\n    pub fn save(&self) -> io::Result<()> { go() }\n}\n";
        let fixed = plan_one("crates/model/src/x.rs", src).unwrap_or_default();
        let expected = format!("    {MUST_USE_ATTR}\n    pub fn save");
        assert!(fixed.contains(&expected), "{fixed}");
    }

    #[test]
    fn hash_swap_is_whole_file_and_guarded() {
        let src = "use std::collections::HashMap;\npub struct S { m: HashMap<u32, f64> }\nimpl S {\n    pub fn total(&self) -> f64 { self.m.values().fold(0.0, f64::max) }\n}\n";
        let fixed = plan_one("crates/overlay/src/x.rs", src).unwrap_or_default();
        assert!(fixed.contains("use std::collections::BTreeMap;"), "{fixed}");
        assert!(!idents(&fixed).iter().any(|i| i == "HashMap"));
        // A file already using BTreeMap is not auto-swapped (import
        // collision risk) — the finding stays, unfixed.
        let src2 = format!("use std::collections::BTreeMap;\n{src}");
        let label = "crates/overlay/src/y.rs".to_string();
        let plans = plan_fixes(&[(label, src2)]);
        assert!(plans.is_empty(), "guarded file must not be rewritten");
    }

    #[test]
    fn fixes_are_idempotent() {
        let src = "use std::collections::HashMap;\n\
            pub struct S { m: HashMap<u32, f64> }\n\
            impl S {\n\
                pub fn sum(&self) -> f64 { self.m.values().fold(0.0, |a, b| a + b) }\n\
                pub fn io(&self) -> io::Result<()> { go() }\n\
            }\n\
            fn srt(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let label = "crates/pubsub/src/x.rs";
        let first = plan_one(label, src).unwrap_or_default();
        assert_ne!(first, src);
        assert!(
            plan_one(label, &first).is_none(),
            "second pass must plan zero edits:\n{first}"
        );
    }

    #[test]
    fn overlapping_edits_keep_earliest() {
        let chars: Vec<char> = "abcdef".chars().collect();
        let edits = vec![
            Edit { start: 1, end: 3, replacement: "X".into() },
            Edit { start: 2, end: 4, replacement: "Y".into() },
            Edit { start: 4, end: 5, replacement: "Z".into() },
        ];
        let (out, n) = apply_edits(&chars, edits).unwrap_or_default();
        assert_eq!(out, "aXdZf");
        assert_eq!(n, 2);
    }
}
