//! Interprocedural purity/effect analysis: a forward dataflow fixpoint
//! over the workspace call graph.
//!
//! Each function gets an [`EffectSet`] — does it do IO, spawn threads,
//! touch sync primitives, read statics, take `&mut`, call into the
//! executor's dirty-set API? Local effects are recovered token-
//! structurally from the body; the fixpoint then unions callee effects
//! into callers until stable. The lattice is a finite powerset and every
//! transfer is monotone (callee sets only grow, and ambiguous names
//! resolve to the *intersection* of their candidates, which also only
//! grows), so termination is structural, and cycles in the call graph —
//! recursion, mutual recursion — converge instead of looping.
//!
//! The rules built on top treat the result asymmetrically: `kernel-impure`
//! wants "no effect" to be trustworthy, so detection errs toward flagging
//! (any sync-primitive method name counts as LOCK); `unmarked-dirty-write`
//! wants "touches the dirty API" to be easy to earn, so the DIRTY_API bit
//! matches generously (any dirty/changed bookkeeping name).

use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::symbols::Symbols;
use std::collections::BTreeMap;

/// A set of effects, as a bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct EffectSet(pub u16);

impl EffectSet {
    /// No effects: pure per-element math.
    pub const EMPTY: EffectSet = EffectSet(0);
    /// Writes to stdout/stderr/files, or process interaction.
    pub const IO: EffectSet = EffectSet(1);
    /// Spawns a thread.
    pub const SPAWN: EffectSet = EffectSet(2);
    /// Acquires a lock or touches a sync primitive (Mutex/RwLock/Condvar).
    pub const LOCK: EffectSet = EffectSet(4);
    /// Reads or writes a `static mut`.
    pub const STATIC_MUT: EffectSet = EffectSet(8);
    /// Mentions a crate `static` (read access, possibly interior).
    pub const STATIC_READ: EffectSet = EffectSet(16);
    /// Reads the wall clock.
    pub const TIME: EffectSet = EffectSet(32);
    /// Ambient randomness.
    pub const RNG: EffectSet = EffectSet(64);
    /// Takes a `&mut` parameter (out-parameters; a signature property,
    /// not propagated to callers).
    pub const MUT_PARAM: EffectSet = EffectSet(128);
    /// Touches the executor's dirty-set bookkeeping (`mark`, `note_*`,
    /// `dirty_*`/`changed_*` state).
    pub const DIRTY_API: EffectSet = EffectSet(256);

    /// Effects a kernel function must not acquire, directly or through
    /// any callee. `STATIC_READ` (constant tables) and `MUT_PARAM`
    /// (caller-provided scratch) are part of the kernel contract and
    /// stay allowed.
    pub const KERNEL_DENIED: EffectSet = EffectSet(
        Self::IO.0 | Self::SPAWN.0 | Self::LOCK.0 | Self::STATIC_MUT.0 | Self::TIME.0
            | Self::RNG.0,
    );

    /// Set union.
    #[must_use = "union returns the combined set"]
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use = "intersect returns the common subset"]
    pub fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    /// True if every bit of `other` is present.
    pub fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no effect is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Human names of the set bits, stable order.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (bit, name) in [
            (Self::IO, "io"),
            (Self::SPAWN, "spawn"),
            (Self::LOCK, "lock"),
            (Self::STATIC_MUT, "static-mut"),
            (Self::STATIC_READ, "static-read"),
            (Self::TIME, "time"),
            (Self::RNG, "rng"),
            (Self::MUT_PARAM, "mut-param"),
            (Self::DIRTY_API, "dirty-api"),
        ] {
            if self.contains(bit) {
                out.push(name);
            }
        }
        out
    }

    fn bits(self) -> impl Iterator<Item = EffectSet> {
        (0..16).map(|i| EffectSet(1 << i)).filter(move |b| self.contains(*b))
    }
}

/// Effects that flow from callee to caller. `MUT_PARAM` describes a
/// signature, not a behavior: calling a fn that takes `&mut` does not
/// make the caller take `&mut`.
const PROPAGATED: EffectSet = EffectSet(!EffectSet::MUT_PARAM.0);

/// The dirty-set bookkeeping entry points in `crates/core` (see
/// `StepState` in `crates/core/src/exec.rs`): calling one of these, or
/// touching the `dirty_*`/`changed_*` lists directly, is what pairs a
/// cached-state write with its invalidation.
const DIRTY_API_FNS: &[&str] = &[
    "mark",
    "clear_marks",
    "mark_all_dirty",
    "note_capacity_change",
    "note_population_change",
    "note_bounds_change",
];

/// Per-function analysis results, aligned with [`CallGraph::fns`].
#[derive(Debug, Default)]
pub struct EffectTable {
    /// Fixpoint effect set per fn.
    pub effects: Vec<EffectSet>,
    /// For each fn, the first-seen origin of each effect bit — a token
    /// spelling for local effects, `call to \`f\`` for inherited ones.
    pub origins: Vec<BTreeMap<u16, String>>,
}

impl EffectTable {
    /// A short provenance string for the given bits of fn `i`, e.g.
    /// ``lock (via `lock_unpoisoned`), io (via call to `trace`)``.
    pub fn describe(&self, i: usize, bits: EffectSet) -> String {
        let mut parts = Vec::new();
        for bit in bits.bits() {
            let name = bit.names().first().copied().unwrap_or("?");
            match self.origins.get(i).and_then(|m| m.get(&bit.0)) {
                Some(origin) => parts.push(format!("{name} (via {origin})")),
                None => parts.push(name.to_string()),
            }
        }
        parts.join(", ")
    }
}

/// The complete layer-3 workspace analysis handed to rules.
#[derive(Debug, Default)]
pub struct FlowInfo {
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Effect fixpoint over it.
    pub table: EffectTable,
}

impl FlowInfo {
    /// Builds the call graph and runs the fixpoint in one step. `files`
    /// entries mirror [`CallGraph::build`].
    pub fn build<'a>(
        files: impl IntoIterator<
            Item = (&'a str, Option<&'a str>, &'a ParsedForFlow<'a>),
        >,
        symbols: &Symbols,
    ) -> FlowInfo {
        let files: Vec<_> = files.into_iter().collect();
        let graph = CallGraph::build(files.iter().map(|(label, krate, f)| {
            (*label, *krate, f.parsed, f.tokens, f.test_ranges)
        }));
        let tokens_of: BTreeMap<&str, &[Token]> =
            files.iter().map(|(label, _, f)| (*label, f.tokens)).collect();
        let locals: Vec<(EffectSet, BTreeMap<u16, String>)> = graph
            .fns
            .iter()
            .map(|node| match tokens_of.get(node.file.as_str()) {
                Some(toks) => local_effects(toks, node.kw, node.body, &node.krate, symbols),
                None => (EffectSet::EMPTY, BTreeMap::new()),
            })
            .collect();
        let table = fixpoint(&graph, locals);
        FlowInfo { graph, table }
    }

    /// The fixpoint effects of the fn declared at `(file, kw)`, if known.
    pub fn effects_at(&self, file: &str, kw: usize) -> Option<EffectSet> {
        self.graph.fn_at(file, kw).map(|i| self.table.effects[i])
    }
}

/// What [`FlowInfo::build`] needs per file; a borrow bundle so the engine
/// can pass its prepared files without cloning.
#[derive(Debug)]
pub struct ParsedForFlow<'a> {
    /// Parsed structural view.
    pub parsed: &'a ParsedFile,
    /// Full token stream.
    pub tokens: &'a [Token],
    /// `#[cfg(test)]` regions as token ranges.
    pub test_ranges: &'a [(usize, usize)],
}

use crate::parser::ParsedFile;

/// Recovers the local (intraprocedural) effects of the fn whose keyword
/// sits at `kw`, with body `body`. The signature span (`kw` → body open)
/// contributes `MUT_PARAM`; the body contributes everything else.
pub fn local_effects(
    tokens: &[Token],
    kw: usize,
    body: Option<(usize, usize)>,
    krate: &str,
    symbols: &Symbols,
) -> (EffectSet, BTreeMap<u16, String>) {
    let mut eff = EffectSet::EMPTY;
    let mut origins: BTreeMap<u16, String> = BTreeMap::new();
    let mut add = |eff: &mut EffectSet, bit: EffectSet, origin: String| {
        if !eff.contains(bit) {
            *eff = eff.union(bit);
            origins.entry(bit.0).or_insert(origin);
        }
    };
    let sig_end = body.map(|(open, _)| open).unwrap_or_else(|| tokens.len().min(kw + 64));
    let mut k = kw;
    while k + 1 < sig_end {
        if tokens[k].is_punct("&") && tokens[k + 1].is_ident("mut") {
            add(&mut eff, EffectSet::MUT_PARAM, "`&mut` parameter".to_string());
            break;
        }
        k += 1;
    }
    let Some((open, close)) = body else { return (eff, origins) };
    let krate_opt = if krate == crate::callgraph::ROOT_CRATE { None } else { Some(krate) };
    for i in open + 1..close.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i >= 1 && tokens[i - 1].is_punct(".");
        let next = tokens.get(i + 1);
        let next_call = next.is_some_and(|n| n.is_punct("("));
        let next_bang = next.is_some_and(|n| n.is_punct("!"));
        let next_path = next.is_some_and(|n| n.is_punct("::"));
        let zero_arg =
            next_call && tokens.get(i + 2).is_some_and(|n| n.is_punct(")"));
        let name = t.text.as_str();
        match name {
            "println" | "eprintln" | "print" | "eprint" | "dbg" | "write" | "writeln"
                if next_bang =>
            {
                add(&mut eff, EffectSet::IO, format!("`{name}!`"));
            }
            "File" | "OpenOptions" | "Command" if next_path => {
                add(&mut eff, EffectSet::IO, format!("`{name}::`"));
            }
            "fs" if next_path => add(&mut eff, EffectSet::IO, "`fs::`".to_string()),
            "stdout" | "stdin" | "stderr" if next_call => {
                add(&mut eff, EffectSet::IO, format!("`{name}()`"));
            }
            "spawn" if next_call => {
                add(&mut eff, EffectSet::SPAWN, "`spawn(`".to_string());
            }
            "lock_unpoisoned" if next_call => {
                add(&mut eff, EffectSet::LOCK, "`lock_unpoisoned(`".to_string());
            }
            "lock" | "try_lock" | "wait" | "wait_timeout" | "wait_while" | "notify_all"
            | "notify_one"
                if prev_dot && next_call =>
            {
                add(&mut eff, EffectSet::LOCK, format!("`.{name}(`"));
            }
            "read" | "write" if prev_dot && zero_arg => {
                add(&mut eff, EffectSet::LOCK, format!("`.{name}()`"));
            }
            "Mutex" | "RwLock" | "Condvar" if next_path => {
                add(&mut eff, EffectSet::LOCK, format!("`{name}::`"));
            }
            "Instant"
                if next_path && tokens.get(i + 2).is_some_and(|n| n.is_ident("now")) =>
            {
                add(&mut eff, EffectSet::TIME, "`Instant::now`".to_string());
            }
            "SystemTime" if next_path => {
                add(&mut eff, EffectSet::TIME, "`SystemTime::`".to_string());
            }
            "thread_rng" if next_call => {
                add(&mut eff, EffectSet::RNG, "`thread_rng()`".to_string());
            }
            "random" if prev_dot && zero_arg => {
                add(&mut eff, EffectSet::RNG, "`.random()`".to_string());
            }
            _ => {}
        }
        if symbols.is_mut_static(krate_opt, name) {
            add(&mut eff, EffectSet::STATIC_MUT, format!("`static mut {name}`"));
        } else if symbols.is_static(krate_opt, name) {
            add(&mut eff, EffectSet::STATIC_READ, format!("`static {name}`"));
        }
        if (DIRTY_API_FNS.contains(&name) && next_call)
            || name.contains("dirty")
            || name.contains("changed")
        {
            add(&mut eff, EffectSet::DIRTY_API, format!("`{name}`"));
        }
    }
    (eff, origins)
}

/// Runs the interprocedural fixpoint: every fn's effects are its local
/// effects unioned with the propagated effects of every callee, iterated
/// to convergence. Ambiguous callee names (several definitions share it)
/// contribute the intersection of their candidates.
pub fn fixpoint(
    graph: &CallGraph,
    locals: Vec<(EffectSet, BTreeMap<u16, String>)>,
) -> EffectTable {
    let n = graph.fns.len();
    let mut effects: Vec<EffectSet> = locals.iter().map(|(e, _)| *e).collect();
    let mut origins: Vec<BTreeMap<u16, String>> =
        locals.into_iter().map(|(_, o)| o).collect();
    // Monotone over a finite lattice: at most bits × n rounds, in
    // practice a handful. The cap is a safety net, not a correctness
    // device.
    let max_rounds = 16 * n.max(1);
    for _ in 0..max_rounds {
        let mut changed = false;
        for i in 0..n {
            let krate = graph.fns[i].krate.clone();
            for c in 0..graph.fns[i].callees.len() {
                let callee = graph.fns[i].callees[c].clone();
                let incoming = callee_effects(graph, &effects, &krate, &callee)
                    .intersect(PROPAGATED);
                let fresh = EffectSet(incoming.0 & !effects[i].0);
                if !fresh.is_empty() {
                    effects[i] = effects[i].union(fresh);
                    for bit in fresh.bits() {
                        origins[i].entry(bit.0).or_insert_with(|| {
                            format!("call to `{callee}`")
                        });
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    EffectTable { effects, origins }
}

fn callee_effects(
    graph: &CallGraph,
    effects: &[EffectSet],
    krate: &str,
    name: &str,
) -> EffectSet {
    let cands = graph.candidates(krate, name);
    match cands {
        [] => EffectSet::EMPTY,
        [one] => effects[*one],
        many => many
            .iter()
            .map(|&i| effects[i])
            .reduce(EffectSet::intersect)
            .unwrap_or(EffectSet::EMPTY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn flow_of(files: &[(&str, Option<&str>, &str)]) -> FlowInfo {
        let lexed: Vec<_> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let parsed: Vec<_> = lexed.iter().map(|l| parse(&l.tokens)).collect();
        let symbols = Symbols::build(
            files.iter().enumerate().map(|(i, (_, krate, _))| (*krate, &parsed[i])),
        );
        let empty: Vec<(usize, usize)> = Vec::new();
        let bundles: Vec<ParsedForFlow> = (0..files.len())
            .map(|i| ParsedForFlow {
                parsed: &parsed[i],
                tokens: &lexed[i].tokens,
                test_ranges: &empty,
            })
            .collect();
        FlowInfo::build(
            files
                .iter()
                .enumerate()
                .map(|(i, (label, krate, _))| (*label, *krate, &bundles[i])),
            &symbols,
        )
    }

    fn effects_of(flow: &FlowInfo, name: &str) -> EffectSet {
        let i = flow
            .graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"));
        flow.table.effects[i]
    }

    #[test]
    fn purity_fixpoint_converges_over_a_cycle() {
        // a → b → c → b is a cycle; c does IO, so the whole cycle (and a)
        // acquires IO. The disjoint pure cycle p ⇄ q stays pure.
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() { if deep() { b(); } println!(\"x\"); }\n\
             fn deep() -> bool { true }\n\
             fn p() { q(); }\n\
             fn q() { p(); }\n",
        )]);
        for f in ["a", "b", "c"] {
            assert!(
                effects_of(&flow, f).contains(EffectSet::IO),
                "{f} must inherit IO through the cycle"
            );
        }
        assert!(effects_of(&flow, "deep").is_empty());
        assert!(effects_of(&flow, "p").is_empty(), "pure cycle stays pure");
        assert!(effects_of(&flow, "q").is_empty());
    }

    #[test]
    fn effects_propagate_across_crates_by_unique_name() {
        let flow = flow_of(&[
            (
                "crates/core/src/k.rs",
                Some("core"),
                "fn kernel_like() -> f64 { shape_value(2.0) }",
            ),
            (
                "crates/model/src/u.rs",
                Some("model"),
                "fn shape_value(x: f64) -> f64 { x }\nfn loader() { fs::read(\"p\"); }",
            ),
        ]);
        assert!(effects_of(&flow, "kernel_like").is_empty());
        assert!(effects_of(&flow, "loader").contains(EffectSet::IO));
    }

    #[test]
    fn ambiguous_names_resolve_to_the_intersection() {
        // Two `new` constructors in the same crate: one locks, one is
        // pure. A call to `new` must not poison the caller with LOCK.
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "impl A { fn new() -> A { let g = m.lock(); A } }\n\
             impl B { fn new() -> B { B } }\n\
             fn caller() { let b = B::new(); }\n",
        )]);
        assert!(
            effects_of(&flow, "caller").is_empty(),
            "intersection of an impure and a pure `new` is pure"
        );
    }

    #[test]
    fn mut_param_is_local_not_propagated() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn fill(out: &mut Vec<f64>) { out.push(1.0); }\n\
             fn caller() { let mut v = Vec::new(); fill(&mut v); }\n",
        )]);
        assert!(effects_of(&flow, "fill").contains(EffectSet::MUT_PARAM));
        assert!(
            !effects_of(&flow, "caller").contains(EffectSet::MUT_PARAM),
            "taking &mut is a signature property, not a callee-inherited one"
        );
    }

    #[test]
    fn lock_time_static_and_dirty_evidence() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "static mut SCRATCH: u32 = 0;\n\
             static TABLE: [f64; 2] = [0.0, 1.0];\n\
             fn locks() { let g = lock_unpoisoned(&m); }\n\
             fn timed() { let t = Instant::now(); }\n\
             fn scratchy() { SCRATCH += 1; }\n\
             fn tabled() -> f64 { TABLE[0] }\n\
             fn marked(s: &mut S) { s.rates[0] = 1.0; mark(&mut s.flags, &mut s.list, 0); }\n",
        )]);
        assert!(effects_of(&flow, "locks").contains(EffectSet::LOCK));
        assert!(effects_of(&flow, "timed").contains(EffectSet::TIME));
        assert!(effects_of(&flow, "scratchy").contains(EffectSet::STATIC_MUT));
        assert!(effects_of(&flow, "tabled").contains(EffectSet::STATIC_READ));
        assert!(!effects_of(&flow, "tabled").contains(EffectSet::STATIC_MUT));
        assert!(effects_of(&flow, "marked").contains(EffectSet::DIRTY_API));
        assert!(
            EffectSet::KERNEL_DENIED.contains(EffectSet::LOCK)
                && !EffectSet::KERNEL_DENIED.contains(EffectSet::STATIC_READ),
            "kernel contract allows constant tables, denies sync"
        );
    }

    #[test]
    fn describe_names_the_origin() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn inner() { println!(\"x\"); }\nfn outer() { inner(); }\n",
        )]);
        let outer = flow.graph.fns.iter().position(|f| f.name == "outer").unwrap();
        let desc = flow.table.describe(outer, EffectSet::IO);
        assert!(desc.contains("call to `inner`"), "{desc}");
        let inner = flow.graph.fns.iter().position(|f| f.name == "inner").unwrap();
        assert!(flow.table.describe(inner, EffectSet::IO).contains("println"), "local origin");
    }
}
