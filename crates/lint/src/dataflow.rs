//! Interprocedural purity/effect analysis: a forward dataflow fixpoint
//! over the workspace call graph.
//!
//! Each function gets an [`EffectSet`] — does it do IO, spawn threads,
//! touch sync primitives, read statics, take `&mut`, call into the
//! executor's dirty-set API? Local effects are recovered token-
//! structurally from the body; the fixpoint then unions callee effects
//! into callers until stable. The lattice is a finite powerset and every
//! transfer is monotone (callee sets only grow, and ambiguous names
//! resolve to the *intersection* of their candidates, which also only
//! grows), so termination is structural, and cycles in the call graph —
//! recursion, mutual recursion — converge instead of looping.
//!
//! The rules built on top treat the result asymmetrically: `kernel-impure`
//! wants "no effect" to be trustworthy, so detection errs toward flagging
//! (any sync-primitive method name counts as LOCK); `unmarked-dirty-write`
//! wants "touches the dirty API" to be easy to earn, so the DIRTY_API bit
//! matches generously (any dirty/changed bookkeeping name).

use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::symbols::Symbols;
use std::collections::BTreeMap;

/// A set of effects, as a bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct EffectSet(pub u16);

impl EffectSet {
    /// No effects: pure per-element math.
    pub const EMPTY: EffectSet = EffectSet(0);
    /// Writes to stdout/stderr/files, or process interaction.
    pub const IO: EffectSet = EffectSet(1);
    /// Spawns a thread.
    pub const SPAWN: EffectSet = EffectSet(2);
    /// Acquires a lock or touches a sync primitive (Mutex/RwLock/Condvar).
    pub const LOCK: EffectSet = EffectSet(4);
    /// Reads or writes a `static mut`.
    pub const STATIC_MUT: EffectSet = EffectSet(8);
    /// Mentions a crate `static` (read access, possibly interior).
    pub const STATIC_READ: EffectSet = EffectSet(16);
    /// Reads the wall clock.
    pub const TIME: EffectSet = EffectSet(32);
    /// Ambient randomness.
    pub const RNG: EffectSet = EffectSet(64);
    /// Takes a `&mut` parameter (out-parameters; a signature property,
    /// not propagated to callers).
    pub const MUT_PARAM: EffectSet = EffectSet(128);
    /// Touches the executor's dirty-set bookkeeping (`mark`, `note_*`,
    /// `dirty_*`/`changed_*` state).
    pub const DIRTY_API: EffectSet = EffectSet(256);
    /// Heap allocation: container/`String` construction (`Vec::with_capacity`,
    /// `Box::new`, `vec!`, `format!`), `collect`, `to_vec`/`to_owned`,
    /// `clone` of a container, or growth of a locally constructed
    /// container. Growing a *caller-provided* `&mut` scratch buffer is
    /// deliberately not counted: amortized reuse of caller-owned capacity
    /// is the kernel contract's sanctioned idiom.
    pub const ALLOC: EffectSet = EffectSet(512);
    /// A reachable panic site: `unwrap`/`expect`, the panic macro family,
    /// non-test `assert!`, range slicing (`x[lo..hi]`), arithmetic
    /// indexing (`x[i + 1]`), or integer division by a variable.
    /// `debug_assert!` is excluded by policy — it compiles out of release
    /// builds, which are what the hot-path budget protects.
    pub const PANIC: EffectSet = EffectSet(1024);

    /// Effects a kernel function must not acquire, directly or through
    /// any callee. `STATIC_READ` (constant tables) and `MUT_PARAM`
    /// (caller-provided scratch) are part of the kernel contract and
    /// stay allowed.
    pub const KERNEL_DENIED: EffectSet = EffectSet(
        Self::IO.0 | Self::SPAWN.0 | Self::LOCK.0 | Self::STATIC_MUT.0 | Self::TIME.0
            | Self::RNG.0,
    );

    /// Effects denied on the declared hot-path roots (see
    /// `crates/lint/hot_paths.txt`): the steady-state step must neither
    /// allocate nor reach a panic in release builds.
    pub const HOT_DENIED: EffectSet = EffectSet(Self::ALLOC.0 | Self::PANIC.0);

    /// Set union.
    #[must_use = "union returns the combined set"]
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use = "intersect returns the common subset"]
    pub fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    /// True if every bit of `other` is present.
    pub fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no effect is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Human names of the set bits, stable order.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (bit, name) in [
            (Self::IO, "io"),
            (Self::SPAWN, "spawn"),
            (Self::LOCK, "lock"),
            (Self::STATIC_MUT, "static-mut"),
            (Self::STATIC_READ, "static-read"),
            (Self::TIME, "time"),
            (Self::RNG, "rng"),
            (Self::MUT_PARAM, "mut-param"),
            (Self::DIRTY_API, "dirty-api"),
            (Self::ALLOC, "alloc"),
            (Self::PANIC, "panic"),
        ] {
            if self.contains(bit) {
                out.push(name);
            }
        }
        out
    }

    fn bits(self) -> impl Iterator<Item = EffectSet> {
        (0..16).map(|i| EffectSet(1 << i)).filter(move |b| self.contains(*b))
    }
}

/// Effects that flow from callee to caller. `MUT_PARAM` describes a
/// signature, not a behavior: calling a fn that takes `&mut` does not
/// make the caller take `&mut`.
const PROPAGATED: EffectSet = EffectSet(!EffectSet::MUT_PARAM.0);

/// The dirty-set bookkeeping entry points in `crates/core` (see
/// `StepState` in `crates/core/src/exec.rs`): calling one of these, or
/// touching the `dirty_*`/`changed_*` lists directly, is what pairs a
/// cached-state write with its invalidation.
const DIRTY_API_FNS: &[&str] = &[
    "mark",
    "clear_marks",
    "mark_all_dirty",
    "note_capacity_change",
    "note_population_change",
    "note_bounds_change",
];

/// Per-function analysis results, aligned with [`CallGraph::fns`].
#[derive(Debug, Default)]
pub struct EffectTable {
    /// Fixpoint effect set per fn.
    pub effects: Vec<EffectSet>,
    /// For each fn, the first-seen origin of each effect bit — a token
    /// spelling for local effects, `call to \`f\`` for inherited ones.
    pub origins: Vec<BTreeMap<u16, String>>,
    /// For each fn, the callee (by node index) through which each
    /// *inherited* effect bit first arrived; locally originated bits are
    /// absent. Following these links yields a call-chain witness without
    /// re-running the fixpoint.
    pub via: Vec<BTreeMap<u16, usize>>,
}

impl EffectTable {
    /// A short provenance string for the given bits of fn `i`, e.g.
    /// ``lock (via `lock_unpoisoned`), io (via call to `trace`)``.
    pub fn describe(&self, i: usize, bits: EffectSet) -> String {
        let mut parts = Vec::new();
        for bit in bits.bits() {
            let name = bit.names().first().copied().unwrap_or("?");
            match self.origins.get(i).and_then(|m| m.get(&bit.0)) {
                Some(origin) => parts.push(format!("{name} (via {origin})")),
                None => parts.push(name.to_string()),
            }
        }
        parts.join(", ")
    }

    /// The call chain along which fn `i` carries `bit` (a single-bit set):
    /// node `i` first, then each callee the first-seen inheritance edge
    /// points at, ending at the fn whose own body introduces the effect.
    /// Deterministic (the `via` edge is first-seen under a stable
    /// iteration order) and cycle-guarded.
    pub fn witness_chain(&self, i: usize, bit: EffectSet) -> Vec<usize> {
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(&next) = self.via.get(cur).and_then(|m| m.get(&bit.0)) {
            if chain.contains(&next) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        chain
    }
}

/// The complete layer-3 workspace analysis handed to rules.
#[derive(Debug, Default)]
pub struct FlowInfo {
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Effect fixpoint over it.
    pub table: EffectTable,
}

impl FlowInfo {
    /// Builds the call graph and runs the fixpoint in one step. `files`
    /// entries mirror [`CallGraph::build`].
    pub fn build<'a>(
        files: impl IntoIterator<
            Item = (&'a str, Option<&'a str>, &'a ParsedForFlow<'a>),
        >,
        symbols: &Symbols,
    ) -> FlowInfo {
        let files: Vec<_> = files.into_iter().collect();
        let graph = CallGraph::build(files.iter().map(|(label, krate, f)| {
            (*label, *krate, f.parsed, f.tokens, f.test_ranges)
        }));
        let tokens_of: BTreeMap<&str, &[Token]> =
            files.iter().map(|(label, _, f)| (*label, f.tokens)).collect();
        let locals: Vec<(EffectSet, BTreeMap<u16, String>)> = graph
            .fns
            .iter()
            .map(|node| match tokens_of.get(node.file.as_str()) {
                Some(toks) => local_effects(toks, node.kw, node.body, &node.krate, symbols),
                None => (EffectSet::EMPTY, BTreeMap::new()),
            })
            .collect();
        let table = fixpoint(&graph, locals);
        FlowInfo { graph, table }
    }

    /// The fixpoint effects of the fn declared at `(file, kw)`, if known.
    pub fn effects_at(&self, file: &str, kw: usize) -> Option<EffectSet> {
        self.graph.fn_at(file, kw).map(|i| self.table.effects[i])
    }
}

/// What [`FlowInfo::build`] needs per file; a borrow bundle so the engine
/// can pass its prepared files without cloning.
#[derive(Debug)]
pub struct ParsedForFlow<'a> {
    /// Parsed structural view.
    pub parsed: &'a ParsedFile,
    /// Full token stream.
    pub tokens: &'a [Token],
    /// `#[cfg(test)]` regions as token ranges.
    pub test_ranges: &'a [(usize, usize)],
}

use crate::parser::ParsedFile;

/// Recovers the local (intraprocedural) effects of the fn whose keyword
/// sits at `kw`, with body `body`. The signature span (`kw` → body open)
/// contributes `MUT_PARAM`; the body contributes everything else.
pub fn local_effects(
    tokens: &[Token],
    kw: usize,
    body: Option<(usize, usize)>,
    krate: &str,
    symbols: &Symbols,
) -> (EffectSet, BTreeMap<u16, String>) {
    let mut eff = EffectSet::EMPTY;
    let mut origins: BTreeMap<u16, String> = BTreeMap::new();
    let mut add = |eff: &mut EffectSet, bit: EffectSet, origin: String| {
        if !eff.contains(bit) {
            *eff = eff.union(bit);
            origins.entry(bit.0).or_insert(origin);
        }
    };
    let sig_end = body.map(|(open, _)| open).unwrap_or_else(|| tokens.len().min(kw + 64));
    let mut k = kw;
    while k + 1 < sig_end {
        if tokens[k].is_punct("&") && tokens[k + 1].is_ident("mut") {
            add(&mut eff, EffectSet::MUT_PARAM, "`&mut` parameter".to_string());
            break;
        }
        k += 1;
    }
    let Some((open, close)) = body else { return (eff, origins) };
    let close = close.min(tokens.len());
    let krate_opt = if krate == crate::callgraph::ROOT_CRATE { None } else { Some(krate) };
    // Cheap local type evidence for the ALLOC/PANIC detectors: integer-
    // typed names (division-by-variable panics), names with container
    // type evidence (`.clone()` allocates), and containers *constructed
    // in this body* (growing one allocates; growing a caller-provided
    // buffer does not).
    let mut int_names: Vec<&str> = Vec::new();
    let mut container_typed: Vec<&str> = Vec::new();
    let mut container_locals: Vec<&str> = Vec::new();
    let mut j = kw + 1;
    while j + 1 < sig_end {
        if tokens[j].is_punct(":") && tokens[j - 1].kind == TokenKind::Ident {
            let pname = tokens[j - 1].text.as_str();
            let mut k = j + 1;
            while k < sig_end
                && (tokens[k].is_punct("&")
                    || tokens[k].is_ident("mut")
                    || tokens[k].kind == TokenKind::Lifetime)
            {
                k += 1;
            }
            if let Some(ty) = tokens.get(k).filter(|t| t.kind == TokenKind::Ident) {
                if INT_TYPES.contains(&ty.text.as_str()) {
                    int_names.push(pname);
                } else if CONTAINER_HEADS.contains(&ty.text.as_str()) {
                    container_typed.push(pname);
                }
            }
        }
        j += 1;
    }
    let bindings = crate::parser::let_bindings(tokens, open, close);
    for b in &bindings {
        let name = tokens[b.idx].text.as_str();
        if let Some(ty) = &b.ty {
            if INT_TYPES.contains(&ty.head.as_str()) {
                int_names.push(name);
            } else if CONTAINER_HEADS.contains(&ty.head.as_str()) {
                container_typed.push(name);
            }
        }
        if let Some(init) = &b.init_head {
            if CONTAINER_HEADS.contains(&init.as_str()) || init == "vec" {
                container_typed.push(name);
                container_locals.push(name);
            }
        }
    }
    let mut i = open + 1;
    while i < close {
        // Statement-level `#[cfg(test)]` guards (the item-level ranges are
        // stripped upstream): the gated statement never runs outside
        // tests, so its effects don't count.
        if let Some(end) = cfg_test_stmt_end(tokens, i, close) {
            i = end + 1;
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            scan_panic_puncts(tokens, i, close, &int_names, &mut |bit, origin| {
                add(&mut eff, bit, origin);
            });
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let prev_dot = i >= 1 && tokens[i - 1].is_punct(".");
        let next = tokens.get(i + 1);
        let next_call = next.is_some_and(|n| n.is_punct("("));
        let next_bang = next.is_some_and(|n| n.is_punct("!"));
        let next_path = next.is_some_and(|n| n.is_punct("::"));
        let zero_arg =
            next_call && tokens.get(i + 2).is_some_and(|n| n.is_punct(")"));
        let name = t.text.as_str();
        match name {
            "println" | "eprintln" | "print" | "eprint" | "dbg" | "write" | "writeln"
                if next_bang =>
            {
                add(&mut eff, EffectSet::IO, format!("`{name}!`"));
            }
            "File" | "OpenOptions" | "Command" if next_path => {
                add(&mut eff, EffectSet::IO, format!("`{name}::`"));
            }
            "fs" if next_path => add(&mut eff, EffectSet::IO, "`fs::`".to_string()),
            "stdout" | "stdin" | "stderr" if next_call => {
                add(&mut eff, EffectSet::IO, format!("`{name}()`"));
            }
            "spawn" if next_call => {
                add(&mut eff, EffectSet::SPAWN, "`spawn(`".to_string());
            }
            "lock_unpoisoned" if next_call => {
                add(&mut eff, EffectSet::LOCK, "`lock_unpoisoned(`".to_string());
            }
            "lock" | "try_lock" | "wait" | "wait_timeout" | "wait_while" | "notify_all"
            | "notify_one"
                if prev_dot && next_call =>
            {
                add(&mut eff, EffectSet::LOCK, format!("`.{name}(`"));
            }
            "read" | "write" if prev_dot && zero_arg => {
                add(&mut eff, EffectSet::LOCK, format!("`.{name}()`"));
            }
            "Mutex" | "RwLock" | "Condvar" if next_path => {
                add(&mut eff, EffectSet::LOCK, format!("`{name}::`"));
            }
            "Instant"
                if next_path && tokens.get(i + 2).is_some_and(|n| n.is_ident("now")) =>
            {
                add(&mut eff, EffectSet::TIME, "`Instant::now`".to_string());
            }
            "SystemTime" if next_path => {
                add(&mut eff, EffectSet::TIME, "`SystemTime::`".to_string());
            }
            "thread_rng" if next_call => {
                add(&mut eff, EffectSet::RNG, "`thread_rng()`".to_string());
            }
            "random" if prev_dot && zero_arg => {
                add(&mut eff, EffectSet::RNG, "`.random()`".to_string());
            }
            "vec" | "format" if next_bang => {
                add(&mut eff, EffectSet::ALLOC, format!("`{name}!`"));
            }
            "collect" | "to_vec" | "to_string" | "to_owned" if prev_dot && next_call => {
                add(&mut eff, EffectSet::ALLOC, format!("`.{name}(`"));
            }
            "with_capacity" if next_call => {
                add(&mut eff, EffectSet::ALLOC, "`with_capacity(`".to_string());
            }
            "Box" if next_path => {
                add(&mut eff, EffectSet::ALLOC, "`Box::`".to_string());
            }
            // `Vec::new()` / `String::default()` construct empty values
            // without touching the heap; every other associated fn on a
            // container head is assumed to allocate.
            "Vec" | "String" | "VecDeque" | "BTreeMap" | "BTreeSet"
                if next_path
                    && tokens.get(i + 2).is_some_and(|n| {
                        n.kind == TokenKind::Ident && n.text != "new" && n.text != "default"
                    }) =>
            {
                add(&mut eff, EffectSet::ALLOC, format!("`{name}::`"));
            }
            "clone" if prev_dot && zero_arg && clones_container(tokens, i, krate_opt, symbols, &container_typed) => {
                add(&mut eff, EffectSet::ALLOC, "`.clone()` of a container".to_string());
            }
            "push" | "extend" | "insert" if prev_dot && next_call => {
                // Only growth of a container constructed in this body
                // counts: pushing into a caller's `&mut` scratch reuses
                // caller-owned (amortized) capacity by contract.
                if let Some(recv) = bare_receiver(tokens, i) {
                    if container_locals.contains(&recv) {
                        add(&mut eff, EffectSet::ALLOC, format!("growth of local `{recv}`"));
                    }
                }
            }
            "unwrap" | "expect" if prev_dot && next_call => {
                add(&mut eff, EffectSet::PANIC, format!("`.{name}(`"));
            }
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne"
                if next_bang =>
            {
                add(&mut eff, EffectSet::PANIC, format!("`{name}!`"));
            }
            "panic_any" if next_call => {
                add(&mut eff, EffectSet::PANIC, "`panic_any(`".to_string());
            }
            _ => {}
        }
        if symbols.is_mut_static(krate_opt, name) {
            add(&mut eff, EffectSet::STATIC_MUT, format!("`static mut {name}`"));
        } else if symbols.is_static(krate_opt, name) {
            add(&mut eff, EffectSet::STATIC_READ, format!("`static {name}`"));
        }
        if (DIRTY_API_FNS.contains(&name) && next_call)
            || name.contains("dirty")
            || name.contains("changed")
        {
            add(&mut eff, EffectSet::DIRTY_API, format!("`{name}`"));
        }
        i += 1;
    }
    (eff, origins)
}

/// Integer type names providing divide-by-variable evidence.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Heap-owning container type heads: constructing (non-empty) or growing
/// one allocates, and so does cloning one.
const CONTAINER_HEADS: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// The bare (single-ident, non-path) receiver of a `.method(` at `i`, if
/// any: `name.push(..)` yields `name`; `self.list.push(..)` and
/// `a().list.push(..)` yield nothing.
fn bare_receiver(tokens: &[Token], i: usize) -> Option<&str> {
    if i < 2 || tokens[i - 2].kind != TokenKind::Ident {
        return None;
    }
    if i >= 3 && (tokens[i - 3].is_punct(".") || tokens[i - 3].is_punct("::")) {
        return None;
    }
    Some(tokens[i - 2].text.as_str())
}

/// Container evidence for a `.clone()` receiver: a bare local/param whose
/// type or initializer names a container head, or a `self.field` whose
/// declared field type does.
fn clones_container(
    tokens: &[Token],
    i: usize,
    krate: Option<&str>,
    symbols: &Symbols,
    container_typed: &[&str],
) -> bool {
    if let Some(recv) = bare_receiver(tokens, i) {
        return container_typed.contains(&recv);
    }
    // `self.field.clone()`
    if i >= 4
        && tokens[i - 2].kind == TokenKind::Ident
        && tokens[i - 3].is_punct(".")
        && tokens[i - 4].is_ident("self")
    {
        return symbols
            .field_head(krate, tokens[i - 2].text.as_str())
            .is_some_and(|ty| CONTAINER_HEADS.contains(&ty.head.as_str()));
    }
    false
}

/// If the token at `i` opens a statement-level `#[cfg(test)]` attribute
/// (inside a fn body, where the item-level test ranges don't reach),
/// returns the index of the gated statement's last token.
fn cfg_test_stmt_end(tokens: &[Token], i: usize, close: usize) -> Option<usize> {
    if !tokens[i].is_punct("#") || !tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut saw_test = false;
    let mut saw_not = false;
    let attr_close = loop {
        if j >= close {
            return None;
        }
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break j;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        } else if t.is_ident("not") {
            saw_not = true;
        }
        j += 1;
    };
    if !saw_test || saw_not {
        return None;
    }
    // The gated statement runs to the `;` at brace depth 0, or through
    // the first brace block (following `else` chains for a gated `if`).
    let mut k = attr_close + 1;
    let mut depth = 0i32;
    while k < close {
        let t = &tokens[k];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 && !tokens.get(k + 1).is_some_and(|t| t.is_ident("else")) {
                return Some(k);
            }
        } else if depth == 0 && t.is_punct(";") {
            return Some(k);
        }
        k += 1;
    }
    Some(close.saturating_sub(1))
}

/// True if the token before `k` puts an operator or `[` in *postfix*
/// (binary) position: an expression just ended, so what follows indexes
/// or combines it rather than starting a new one.
fn after_expression(tokens: &[Token], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let prev = &tokens[k - 1];
    match prev.kind {
        TokenKind::Ident => !matches!(
            prev.text.as_str(),
            "in" | "if" | "else" | "match" | "return" | "break" | "while" | "loop" | "let"
                | "mut" | "move" | "ref" | "as" | "dyn" | "where" | "impl" | "use" | "pub"
                | "fn" | "const" | "static" | "struct" | "enum" | "trait" | "unsafe" | "for"
        ),
        TokenKind::Int | TokenKind::Float => true,
        _ => prev.is_punct(")") || prev.is_punct("]"),
    }
}

/// Panic evidence carried by punctuation: postfix indexing whose interior
/// range-slices (`x[lo..hi]`) or computes (`x[i + 1]`) — both panic when
/// out of bounds in release — and division/remainder by an integer-typed
/// variable. Plain `x[i]` lookups are *not* flagged: the id-to-dense-
/// column pattern is load-bearing throughout the workspace and a bare
/// index is the idiom's sanctioned form.
fn scan_panic_puncts(
    tokens: &[Token],
    i: usize,
    close: usize,
    int_names: &[&str],
    add: &mut dyn FnMut(EffectSet, String),
) {
    let t = &tokens[i];
    if t.is_punct("[") && after_expression(tokens, i) {
        let mut depth = 0i32;
        let mut k = i;
        while k < close {
            let t = &tokens[k];
            if t.is_punct("[") || t.is_punct("(") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("]") || t.is_punct(")") || t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if t.is_punct("..") || t.is_punct("..=") {
                    add(EffectSet::PANIC, "range slicing (`[lo..hi]`)".to_string());
                } else if matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%")
                    && t.kind == TokenKind::Punct
                    && after_expression(tokens, k)
                {
                    add(EffectSet::PANIC, format!("arithmetic index (`[.. {} ..]`)", t.text));
                }
            }
            k += 1;
        }
    }
    if (t.is_punct("/") || t.is_punct("%")) && after_expression(tokens, i) {
        // Only variable divisors with *integer* type evidence count —
        // float division never panics, and `x / b.max(1)` guards itself.
        if let Some(rhs) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
            if int_names.contains(&rhs.text.as_str())
                && !tokens.get(i + 2).is_some_and(|t| t.is_punct("."))
            {
                add(EffectSet::PANIC, format!("integer `{} {}`", t.text, rhs.text));
            }
        }
    }
}

/// Runs the interprocedural fixpoint: every fn's effects are its local
/// effects unioned with the propagated effects of every callee, iterated
/// to convergence. Ambiguous callee names (several definitions share it)
/// contribute the intersection of their candidates.
pub fn fixpoint(
    graph: &CallGraph,
    locals: Vec<(EffectSet, BTreeMap<u16, String>)>,
) -> EffectTable {
    let n = graph.fns.len();
    let mut effects: Vec<EffectSet> = locals.iter().map(|(e, _)| *e).collect();
    let mut origins: Vec<BTreeMap<u16, String>> =
        locals.into_iter().map(|(_, o)| o).collect();
    let mut via: Vec<BTreeMap<u16, usize>> = vec![BTreeMap::new(); n];
    // Monotone over a finite lattice: at most bits × n rounds, in
    // practice a handful. The cap is a safety net, not a correctness
    // device.
    let max_rounds = 16 * n.max(1);
    for _ in 0..max_rounds {
        let mut changed = false;
        for i in 0..n {
            let krate = graph.fns[i].krate.clone();
            for c in 0..graph.fns[i].callees.len() {
                let callee = graph.fns[i].callees[c].clone();
                let incoming = callee_effects(graph, &effects, &krate, &callee)
                    .intersect(PROPAGATED);
                let fresh = EffectSet(incoming.0 & !effects[i].0);
                if !fresh.is_empty() {
                    effects[i] = effects[i].union(fresh);
                    let cands = graph.candidates(&krate, &callee);
                    for bit in fresh.bits() {
                        origins[i].entry(bit.0).or_insert_with(|| {
                            format!("call to `{callee}`")
                        });
                        // Under intersection semantics every candidate
                        // carries the bit; record the first as the
                        // witness edge.
                        if let Some(&target) =
                            cands.iter().find(|&&x| effects[x].contains(bit))
                        {
                            via[i].entry(bit.0).or_insert(target);
                        }
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    EffectTable { effects, origins, via }
}

fn callee_effects(
    graph: &CallGraph,
    effects: &[EffectSet],
    krate: &str,
    name: &str,
) -> EffectSet {
    let cands = graph.candidates(krate, name);
    match cands {
        [] => EffectSet::EMPTY,
        [one] => effects[*one],
        many => many
            .iter()
            .map(|&i| effects[i])
            .reduce(EffectSet::intersect)
            .unwrap_or(EffectSet::EMPTY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn flow_of(files: &[(&str, Option<&str>, &str)]) -> FlowInfo {
        let lexed: Vec<_> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let parsed: Vec<_> = lexed.iter().map(|l| parse(&l.tokens)).collect();
        let symbols = Symbols::build(
            files.iter().enumerate().map(|(i, (_, krate, _))| (*krate, &parsed[i])),
        );
        let empty: Vec<(usize, usize)> = Vec::new();
        let bundles: Vec<ParsedForFlow> = (0..files.len())
            .map(|i| ParsedForFlow {
                parsed: &parsed[i],
                tokens: &lexed[i].tokens,
                test_ranges: &empty,
            })
            .collect();
        FlowInfo::build(
            files
                .iter()
                .enumerate()
                .map(|(i, (label, krate, _))| (*label, *krate, &bundles[i])),
            &symbols,
        )
    }

    fn effects_of(flow: &FlowInfo, name: &str) -> EffectSet {
        let i = flow
            .graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"));
        flow.table.effects[i]
    }

    #[test]
    fn purity_fixpoint_converges_over_a_cycle() {
        // a → b → c → b is a cycle; c does IO, so the whole cycle (and a)
        // acquires IO. The disjoint pure cycle p ⇄ q stays pure.
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() { if deep() { b(); } println!(\"x\"); }\n\
             fn deep() -> bool { true }\n\
             fn p() { q(); }\n\
             fn q() { p(); }\n",
        )]);
        for f in ["a", "b", "c"] {
            assert!(
                effects_of(&flow, f).contains(EffectSet::IO),
                "{f} must inherit IO through the cycle"
            );
        }
        assert!(effects_of(&flow, "deep").is_empty());
        assert!(effects_of(&flow, "p").is_empty(), "pure cycle stays pure");
        assert!(effects_of(&flow, "q").is_empty());
    }

    #[test]
    fn effects_propagate_across_crates_by_unique_name() {
        let flow = flow_of(&[
            (
                "crates/core/src/k.rs",
                Some("core"),
                "fn kernel_like() -> f64 { shape_value(2.0) }",
            ),
            (
                "crates/model/src/u.rs",
                Some("model"),
                "fn shape_value(x: f64) -> f64 { x }\nfn loader() { fs::read(\"p\"); }",
            ),
        ]);
        assert!(effects_of(&flow, "kernel_like").is_empty());
        assert!(effects_of(&flow, "loader").contains(EffectSet::IO));
    }

    #[test]
    fn ambiguous_names_resolve_to_the_intersection() {
        // Two `new` constructors in the same crate: one locks, one is
        // pure. A call to `new` must not poison the caller with LOCK.
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "impl A { fn new() -> A { let g = m.lock(); A } }\n\
             impl B { fn new() -> B { B } }\n\
             fn caller() { let b = B::new(); }\n",
        )]);
        assert!(
            effects_of(&flow, "caller").is_empty(),
            "intersection of an impure and a pure `new` is pure"
        );
    }

    #[test]
    fn mut_param_is_local_not_propagated() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn fill(out: &mut Vec<f64>) { out.push(1.0); }\n\
             fn caller() { let mut v = Vec::new(); fill(&mut v); }\n",
        )]);
        assert!(effects_of(&flow, "fill").contains(EffectSet::MUT_PARAM));
        assert!(
            !effects_of(&flow, "caller").contains(EffectSet::MUT_PARAM),
            "taking &mut is a signature property, not a callee-inherited one"
        );
    }

    #[test]
    fn lock_time_static_and_dirty_evidence() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "static mut SCRATCH: u32 = 0;\n\
             static TABLE: [f64; 2] = [0.0, 1.0];\n\
             fn locks() { let g = lock_unpoisoned(&m); }\n\
             fn timed() { let t = Instant::now(); }\n\
             fn scratchy() { SCRATCH += 1; }\n\
             fn tabled() -> f64 { TABLE[0] }\n\
             fn marked(s: &mut S) { s.rates[0] = 1.0; mark(&mut s.flags, &mut s.list, 0); }\n",
        )]);
        assert!(effects_of(&flow, "locks").contains(EffectSet::LOCK));
        assert!(effects_of(&flow, "timed").contains(EffectSet::TIME));
        assert!(effects_of(&flow, "scratchy").contains(EffectSet::STATIC_MUT));
        assert!(effects_of(&flow, "tabled").contains(EffectSet::STATIC_READ));
        assert!(!effects_of(&flow, "tabled").contains(EffectSet::STATIC_MUT));
        assert!(effects_of(&flow, "marked").contains(EffectSet::DIRTY_API));
        assert!(
            EffectSet::KERNEL_DENIED.contains(EffectSet::LOCK)
                && !EffectSet::KERNEL_DENIED.contains(EffectSet::STATIC_READ),
            "kernel contract allows constant tables, denies sync"
        );
    }

    #[test]
    fn describe_names_the_origin() {
        let flow = flow_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn inner() { println!(\"x\"); }\nfn outer() { inner(); }\n",
        )]);
        let outer = flow.graph.fns.iter().position(|f| f.name == "outer").unwrap();
        let desc = flow.table.describe(outer, EffectSet::IO);
        assert!(desc.contains("call to `inner`"), "{desc}");
        let inner = flow.graph.fns.iter().position(|f| f.name == "inner").unwrap();
        assert!(flow.table.describe(inner, EffectSet::IO).contains("println"), "local origin");
    }
}
