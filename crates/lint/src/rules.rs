//! The determinism-invariant rules.
//!
//! Every rule is a pure function over one file's token stream (see
//! [`FileContext`]); none of them parse Rust properly, and none of them
//! need to — each targets a concrete token-level pattern that PR reviews
//! have already had to catch by hand. The rules err on the side of
//! flagging: intentional uses are documented in place with
//! `// lrgp-lint: allow(<rule>, reason = "...")`.

use crate::engine::{FileContext, FileKind, Finding};
use crate::lexer::TokenKind;
use crate::semantic;

/// One registered rule.
pub struct Rule {
    /// Stable kebab-case id, used in diagnostics and `allow()` directives.
    pub id: &'static str,
    /// One-line description of the pattern it flags.
    pub summary: &'static str,
    /// The engine invariant the rule protects (shown by `--list-rules`
    /// and quoted in DESIGN.md).
    pub invariant: &'static str,
    /// Long-form rationale, example finding, and remediation — printed by
    /// `--explain <rule>`.
    pub explain: &'static str,
    /// The checker.
    pub check: fn(&FileContext) -> Vec<Finding>,
}

/// All rules, in the order they run.
pub const RULES: &[Rule] = &[
    Rule {
        id: "float-total-order",
        summary: "`partial_cmp` used as a float comparator — use `f64::total_cmp`",
        invariant: "sorted orders (admission BC order, report orderings, threshold \
                    lists) must be total and input-permutation-stable, or the three \
                    engines stop being bit-identical",
        explain: "`partial_cmp` returns None for NaN, so every caller must invent a \
                  fallback — and `unwrap_or(Equal)` fallbacks are not a total order: \
                  the result depends on which operand carried the NaN, so the same \
                  slice sorts differently under different input permutations. The \
                  admission comparator bug fixed in PR 2 was exactly this shape.\n\
                  Example: v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal));\n\
                  Fix: v.sort_by(|a, b| a.total_cmp(b)); add an explicit id \
                  tiebreaker if equal keys must order stably.",
        check: float_total_order,
    },
    Rule {
        id: "float-eq",
        summary: "`==`/`!=` against a non-zero float constant",
        invariant: "engine equivalence is defined via `f64::to_bits`; value-level \
                    float equality silently diverges under rounding-mode or \
                    evaluation-order changes (exact-zero sentinel checks are exempt)",
        explain: "Two engines that are mathematically equivalent still differ in \
                  f64 low bits when evaluation order differs, so `x == 0.25` can \
                  hold in the sequential engine and fail in the sharded one. The \
                  repo defines equivalence via `f64::to_bits`, and value-level \
                  comparison against non-zero constants silently weakens that. \
                  Exact zero is exempt because the engines use 0.0 as a sentinel \
                  that is only ever assigned, never computed.\n\
                  Example: if price == 1.5 { .. }\n\
                  Fix: compare to_bits values, use an explicit tolerance, or \
                  restructure the check around an assigned sentinel.",
        check: float_eq,
    },
    Rule {
        id: "nondeterministic-source",
        summary: "wall clock, system RNG, or process environment in a numeric path",
        invariant: "crates/{core,model,num} compute the same bits for the same \
                    problem on every run; time, ambient randomness, and env vars \
                    must be injected by callers, never read in the numeric kernel",
        explain: "The differential harness re-runs the same problem through three \
                  engines and asserts bit-identical output; any read of the wall \
                  clock, ambient RNG, or process environment inside \
                  crates/{core,model,num} makes the output depend on when and \
                  where the solve ran instead of on the problem.\n\
                  Example: let seed = Instant::now().elapsed().as_nanos();\n\
                  Fix: take time, seeds, and configuration as explicit arguments \
                  from the caller (the CLI/bench harnesses are allowed to read \
                  them).",
        check: nondeterministic_source,
    },
    Rule {
        id: "unordered-float-iteration",
        summary: "float accumulation while iterating a HashMap/HashSet",
        invariant: "std hash iteration order is randomly seeded per process, and \
                    float addition is non-associative: accumulating in hash order \
                    changes low bits run-to-run",
        explain: "Float addition is non-associative: (a + b) + c and a + (b + c) \
                  differ in low bits. Std HashMap/HashSet iteration order is \
                  randomly seeded per process, so a sum accumulated while \
                  iterating one changes across runs even for identical input.\n\
                  Example: for (_k, v) in rates { total += v; }\n\
                  Fix: iterate a sorted key snapshot, or store the data in \
                  BTreeMap/BTreeSet so the traversal order is defined by keys.",
        check: unordered_float_iteration,
    },
    Rule {
        id: "library-unwrap",
        summary: "`unwrap`/`expect`/`panic!` in non-test library code",
        invariant: "library crates are driven by long-running engines and the \
                    distributed protocol; a panic in a worker poisons a whole \
                    solve instead of surfacing a recoverable error",
        explain: "Library crates run inside long-lived engines and the worker \
                  pool; a panic in one worker poisons shared mutexes and takes \
                  down a whole solve that could have reported a recoverable \
                  error. Harness crates (cli, bench) are exempt — panicking on \
                  bad input is fine at the top level.\n\
                  Example: let node = table.get(&id).unwrap();\n\
                  Fix: return Result/Option to the caller; if infallibility is \
                  provable, suppress with a reason that states the proof.",
        check: library_unwrap,
    },
    Rule {
        id: "hash-order-iteration",
        summary: "iteration over HashMap/HashSet whose result escapes to state or output",
        invariant: "std hash iteration order is randomly seeded per process; any \
                    escaping iteration (loops that write outer state, unterminated \
                    iterator chains, serialized/compared hash fields) makes engine \
                    output depend on the seed instead of the problem",
        explain: "This is the escape-analysis generalization of \
                  unordered-float-iteration: any hash-container traversal whose \
                  result leaves the loop (writes outer state, grows an outer \
                  collection, returns, or flows into serialization/comparison \
                  via a derived trait) publishes seed-dependent order. The rule \
                  resolves hash-typed fields and fn returns through the \
                  workspace symbol table, so the container can be declared in \
                  another file.\n\
                  Example: for id in dirty_set { order.push(id); }\n\
                  Fix: use BTreeMap/BTreeSet, or collect-and-sort before the \
                  result escapes (a later `.sort*()` on the snapshot is \
                  recognized and exempted).",
        check: semantic::hash_order_iteration,
    },
    Rule {
        id: "shared-mut-across-threads",
        summary: "captured `&mut`, Cell/RefCell, or `static mut` crossing a spawn boundary",
        invariant: "the sharded engine is deterministic only because workers own \
                    disjoint id-ordered chunks; mutable state shared across a spawn \
                    reintroduces scheduler-dependent results (or UB)",
        explain: "The sharded engine is bit-identical to the sequential one only \
                  because each worker owns a disjoint, id-ordered chunk and \
                  results are merged deterministically after join. A `&mut` \
                  capture, a Cell/RefCell crossing the spawn, or a `static mut` \
                  touched in a worker reintroduces an order the scheduler \
                  chooses.\n\
                  Example: spawn(|| { totals[shard] += local; })\n\
                  Fix: move owned chunks into each worker and return partial \
                  results through the JoinHandle; merge in id order.",
        check: semantic::shared_mut_across_threads,
    },
    Rule {
        id: "lossy-float-cast",
        summary: "`as f32`/`as usize`/... applied to an f64-carrying expression",
        invariant: "prices and rates are f64 end-to-end; a silent narrowing cast \
                    rounds differently than the sequential reference path and the \
                    engines stop being bit-identical",
        explain: "Prices, rates, and utilities are f64 end-to-end; `as f32` or \
                  `as usize` on an f64-carrying expression rounds silently, and \
                  the rounding happens at different intermediate values in the \
                  sequential and sharded paths. The rule walks the cast operand \
                  for positive f64 evidence (declared types, field types, fn \
                  returns), so integer-only casts stay clean.\n\
                  Example: let bucket = price as usize;\n\
                  Fix: keep the value in f64, or make the rounding explicit — \
                  `price.floor()` plus a bounds check — and document why it is \
                  safe there.",
        check: semantic::lossy_float_cast,
    },
    Rule {
        id: "missing-must-use",
        summary: "Result-returning public API without `#[must_use = \"..\"]`",
        invariant: "library errors surface as Result; an ignorable Result lets a \
                    failed step pass silently and later iterations run on stale \
                    state",
        explain: "Engine steps return Result so a failed step can halt the \
                  iteration; without #[must_use] a caller can drop the Result \
                  and keep iterating on stale state, which the differential \
                  harness then reports as a bit mismatch far from the cause.\n\
                  Example: pub fn step(&mut self) -> Result<Delta, Error> \
                  without an attribute.\n\
                  Fix: add `#[must_use = \"..\"]` naming the consequence; \
                  --fix inserts the attribute mechanically.",
        check: semantic::missing_must_use,
    },
    Rule {
        id: "kernel-impure",
        summary: "effectful code reachable from a `kernel::*` function",
        invariant: "kernels are pure per-element math: the three engines call \
                    them in different orders and counts, so any effect (IO, \
                    locks, clocks, RNG, spawns, static muts) reachable from one \
                    diverges the engines or races",
        explain: "The layer-3 effect fixpoint computes, for every fn in the \
                  workspace, which effects it can reach through any chain of \
                  calls. A fn declared under crates/core/src/kernel/ must reach \
                  none of {io, spawn, lock, static-mut, time, rng} — reading \
                  `static` tables and taking `&mut` scratch are part of the \
                  kernel contract and stay allowed. The finding names the \
                  effect and its origin (the token or the callee that \
                  introduced it).\n\
                  Example: a kernel helper that calls a logging fn which does \
                  eprintln! three calls down.\n\
                  Fix: hoist the effect into the executor (exec.rs/pool.rs) \
                  and pass its result into the kernel as a value.",
        check: semantic::kernel_impure,
    },
    Rule {
        id: "unmarked-dirty-write",
        summary: "cached StepState/NodeTable field written by a fn that never \
                  reaches the dirty-set API",
        invariant: "incremental mode recomputes exactly the marked nodes; a \
                    cached-state write in a fn with no path to \
                    `mark`/`note_*` silently diverges incremental solves from \
                    full solves",
        explain: "The incremental engine's bitwise-equality guarantee rests on \
                  every mutation of cached state being paired with an exact \
                  dirty-set mark. This rule lists the cached fields of \
                  StepState/NodeTable from the symbol table (minus the dirty \
                  bookkeeping itself) and flags assignments to them inside \
                  functions whose interprocedural effect set never acquires \
                  the dirty-api effect — i.e. no call chain reaches \
                  `mark`/`note_*` or touches a dirty/changed list.\n\
                  Example: self.rates[i] = r; in a setter with no mark call.\n\
                  Fix: call `mark`/the relevant `note_*` next to the write, or \
                  route the write through an existing marking helper. \
                  crates/core holds a zero-suppression policy for this rule.",
        check: semantic::unmarked_dirty_write,
    },
    Rule {
        id: "condvar-wait-no-predicate-loop",
        summary: "`Condvar::wait` not re-entered by a predicate-checking loop",
        invariant: "condvar wakeups are spurious and coalesced; a wait outside \
                    a predicate loop hangs on a lost wakeup or continues \
                    early, and the pool_stress watchdog can only catch that \
                    probabilistically",
        explain: "The CFG builder locates the innermost loop around each \
                  `.wait(guard)`/`.wait_timeout(guard, ..)` call. `while`/\
                  `while let`/`for` loops re-check their condition by \
                  construction; a bare `loop` passes only if it can exit \
                  through a conditional `break`/`return`. A wait in no loop, \
                  or in a `loop` with no conditional exit, is the lost-wakeup \
                  shape. Calls whose first argument is not a bare guard \
                  binding (e.g. `Child::wait()`) are ignored.\n\
                  Example: let g = cv.wait(g)?; outside any loop.\n\
                  Fix: while !predicate(&g) { g = cv.wait(g)?; } or use \
                  `wait_while`, which owns the predicate.",
        check: semantic::condvar_wait_no_predicate_loop,
    },
    Rule {
        id: "lock-held-across-park",
        summary: "a mutex/rwlock guard alive across park/recv/join/sleep",
        invariant: "the pool's handoff latency (and absence of deadlock) \
                    depends on guards being dropped before any blocking call; \
                    a guard held across one stalls every worker on that lock",
        explain: "A `let` binding whose initializer acquires a guard \
                  (`lock()`, `lock_unpoisoned()`, `try_lock()`, zero-arg \
                  `.read()`/`.write()`) keeps it alive to the end of its \
                  enclosing block. Blocking there — `park()`, `.recv()`, \
                  `.join()`, `sleep(..)` — holds the lock for the whole wait: \
                  every contender stalls, and if the joined thread needs the \
                  lock, the join deadlocks. `Condvar::wait` is exempt because \
                  it releases the guard it is given.\n\
                  Example: let g = state.lock_unpoisoned(); handle.join();\n\
                  Fix: drop(g) before blocking, or scope the guard in its own \
                  `{ .. }` block as pool.rs's Drop impl does.",
        check: semantic::lock_held_across_park,
    },
    Rule {
        id: "vector-escape",
        summary: "lane-batched f64 accumulation outside kernel/vector.rs",
        invariant: "lane-batched (chunked / multi-accumulator) reduction \
                    reassociates f64 adds; PR 7 confines that reassociation to \
                    the `Numerics`-gated kernel::vector module, where the \
                    equivalence tests and suppressions live",
        explain: "Splitting a reduction into lanes and recombining changes the \
                  association order of f64 adds, which changes low bits. The \
                  workspace allows that only inside kernel/vector.rs, where \
                  the Numerics policy gates whether the vector path may run \
                  and the differential tests pin its behavior. This rule \
                  flags the two shapes elsewhere in crates/core: a \
                  `chunks_exact`/`array_chunks` call feeding an accumulation, \
                  and a loop feeding two or more float accumulators that are \
                  later recombined.\n\
                  Example: let mut s0 = 0.0; let mut s1 = 0.0; for c in \
                  xs.chunks_exact(2) { s0 += c[0]; s1 += c[1]; } s0 + s1\n\
                  Fix: call the kernel::vector entry points (they are \
                  calibrated and policy-gated), or accumulate sequentially.",
        check: semantic::vector_escape,
    },
    Rule {
        id: "lock-order-inversion",
        summary: "two code paths acquire the same locks in opposite orders",
        invariant: "the pool's worker protocol holds at most one guard at a time \
                    per nesting chain, in one global order; a cycle in the \
                    whole-workspace lock-order graph is a deadlock two threads \
                    can reach by interleaving",
        explain: "The layer-4 lock-order graph records an edge `a → b` whenever \
                  a guard on `a` is still live (its `let` scope has not closed \
                  and no `drop` ran) while `b` is acquired — directly, or by \
                  any callee the acquisition fixpoint can resolve. A cycle \
                  means two threads can each hold one lock of the cycle and \
                  wait forever on the other: the classic inversion deadlock, \
                  which no test reliably reproduces because it needs the \
                  losing interleaving. The finding names every edge of the \
                  cycle with its site and enclosing fn, and is anchored at the \
                  canonical first edge.\n\
                  Example: fn a() { let g = self.gate.lock(); self.slots.lock(); } \
                  fn b() { let s = self.slots.lock(); self.gate.lock(); }\n\
                  Fix: pick one global acquisition order (document it where the \
                  locks are declared) and restructure the later-acquiring path, \
                  or merge the two locks under a single mutex.",
        check: crate::lockgraph::lock_order_inversion,
    },
    Rule {
        id: "hot-path-alloc",
        summary: "a declared hot-path root fn reaches a heap allocation",
        invariant: "the steady-state step (kernel::*, the exec.rs dirty-set fns, \
                    the pool.rs worker protocol — the roots in \
                    crates/lint/hot_paths.txt) runs per delta at 1M+ consumers \
                    and must reuse caller-owned capacity, never touch the \
                    allocator",
        explain: "An allocation on the per-delta path is a latency cliff: it \
                  serializes workers on the allocator, fragments under \
                  sustained traffic, and turns the amortized O(1) step into \
                  occasional O(n) growth pauses. The workspace idiom is \
                  caller-owned scratch — `*_into` kernels and reused buffers \
                  sized at setup — so the `ALLOC` effect reaching a root fn \
                  through the interprocedural fixpoint means a regression \
                  against that contract. The finding carries the call-chain \
                  witness from the root to the allocating fn and the token \
                  that introduced the effect.\n\
                  Example: fn solve_rates(&mut self) { let out: Vec<f64> = \
                  self.dirty.iter().map(solve).collect(); }\n\
                  Fix: move the allocation to construction (`with_capacity` \
                  once, in `new`), pass `&mut` scratch in, or — for a genuine \
                  setup-time wrapper — exempt the fn in \
                  crates/lint/hot_paths.txt with a reason.",
        check: crate::hotpath::hot_path_alloc,
    },
    Rule {
        id: "hot-path-panic",
        summary: "a declared hot-path root fn reaches a panic site",
        invariant: "a panic mid-delta aborts a pooled worker and poisons its \
                    locks; the hot-path roots in crates/lint/hot_paths.txt \
                    must stay panic-free in release builds, with validation \
                    at the boundary",
        explain: "The effect fixpoint marks `PANIC` for `unwrap`/`expect`, the \
                  panic macro family, non-test `assert!`, range slicing \
                  (`x[lo..hi]`), arithmetic indexing (`x[i + 1]`), and \
                  integer division by a variable — everything that can abort \
                  in release. (`debug_assert!` is exempt: it compiles out of \
                  release builds, so it is the sanctioned way to state hot- \
                  path invariants.) A panic reaching a hot-path root means \
                  one malformed delta can kill a pooled worker mid-step and \
                  poison every lock it held. The finding carries the \
                  call-chain witness from the root to the panicking token.\n\
                  Example: fn run_shard(&self, lo: usize, hi: usize) { for &f \
                  in &self.dirty[lo..hi] { ... } }\n\
                  Fix: replace slicing with `iter().skip(lo).take(n)`, \
                  indexing arithmetic with `get`, `assert!` with \
                  `debug_assert!` once the boundary validates, or exempt a \
                  genuinely cold fn in crates/lint/hot_paths.txt with a \
                  reason.",
        check: crate::hotpath::hot_path_panic,
    },
];

/// True if `id` names a registered rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// For a `partial_cmp` ident at token `idx`, returns the token span
/// `(dot, close)` of a directly chained `.unwrap()` / `.expect(..)` call —
/// the part `--fix` deletes when rewriting to `total_cmp`.
pub(crate) fn partial_cmp_unwrap_span(
    toks: &[crate::lexer::Token],
    match_of: &[Option<usize>],
    idx: usize,
) -> Option<(usize, usize)> {
    if !toks.get(idx + 1)?.is_punct("(") {
        return None;
    }
    let call_close = match_of.get(idx + 1).copied().flatten()?;
    let dot = call_close + 1;
    if !toks.get(dot)?.is_punct(".") {
        return None;
    }
    let method = toks.get(dot + 1)?;
    if !(method.is_ident("unwrap") || method.is_ident("expect")) {
        return None;
    }
    if !toks.get(dot + 2)?.is_punct("(") {
        return None;
    }
    let close = match_of.get(dot + 2).copied().flatten()?;
    Some((dot, close))
}

fn float_total_order(ctx: &FileContext) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") || ctx.in_test(i) {
            continue;
        }
        // `fn partial_cmp(...)` — a PartialOrd impl defining the method,
        // not a call site choosing a comparator.
        if i > 0 && ctx.tokens[i - 1].is_ident("fn") {
            continue;
        }
        let mut f = ctx.finding(
            "float-total-order",
            i,
            "`partial_cmp` is not a total order on floats: NaN yields `None`, and \
             `unwrap_or(Equal)` fallbacks make the result depend on operand order; \
             use `f64::total_cmp` (with an explicit tiebreaker if needed)"
                .to_string(),
        );
        // `a.partial_cmp(b).unwrap()` / `.expect(..)` is mechanically
        // rewritable to `a.total_cmp(b)`; other shapes need a human.
        f.fixable =
            partial_cmp_unwrap_span(ctx.tokens, &ctx.parsed.match_of, i).is_some();
        out.push(f);
    }
    out
}

/// Parses a float-literal spelling and reports whether it is exactly zero.
fn is_zero_literal(text: &str) -> bool {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned.strip_suffix("f64").or_else(|| cleaned.strip_suffix("f32")).map_or(
        cleaned.as_str(),
        |s| s,
    );
    cleaned.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

fn float_eq(ctx: &FileContext) -> Vec<Finding> {
    let toks = ctx.tokens;
    let non_finite = |name: &str| matches!(name, "NAN" | "INFINITY" | "NEG_INFINITY");
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(i) {
            continue;
        }
        let right_float = toks.get(i + 1).is_some_and(|r| {
            (r.kind == TokenKind::Float && !is_zero_literal(&r.text))
                || (matches!(r.text.as_str(), "f32" | "f64")
                    && toks.get(i + 2).is_some_and(|c| c.is_punct("::"))
                    && toks.get(i + 3).is_some_and(|n| non_finite(&n.text)))
        });
        let left_float = i >= 1
            && ((toks[i - 1].kind == TokenKind::Float && !is_zero_literal(&toks[i - 1].text))
                || (non_finite(&toks[i - 1].text)
                    && i >= 2
                    && toks[i - 2].is_punct("::")));
        if right_float || left_float {
            out.push(ctx.finding(
                "float-eq",
                i,
                format!(
                    "`{}` against a float constant: computed floats differ in low bits \
                     across engines and platforms; compare `f64::to_bits` values, use an \
                     explicit tolerance, or restructure around an exact-zero sentinel",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Crates whose numeric paths must be bit-reproducible.
const NUMERIC_CRATES: &[&str] = &["core", "model", "num"];

fn nondeterministic_source(ctx: &FileContext) -> Vec<Finding> {
    if !ctx.krate.is_some_and(|k| NUMERIC_CRATES.contains(&k)) {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" => {
                toks.get(i + 1).is_some_and(|a| a.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|b| b.is_ident("now"))
            }
            "SystemTime" | "thread_rng" => true,
            "std" => {
                toks.get(i + 1).is_some_and(|a| a.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|b| b.is_ident("env"))
            }
            _ => false,
        };
        if flagged {
            out.push(ctx.finding(
                "nondeterministic-source",
                i,
                format!(
                    "`{}` in a numeric path: crates/{{core,model,num}} must produce \
                     identical bits for identical problems; take time/randomness/config \
                     as explicit inputs from the caller",
                    t.text
                ),
            ));
        }
    }
    out
}

fn unordered_float_iteration(ctx: &FileContext) -> Vec<Finding> {
    let toks = ctx.tokens;
    // Pass 1: names bound or typed as HashMap/HashSet in this file
    // (`let m = HashMap::new()`, `field: HashMap<..>`, `x: &mut HashSet<..>`).
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j >= 2
            && (toks[j - 1].is_punct(":") || toks[j - 1].is_punct("="))
            && toks[j - 2].kind == TokenKind::Ident
        {
            hash_names.push(&toks[j - 2].text);
        }
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("for") || ctx.in_test(i) {
            continue;
        }
        // Find `in` at depth 0 before the loop body; `impl T for U` has none.
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut in_idx = None;
        while k < toks.len() {
            let tk = &toks[k];
            if tk.is_punct("(") || tk.is_punct("[") {
                depth += 1;
            } else if tk.is_punct(")") || tk.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && tk.is_punct("{") {
                break;
            } else if depth == 0 && tk.is_ident("in") {
                in_idx = Some(k);
                break;
            }
            k += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        // Header: `in` → `{` at depth 0.
        let mut depth = 0i32;
        let mut k = in_idx + 1;
        let mut iterates_hash = false;
        while k < toks.len() {
            let tk = &toks[k];
            if tk.is_punct("(") || tk.is_punct("[") {
                depth += 1;
            } else if tk.is_punct(")") || tk.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && tk.is_punct("{") {
                break;
            } else if tk.kind == TokenKind::Ident
                && (tk.text == "HashMap"
                    || tk.text == "HashSet"
                    || hash_names.iter().any(|n| *n == tk.text))
            {
                iterates_hash = true;
            }
            k += 1;
        }
        if !iterates_hash || k >= toks.len() {
            continue;
        }
        // Body: matched brace region starting at k.
        let mut braces = 1i32;
        let mut m = k + 1;
        let mut accumulates = false;
        while m < toks.len() && braces > 0 {
            let tm = &toks[m];
            if tm.is_punct("{") {
                braces += 1;
            } else if tm.is_punct("}") {
                braces -= 1;
            } else if (matches!(tm.text.as_str(), "+=" | "-=" | "*=" | "/=")
                && tm.kind == TokenKind::Punct)
                || ((tm.is_ident("sum") || tm.is_ident("product"))
                    && m >= 1
                    && toks[m - 1].is_punct("."))
            {
                accumulates = true;
            }
            m += 1;
        }
        if accumulates {
            out.push(ctx.finding(
                "unordered-float-iteration",
                i,
                "accumulating while iterating a HashMap/HashSet: std hash order is \
                 randomly seeded per process and float addition is non-associative, so \
                 results differ run-to-run; iterate a sorted key list (or an ordered \
                 container) instead"
                    .to_string(),
            ));
        }
    }
    out
}

fn library_unwrap(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            }
            "panic" => toks.get(i + 1).is_some_and(|n| n.is_punct("!")),
            _ => false,
        };
        if flagged {
            out.push(ctx.finding(
                "library-unwrap",
                i,
                format!(
                    "`{}` in library code: engines and the distributed protocol run \
                     long-lived solves, and a panic inside one poisons the whole run; \
                     return Result/Option, or prove infallibility and suppress with a \
                     reason",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::engine::analyze_source;

    fn findings(path: &str, src: &str) -> Vec<(String, u32, u32)> {
        analyze_source(path, src)
            .findings
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line, f.col))
            .collect()
    }

    const LIB: &str = "crates/model/src/x.rs";

    #[test]
    fn partial_cmp_flagged_but_not_its_definition() {
        let src = "impl PartialOrd for X {\n    fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) }\n}\nfn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal)); }\n";
        // `unwrap_or` is not `unwrap`, so only float-total-order fires.
        let got = findings(LIB, src);
        assert_eq!(got, vec![("float-total-order".to_string(), 4, 42)]);
    }

    #[test]
    fn float_eq_flags_nonzero_and_exempts_zero() {
        assert_eq!(findings(LIB, "fn f(x: f64) -> bool { x == 0.25 }"), vec![(
            "float-eq".to_string(),
            1,
            26
        )]);
        assert!(findings(LIB, "fn f(x: f64) -> bool { x == 0.0 }").is_empty());
        assert!(findings(LIB, "fn f(x: f64) -> bool { x != 0.0 }").is_empty());
        assert!(findings(LIB, "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }")
            .is_empty());
        assert_eq!(findings(LIB, "fn f(x: f64) -> bool { x == f64::NAN }").len(), 1);
        assert_eq!(findings(LIB, "fn f(x: f64) -> bool { 1.5 != x }").len(), 1);
    }

    #[test]
    fn nondet_sources_only_in_numeric_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(findings("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(findings("crates/num/src/x.rs", src).len(), 1);
        assert!(findings("crates/anneal/src/x.rs", src).is_empty());
        assert_eq!(findings("crates/model/src/x.rs", "fn f() { thread_rng(); }").len(), 1);
        assert_eq!(
            findings("crates/model/src/x.rs", "fn f() { std::env::var(\"X\"); }").len(),
            1
        );
        // `Instant` as a plain type mention (no `::now`) is fine.
        assert!(findings("crates/core/src/x.rs", "fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn unordered_iteration_needs_hash_and_accumulation() {
        let bad = "fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut s = 0.0;\n    for (_k, v) in m { s += v; }\n    s\n}\n";
        // The semantic hash-order-iteration rule co-fires on the same
        // loop: the accumulator escapes the body.
        assert_eq!(
            findings(LIB, bad),
            vec![
                ("hash-order-iteration".to_string(), 3, 5),
                ("unordered-float-iteration".to_string(), 3, 5)
            ]
        );
        // Same body over a Vec: fine.
        let good = "fn f(m: &[f64]) -> f64 {\n    let mut s = 0.0;\n    for v in m { s += v; }\n    s\n}\n";
        assert!(findings(LIB, good).is_empty());
        // Hash iteration without accumulation: fine.
        let good = "fn f(m: &HashMap<u32, f64>) {\n    for (_k, v) in m { println!(\"{v}\"); }\n}\n";
        assert!(findings(LIB, good).is_empty());
        // `.values().sum()` chain is caught too (both rules fire: the
        // accumulation pattern and the escaping hash iteration).
        let bad = "fn f() -> f64 {\n    let m: HashMap<u32, f64> = HashMap::new();\n    let mut t = 0.0;\n    for v in m.values() { t = t + v.sum(); }\n    t\n}\n";
        assert_eq!(findings(LIB, bad).len(), 2);
    }

    #[test]
    fn library_unwrap_scoping() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(findings(LIB, src).len(), 1);
        assert!(findings("crates/cli/src/run.rs", src).is_empty());
        assert!(findings("crates/bench/src/bin/fig1.rs", src).is_empty());
        assert!(findings("crates/core/tests/t.rs", src).is_empty());
        assert_eq!(findings(LIB, "fn f() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(findings(LIB, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }").len(), 1);
        // unwrap_or and resume_unwind are not escape hatches.
        assert!(findings(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
        assert!(
            findings(LIB, "fn f(p: Payload) { std::panic::resume_unwind(p) }").is_empty()
        );
    }
}
