//! Layer-4 lock-order graph: which locks are acquired while which other
//! guards are live, propagated over the whole-workspace call graph, with
//! cycle detection.
//!
//! Lock identity is textual: the last path segment of the locked place
//! before any index (`lock_unpoisoned(&self.orders[b])` and
//! `self.orders[x].lock()` are both the lock `orders`). That
//! coarse-grains an array of mutexes into one node — deliberately so,
//! since a sharded `orders[i]` → `orders[j]` nesting is exactly the
//! acquisition pattern that deadlocks two workers taking the shards in
//! opposite orders. Acquisitions on a *bare fn parameter* (the generic
//! `lock_unpoisoned(m)` helper locking its own argument) are skipped:
//! the caller's argument-site acquisition accounts for them under the
//! caller's place name.
//!
//! Guard liveness reuses the layer-3 scope walk (`let` statement → `;` →
//! innermost enclosing brace close, or an explicit `drop(guard)`). While
//! a guard is live, an edge `held → then` is recorded for every direct
//! acquisition of `then` and for every acquisition any resolvable callee
//! performs transitively. Ambiguous callee names resolve to the
//! *intersection* of their candidates' acquire sets, mirroring the effect
//! fixpoint: a name shared by many constructors must not invent edges no
//! real call sequence performs. (The price is a known false negative on
//! trait-object dispatch, where the concrete target is one candidate
//! among several.)
//!
//! A cycle in the resulting graph — `a → b` somewhere, `b → a` somewhere
//! else — is a lock-order inversion: two threads interleaving those
//! paths block each other forever. Each cycle is reported once, anchored
//! at its lexicographically first edge site, with the full witness chain
//! in the message.

use crate::callgraph::CallGraph;
use crate::dataflow::ParsedForFlow;
use crate::lexer::{Token, TokenKind};
use crate::parser::let_bindings;
use std::collections::{BTreeMap, BTreeSet};

/// One observed acquisition order: while a guard on `held` was live,
/// `then` was acquired (directly or through the named callee).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock whose guard is live.
    pub held: String,
    /// The lock acquired under it.
    pub then: String,
    /// File of the acquisition (or call) site.
    pub file: String,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
    /// Token index of the site within its file.
    pub idx: usize,
    /// Name of the fn the edge was observed in.
    pub in_fn: String,
}

/// The whole-workspace lock-order analysis.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// One edge per distinct `held → then` pair, at its first site,
    /// sorted by (held, then).
    pub edges: Vec<LockEdge>,
    /// Distinct cycles, each as indices into [`Self::edges`], rotated so
    /// the smallest lock name leads, sorted and deduplicated.
    pub cycles: Vec<Vec<usize>>,
}

/// A direct acquisition inside one fn body.
#[derive(Debug)]
struct Acquisition {
    /// Lock place name.
    place: String,
    /// Token index of the acquiring call.
    idx: usize,
    /// Live range of the guard (`let`-bound only): token span after the
    /// binding statement until scope end or `drop`.
    guard_span: Option<(usize, usize)>,
}

impl LockGraph {
    /// Builds the graph over the same bundles [`crate::dataflow::FlowInfo::build`]
    /// consumes, reusing its call graph.
    pub fn build<'a>(
        graph: &CallGraph,
        files: impl IntoIterator<Item = (&'a str, &'a ParsedForFlow<'a>)>,
    ) -> LockGraph {
        let by_label: BTreeMap<&str, &ParsedForFlow> = files.into_iter().collect();
        let n = graph.fns.len();
        // Per-fn direct acquisitions and the transitive acquire fixpoint.
        let mut acqs: Vec<Vec<Acquisition>> = Vec::with_capacity(n);
        for node in &graph.fns {
            match (node.body, by_label.get(node.file.as_str())) {
                (Some((open, close)), Some(f)) => {
                    acqs.push(acquisitions(f.tokens, &f.parsed.match_of, node.kw, open, close));
                }
                _ => acqs.push(Vec::new()),
            }
        }
        let mut trans: Vec<BTreeSet<String>> = acqs
            .iter()
            .map(|list| list.iter().map(|a| a.place.clone()).collect())
            .collect();
        let max_rounds = n.max(1) * 4;
        for _ in 0..max_rounds {
            let mut changed = false;
            for i in 0..n {
                let krate = graph.fns[i].krate.clone();
                for c in 0..graph.fns[i].callees.len() {
                    let callee = graph.fns[i].callees[c].clone();
                    for place in callee_acquires(graph, &trans, &krate, &callee) {
                        if trans[i].insert(place) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Edge collection: for every live guard span, every other direct
        // acquisition and every resolvable call inside it.
        let mut best: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        let mut record = |held: &str, then: &str, file: &str, tok: &Token, idx: usize, in_fn: &str| {
            let edge = LockEdge {
                held: held.to_string(),
                then: then.to_string(),
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                idx,
                in_fn: in_fn.to_string(),
            };
            let key = (edge.held.clone(), edge.then.clone());
            match best.get(&key) {
                Some(old) if (old.file.as_str(), old.line, old.col) <= (edge.file.as_str(), edge.line, edge.col) => {}
                _ => {
                    best.insert(key, edge);
                }
            }
        };
        for (i, fn_acqs) in acqs.iter().enumerate().take(n) {
            let node = &graph.fns[i];
            let Some(f) = by_label.get(node.file.as_str()) else { continue };
            let toks = f.tokens;
            for a in fn_acqs {
                let Some((lo, hi)) = a.guard_span else { continue };
                // Direct second acquisitions under this guard.
                for b in fn_acqs {
                    if b.idx > lo && b.idx < hi {
                        record(&a.place, &b.place, &node.file, &toks[b.idx], b.idx, &node.name);
                    }
                }
                // Calls whose transitive acquire set is non-empty.
                let mut k = lo;
                while k < hi.min(toks.len()) {
                    let t = &toks[k];
                    if t.kind == TokenKind::Ident
                        && toks.get(k + 1).is_some_and(|nx| nx.is_punct("("))
                        && !fn_acqs.iter().any(|b| b.idx == k)
                    {
                        for place in callee_acquires(graph, &trans, &node.krate, &t.text) {
                            record(&a.place, &place, &node.file, t, k, &node.name);
                        }
                    }
                    k += 1;
                }
            }
        }
        let edges: Vec<LockEdge> = best.into_values().collect();
        let cycles = find_cycles(&edges);
        LockGraph { edges, cycles }
    }

    /// Renders the witness chain of cycle `c` for a finding message.
    pub fn describe_cycle(&self, cycle: &[usize]) -> String {
        let steps: Vec<String> = cycle
            .iter()
            .map(|&e| {
                let e = &self.edges[e];
                format!(
                    "`{}` → `{}` ({}:{} in `{}`)",
                    e.held, e.then, e.file, e.line, e.in_fn
                )
            })
            .collect();
        steps.join(", then ")
    }
}

/// `lock-order-inversion`: a cycle in the whole-workspace lock-order
/// graph, reported once per cycle, anchored at its canonical first edge
/// site (so the finding lands in the file that acquires out of order).
pub fn lock_order_inversion(ctx: &crate::engine::FileContext) -> Vec<crate::engine::Finding> {
    if ctx.kind != crate::engine::FileKind::Library {
        return Vec::new();
    }
    let mut out = Vec::new();
    for cycle in &ctx.locks.cycles {
        let Some(&first) = cycle.first() else { continue };
        let anchor = &ctx.locks.edges[first];
        if anchor.file != ctx.path || ctx.in_test(anchor.idx) {
            continue;
        }
        out.push(ctx.finding(
            "lock-order-inversion",
            anchor.idx,
            format!(
                "lock-order inversion: {}; two threads interleaving these paths \
                 block each other forever — acquire the locks in one global \
                 order everywhere (or merge them under one mutex)",
                ctx.locks.describe_cycle(cycle)
            ),
        ));
    }
    out
}

/// The acquire set a call to `name` from `krate` contributes: the unique
/// candidate's transitive set, or the intersection over an ambiguous
/// name's candidates.
fn callee_acquires(
    graph: &CallGraph,
    trans: &[BTreeSet<String>],
    krate: &str,
    name: &str,
) -> BTreeSet<String> {
    let cands = graph.candidates(krate, name);
    match cands {
        [] => BTreeSet::new(),
        [one] => trans[*one].clone(),
        many => {
            let mut it = many.iter().map(|&i| &trans[i]);
            let first = it.next().cloned().unwrap_or_default();
            it.fold(first, |acc, s| acc.intersection(s).cloned().collect())
        }
    }
}

/// Direct acquisitions in one fn body, with guard spans for `let`-bound
/// guards. `kw..open` is the signature span (for the bare-parameter
/// skip).
fn acquisitions(
    tokens: &[Token],
    match_of: &[Option<usize>],
    kw: usize,
    open: usize,
    close: usize,
) -> Vec<Acquisition> {
    let close = close.min(tokens.len());
    // Parameter names: `name :` pairs at any depth in the signature.
    let mut params: BTreeSet<&str> = BTreeSet::new();
    for j in kw + 1..open.min(tokens.len()) {
        if tokens[j].is_punct(":") && j >= 1 && tokens[j - 1].kind == TokenKind::Ident {
            params.insert(tokens[j - 1].text.as_str());
        }
    }
    let mut out = Vec::new();
    for k in open + 1..close {
        if !is_lock_acquisition(tokens, k) {
            continue;
        }
        let Some((place, bare)) = lock_place(tokens, match_of, k) else { continue };
        if bare && params.contains(place.as_str()) {
            continue;
        }
        out.push(Acquisition { place, idx: k, guard_span: None });
    }
    // Attach guard spans: an acquisition inside a `let` statement lives
    // from the statement's `;` to the innermost enclosing brace close or
    // an explicit `drop(name)` (the layer-3 scope walk).
    for b in let_bindings(tokens, open, close) {
        let mut k = b.idx + 1;
        let mut semi = None;
        // Group ranges skipped on the way to the `;`. An acquisition inside
        // one is a *temporary* whose guard dies at that group's close
        // (`let x = { let g = m.lock(); ... };` binds `x`, not a guard), so
        // it must not inherit this binding's span.
        let mut nested: Vec<(usize, usize)> = Vec::new();
        while k < close {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match match_of.get(k).copied().flatten() {
                    Some(end) => {
                        nested.push((k, end));
                        k = end + 1;
                    }
                    None => break,
                }
                continue;
            }
            if t.is_punct(";") {
                semi = Some(k);
                break;
            }
            if t.is_punct("}") {
                break;
            }
            k += 1;
        }
        let Some(semi) = semi else { continue };
        let mut depth = 0i32;
        let mut end = close;
        let mut k = semi + 1;
        while k < close {
            let t = &tokens[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    end = k;
                    break;
                }
            } else if t.is_ident("drop")
                && tokens.get(k + 1).is_some_and(|n| n.is_punct("("))
                && tokens.get(k + 2).is_some_and(|n| n.is_ident(&b.name))
            {
                end = k;
                break;
            }
            k += 1;
        }
        for a in &mut out {
            if a.idx > b.idx
                && a.idx < semi
                && a.guard_span.is_none()
                && !nested.iter().any(|&(lo, hi)| a.idx > lo && a.idx < hi)
            {
                a.guard_span = Some((semi, end));
            }
        }
    }
    out
}

/// Method names that acquire a guard (the layer-3 set: `lock_unpoisoned`,
/// `.lock()`, `.try_lock()`, zero-arg `.read()`/`.write()`).
fn is_lock_acquisition(tokens: &[Token], k: usize) -> bool {
    let t = &tokens[k];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let next_call = tokens.get(k + 1).is_some_and(|n| n.is_punct("("));
    match t.text.as_str() {
        "lock_unpoisoned" => next_call,
        "lock" | "try_lock" => next_call && k >= 1 && tokens[k - 1].is_punct("."),
        "read" | "write" => {
            next_call
                && k >= 1
                && tokens[k - 1].is_punct(".")
                && tokens.get(k + 2).is_some_and(|n| n.is_punct(")"))
        }
        _ => false,
    }
}

/// The lock place of the acquisition at `k`: the last path segment before
/// any index group. Returns `(name, is_bare_single_ident)`.
fn lock_place(
    tokens: &[Token],
    match_of: &[Option<usize>],
    k: usize,
) -> Option<(String, bool)> {
    if tokens[k].is_ident("lock_unpoisoned") {
        // Forward through the argument: `lock_unpoisoned(&self.orders[b])`.
        let mut j = k + 2; // past the `(`
        let mut last: Option<&str> = None;
        let mut segments = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("&") || t.is_ident("mut") {
                j += 1;
                continue;
            }
            if t.kind == TokenKind::Ident {
                last = Some(t.text.as_str());
                segments += 1;
                j += 1;
                continue;
            }
            if t.is_punct(".") || t.is_punct("::") {
                j += 1;
                continue;
            }
            break; // `[`, `)`, `,` — the place ends here
        }
        return last.map(|name| (name.to_string(), segments == 1));
    }
    // Backward from the `.` before the method: skip `[...]` index groups,
    // take the nearest ident segment.
    let mut j = k.checked_sub(2)?;
    let mut segments = 1usize;
    loop {
        let t = &tokens[j];
        if t.is_punct("]") {
            j = match_of.get(j).copied().flatten()?.checked_sub(1)?;
            continue;
        }
        if t.kind == TokenKind::Ident {
            // Count how deep the path goes, to distinguish a bare local
            // from a field access.
            if j >= 1 && (tokens[j - 1].is_punct(".") || tokens[j - 1].is_punct("::")) {
                segments += 1;
            }
            return Some((t.text.clone(), segments == 1));
        }
        return None;
    }
}

/// DFS cycle enumeration over the distinct `held → then` pairs; cycles
/// are canonicalized (smallest lock name leads) and deduplicated.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<usize>> {
    let mut adj: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.held.as_str()).or_default().push(i);
    }
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<usize> = Vec::new();
        dfs(start, start, edges, &adj, &mut path, &mut seen, &mut BTreeSet::new());
    }
    seen.into_iter().collect()
}

fn dfs(
    start: &str,
    at: &str,
    edges: &[LockEdge],
    adj: &BTreeMap<&str, Vec<usize>>,
    path: &mut Vec<usize>,
    seen: &mut BTreeSet<Vec<usize>>,
    visited: &mut BTreeSet<String>,
) {
    for &e in adj.get(at).map(Vec::as_slice).unwrap_or(&[]) {
        let then = edges[e].then.as_str();
        if then == start {
            let mut cycle = path.clone();
            cycle.push(e);
            seen.insert(canonicalize(cycle, edges));
            continue;
        }
        if visited.contains(then) || then < start {
            // `then < start`: every cycle is enumerated from its smallest
            // node, so smaller nodes need not be re-entered.
            continue;
        }
        visited.insert(then.to_string());
        path.push(e);
        dfs(start, then, edges, adj, path, seen, visited);
        path.pop();
        visited.remove(then);
    }
}

/// Rotates a cycle's edge list so the edge leaving the smallest lock name
/// comes first.
fn canonicalize(cycle: Vec<usize>, edges: &[LockEdge]) -> Vec<usize> {
    let lead = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, &e)| &edges[e].held)
        .map(|(pos, _)| pos)
        .unwrap_or(0);
    let mut out = cycle[lead..].to_vec();
    out.extend_from_slice(&cycle[..lead]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::symbols::Symbols;

    fn graph_of(files: &[(&str, Option<&str>, &str)]) -> LockGraph {
        let lexed: Vec<_> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let parsed: Vec<_> = lexed.iter().map(|l| parse(&l.tokens)).collect();
        let _symbols = Symbols::build(
            files.iter().enumerate().map(|(i, (_, krate, _))| (*krate, &parsed[i])),
        );
        let empty: Vec<(usize, usize)> = Vec::new();
        let bundles: Vec<ParsedForFlow> = (0..files.len())
            .map(|i| ParsedForFlow {
                parsed: &parsed[i],
                tokens: &lexed[i].tokens,
                test_ranges: &empty,
            })
            .collect();
        let graph = CallGraph::build((0..files.len()).map(|i| {
            (files[i].0, files[i].1, bundles[i].parsed, bundles[i].tokens, bundles[i].test_ranges)
        }));
        LockGraph::build(
            &graph,
            (0..files.len()).map(|i| (files[i].0, &bundles[i])),
        )
    }

    #[test]
    fn opposite_orders_cycle_is_found() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn ab(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n\
             fn ba(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n",
        )]);
        assert_eq!(g.cycles.len(), 1, "edges: {:?}", g.edges);
        let cycle = &g.cycles[0];
        assert_eq!(cycle.len(), 2);
        assert_eq!(g.edges[cycle[0]].held, "alpha", "canonical rotation leads with the smallest");
    }

    #[test]
    fn nested_same_order_is_clean_and_interprocedural_edges_exist() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn outer(s: &S) { let a = s.alpha.lock(); tail(s); }\n\
             fn tail(s: &S) { let b = s.beta.lock(); }\n\
             fn also(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n",
        )]);
        assert!(g.cycles.is_empty(), "{:?}", g.cycles);
        assert!(
            g.edges.iter().any(|e| e.held == "alpha" && e.then == "beta"),
            "call through `tail` must contribute an edge: {:?}",
            g.edges
        );
    }

    #[test]
    fn relock_of_the_same_place_is_a_self_cycle() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn twice(s: &S) { let a = s.gate.lock(); let b = s.gate.lock(); }\n",
        )]);
        assert_eq!(g.cycles.len(), 1);
        assert_eq!(g.cycles[0].len(), 1, "a → a is a one-edge cycle");
    }

    #[test]
    fn generic_param_helper_contributes_no_place() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn helper(m: &Mutex<u32>) -> u32 { let g = m.lock(); 0 }\n\
             fn caller(s: &S) { let a = s.alpha.lock(); let x = helper(&s.alpha); }\n",
        )]);
        // `helper` locks only its parameter; the caller's edge must not
        // exist under the param's name (`m`), and the place-less helper
        // contributes nothing transitively.
        assert!(g.edges.iter().all(|e| e.then != "m"), "{:?}", g.edges);
        assert!(g.cycles.is_empty());
    }

    #[test]
    fn drop_ends_the_guard_span() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn staged(s: &S) { let a = s.alpha.lock(); drop(a); let b = s.beta.lock(); }\n\
             fn back(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n",
        )]);
        // Without the drop, alpha→beta + beta→alpha would cycle; the
        // explicit drop leaves only beta→alpha.
        assert!(g.cycles.is_empty(), "edges: {:?}", g.edges);
        assert!(g.edges.iter().any(|e| e.held == "beta" && e.then == "alpha"));
    }

    #[test]
    fn block_scoped_temporary_guard_does_not_leak() {
        // The guard inside the block-valued initializer dies at the
        // block's `}`; binding `x` is a plain value. Attributing the
        // guard to `x` would invent an alpha→beta edge and a cycle.
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "fn staged(s: &S) { let x = { let a = s.alpha.lock(); peek(&a) }; let b = s.beta.lock(); }\n\
             fn back(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n",
        )]);
        assert!(
            !g.edges.iter().any(|e| e.held == "alpha" && e.then == "beta"),
            "temporary guard leaked out of its block: {:?}",
            g.edges
        );
        assert!(g.cycles.is_empty(), "{:?}", g.cycles);
    }

    #[test]
    fn ambiguous_callees_resolve_to_the_intersection() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            Some("core"),
            "impl A { fn grab(s: &S) { let b = s.beta.lock(); } }\n\
             impl B { fn grab(s: &S) { } }\n\
             fn caller(s: &S) { let a = s.alpha.lock(); B::grab(s); }\n",
        )]);
        assert!(
            !g.edges.iter().any(|e| e.held == "alpha" && e.then == "beta"),
            "ambiguous `grab` must not invent an alpha→beta edge: {:?}",
            g.edges
        );
    }
}
