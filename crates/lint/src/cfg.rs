//! Intraprocedural control-flow graphs over token trees.
//!
//! The layer-3 rules need flow-shaped questions the flat token stream
//! cannot answer: "is this `wait()` re-entered by a loop that re-checks a
//! predicate?", "which statements can execute after this binding while it
//! is still live?". This module lowers one fn body (a brace-delimited
//! token range from [`crate::parser`]) into basic blocks with successor
//! edges, plus a side table of the loops it contains.
//!
//! The lowering is deliberately forgiving, in the same spirit as the
//! parser: `match` expressions are kept opaque inside their enclosing
//! block (the arms never contain the pool-protocol shapes the rules look
//! for), closures are lowered inline, and anything unrecognized just
//! extends the current block. On weird-but-valid code the CFG degrades to
//! fewer, larger blocks — never to a crash or a spurious edge.

use crate::lexer::Token;

/// What kind of loop a [`LoopInfo`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `while <cond> { .. }` — the predicate is re-checked on every
    /// iteration by construction.
    While,
    /// `while let <pat> = <expr> { .. }`.
    WhileLet,
    /// `loop { .. }` — exits only via `break`/`return`.
    Loop,
    /// `for <pat> in <iter> { .. }`.
    For,
}

/// One loop found while lowering a body.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop kind.
    pub kind: LoopKind,
    /// Token index of the loop keyword.
    pub kw: usize,
    /// Token indices of the body's `{` and `}`.
    pub body: (usize, usize),
}

impl LoopInfo {
    /// True if token `idx` falls inside this loop's body.
    pub fn contains(&self, idx: usize) -> bool {
        idx > self.body.0 && idx < self.body.1
    }
}

/// A basic block: a maximal straight-line token span with its successors.
#[derive(Debug, Default)]
pub struct Block {
    /// Inclusive token span covered by the block's statements; `None` for
    /// synthesized empty blocks (join points, loop headers of `loop`).
    pub span: Option<(usize, usize)>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one fn body.
#[derive(Debug, Default)]
pub struct Cfg {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Every loop in the body, in source order of the loop keyword.
    pub loops: Vec<LoopInfo>,
}

impl Cfg {
    /// The innermost loop whose body contains token `idx`, if any.
    pub fn innermost_loop(&self, idx: usize) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.contains(idx))
            .min_by_key(|l| l.body.1 - l.body.0)
    }

    /// The block whose span covers token `idx`, if any.
    pub fn block_of(&self, idx: usize) -> Option<usize> {
        self.blocks.iter().position(|b| {
            b.span.is_some_and(|(lo, hi)| idx >= lo && idx <= hi)
        })
    }

    /// Blocks reachable from `from` (inclusive), as a membership mask.
    pub fn reachable(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if b >= seen.len() || seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }
}

/// Lowers the body tokens between the brace pair `(open, close)`
/// (exclusive of the braces themselves) into a [`Cfg`].
pub fn build(tokens: &[Token], match_of: &[Option<usize>], open: usize, close: usize) -> Cfg {
    let mut b = Builder { tokens, match_of, cfg: Cfg::default() };
    let entry = b.new_block();
    let mut loop_stack = Vec::new();
    b.lower(open + 1, close, entry, &mut loop_stack);
    b.cfg
}

/// True if this loop's body can exit through a *conditional* `break` or
/// `return` — the shape that makes a bare `loop { .. wait() .. }` a
/// legitimate predicate loop. A `break`/`return` sitting directly in the
/// loop body (not nested under an inner `{`) exits unconditionally, which
/// is exactly the lost-wakeup shape the condvar rule flags.
pub fn loop_breaks_conditionally(
    tokens: &[Token],
    match_of: &[Option<usize>],
    lp: &LoopInfo,
) -> bool {
    let (open, close) = lp.body;
    let mut i = open + 1;
    let mut brace_depth = 0usize;
    let mut nested_loops = 0usize;
    while i < close {
        let t = &tokens[i];
        if t.is_punct("{") {
            brace_depth += 1;
        } else if t.is_punct("}") {
            brace_depth = brace_depth.saturating_sub(1);
            if nested_loops > 0 && brace_depth == 0 {
                nested_loops = 0;
            }
        } else if t.is_ident("while") || t.is_ident("for") || t.is_ident("loop") {
            // A `break` inside a nested loop targets that loop, not this
            // one; skip the nested body wholesale (but keep scanning it
            // for `return`, which exits the fn regardless).
            if let Some((nopen, nclose)) = body_braces(tokens, match_of, i) {
                let nested_returns = (nopen + 1..nclose)
                    .any(|k| tokens[k].is_ident("return"));
                if nested_returns {
                    return true;
                }
                i = nclose + 1;
                continue;
            }
            nested_loops += 1;
        } else if (t.is_ident("break") || t.is_ident("return")) && brace_depth >= 1 {
            return true;
        }
        i += 1;
    }
    false
}

/// Finds the `{`/`}` pair of the body following a control keyword at
/// `kw`: the first `{` at paren/bracket depth 0 after the header.
fn body_braces(
    tokens: &[Token],
    match_of: &[Option<usize>],
    kw: usize,
) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut k = kw + 1;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("{") {
            let close = match_of.get(k).copied().flatten()?;
            return Some((k, close));
        } else if depth == 0 && (t.is_punct(";") || t.is_punct("}")) {
            return None;
        }
        k += 1;
    }
    None
}

struct Builder<'a> {
    tokens: &'a [Token],
    match_of: &'a [Option<usize>],
    cfg: Cfg,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(Block::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.blocks[from].succs.contains(&to) {
            self.cfg.blocks[from].succs.push(to);
        }
    }

    fn extend_span(&mut self, block: usize, idx: usize) {
        let span = &mut self.cfg.blocks[block].span;
        *span = match *span {
            None => Some((idx, idx)),
            Some((lo, hi)) => Some((lo.min(idx), hi.max(idx))),
        };
    }

    /// Lowers tokens in `[lo, hi)` starting in block `cur`. Returns the
    /// block control falls out of, or `None` if every path diverges
    /// (`return` / `break` / `continue`).
    ///
    /// `loop_stack` carries `(header_block, after_block)` per enclosing
    /// loop, innermost last, for `break`/`continue` edges.
    fn lower(
        &mut self,
        lo: usize,
        hi: usize,
        mut cur: usize,
        loop_stack: &mut Vec<(usize, usize)>,
    ) -> Option<usize> {
        let mut i = lo;
        while i < hi {
            let t = &self.tokens[i];
            if t.is_ident("if") {
                self.extend_span(cur, i);
                let Some((bopen, bclose)) = body_braces(self.tokens, self.match_of, i) else {
                    i += 1;
                    continue;
                };
                for k in i..bopen {
                    self.extend_span(cur, k);
                }
                let then_entry = self.new_block();
                self.edge(cur, then_entry);
                let then_exit = self.lower(bopen + 1, bclose, then_entry, loop_stack);
                let join = self.new_block();
                if let Some(e) = then_exit {
                    self.edge(e, join);
                }
                // `else` / `else if` chain.
                let mut k = bclose + 1;
                let mut has_else = false;
                if self.tokens.get(k).is_some_and(|t| t.is_ident("else")) {
                    has_else = true;
                    let else_entry = self.new_block();
                    self.edge(cur, else_entry);
                    let else_exit = if self.tokens.get(k + 1).is_some_and(|t| t.is_ident("if"))
                        || self.tokens.get(k + 1).is_some_and(|t| t.is_punct("{"))
                    {
                        if let Some((eopen, eclose)) =
                            body_braces(self.tokens, self.match_of, k)
                        {
                            for m in k..=eopen.saturating_sub(1) {
                                self.extend_span(else_entry, m);
                            }
                            let exit =
                                self.lower(eopen + 1, eclose, else_entry, loop_stack);
                            k = eclose + 1;
                            exit
                        } else {
                            Some(else_entry)
                        }
                    } else {
                        Some(else_entry)
                    };
                    if let Some(e) = else_exit {
                        self.edge(e, join);
                    }
                }
                if !has_else {
                    self.edge(cur, join);
                }
                cur = join;
                i = k;
                continue;
            }
            if t.is_ident("while") || t.is_ident("for") || t.is_ident("loop") {
                let Some((bopen, bclose)) = body_braces(self.tokens, self.match_of, i) else {
                    self.extend_span(cur, i);
                    i += 1;
                    continue;
                };
                let kind = if t.is_ident("for") {
                    LoopKind::For
                } else if t.is_ident("loop") {
                    LoopKind::Loop
                } else if self.tokens.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                    LoopKind::WhileLet
                } else {
                    LoopKind::While
                };
                self.cfg.loops.push(LoopInfo { kind, kw: i, body: (bopen, bclose) });
                let header = self.new_block();
                self.edge(cur, header);
                for k in i..bopen {
                    self.extend_span(header, k);
                }
                let after = self.new_block();
                if kind != LoopKind::Loop {
                    // `while`/`for` fall through when the condition /
                    // iterator is exhausted; `loop` only exits via break.
                    self.edge(header, after);
                }
                let body_entry = self.new_block();
                self.edge(header, body_entry);
                loop_stack.push((header, after));
                let body_exit = self.lower(bopen + 1, bclose, body_entry, loop_stack);
                loop_stack.pop();
                if let Some(e) = body_exit {
                    self.edge(e, header);
                }
                cur = after;
                i = bclose + 1;
                continue;
            }
            if t.is_ident("match") {
                // Opaque: the whole match (header + arms) stays in the
                // current block.
                if let Some((_, bclose)) = body_braces(self.tokens, self.match_of, i) {
                    for k in i..=bclose.min(hi.saturating_sub(1)) {
                        self.extend_span(cur, k);
                    }
                    i = bclose + 1;
                    continue;
                }
                self.extend_span(cur, i);
                i += 1;
                continue;
            }
            if t.is_ident("return") || t.is_ident("break") || t.is_ident("continue") {
                self.extend_span(cur, i);
                match (t.text.as_str(), loop_stack.last().copied()) {
                    ("break", Some((_, after))) => self.edge(cur, after),
                    ("continue", Some((header, _))) => self.edge(cur, header),
                    _ => {}
                }
                // Skip the rest of the statement, then continue in a
                // fresh, unconnected block (unreachable until proven
                // otherwise by a label-free analysis we don't attempt).
                let mut k = i + 1;
                let mut depth = 0i32;
                while k < hi {
                    let tk = &self.tokens[k];
                    if tk.is_punct("(") || tk.is_punct("[") || tk.is_punct("{") {
                        depth += 1;
                    } else if tk.is_punct(")") || tk.is_punct("]") || tk.is_punct("}") {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if depth == 0 && tk.is_punct(";") {
                        self.extend_span(cur, k);
                        k += 1;
                        break;
                    }
                    self.extend_span(cur, k);
                    k += 1;
                }
                cur = self.new_block();
                i = k;
                continue;
            }
            if t.is_punct("{") {
                // Bare block (or closure body): lower inline.
                if let Some(close) = self.match_of.get(i).copied().flatten() {
                    if close < hi {
                        match self.lower(i + 1, close, cur, loop_stack) {
                            Some(exit) => cur = exit,
                            None => cur = self.new_block(),
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
            self.extend_span(cur, i);
            i += 1;
        }
        // A region that ended right after a divergence falls out of the
        // fresh unconnected block — edges drawn *from* it are harmless
        // because nothing edges *into* it, so reachability stays honest.
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> (Vec<crate::lexer::Token>, Vec<Option<usize>>, Cfg) {
        let toks = lex(src).tokens;
        let parsed = parse(&toks);
        let item = parsed
            .items
            .iter()
            .find(|i| i.kind == crate::parser::ItemKind::Fn)
            .expect("fixture has a fn");
        let (open, close) = item.body.expect("fn has a body");
        let cfg = build(&toks, &parsed.match_of, open, close);
        (toks, parsed.match_of, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, _, cfg) = cfg_of("fn f() { let a = 1; let b = a + 2; g(b); }");
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (_, _, cfg) = cfg_of("fn f(x: u32) { if x > 1 { a(); } else { b(); } c(); }");
        // entry, then, join, else — entry branches to then and else, both
        // reach the join, and `c()` lives in the join.
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        let reach = cfg.reachable(0);
        assert!(reach.iter().all(|&r| r), "all blocks reachable from entry");
    }

    #[test]
    fn if_without_else_falls_through() {
        let (_, _, cfg) = cfg_of("fn f(x: u32) { if x > 1 { a(); } c(); }");
        assert_eq!(cfg.blocks.len(), 3);
        // Entry reaches the join both through and around the then-block.
        let reach = cfg.reachable(0);
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn while_loop_has_backedge_and_kind() {
        let (_, _, cfg) = cfg_of("fn f(mut n: u32) { while n > 0 { n -= 1; } done(); }");
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].kind, LoopKind::While);
        let header = 1; // entry=0, header=1 by construction order
        let backedges = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| *i != 0 && b.succs.contains(&header))
            .count();
        assert!(backedges >= 1, "the body block edges back to the loop header");
    }

    #[test]
    fn loop_kinds_are_classified() {
        let (_, _, cfg) = cfg_of(
            "fn f(v: &[u32]) { loop { if a() { break; } } while let Some(x) = b() { c(x); } \
             for x in v { d(x); } }",
        );
        let kinds: Vec<LoopKind> = cfg.loops.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, vec![LoopKind::Loop, LoopKind::WhileLet, LoopKind::For]);
    }

    #[test]
    fn innermost_loop_picks_the_tightest() {
        let (toks, _, cfg) =
            cfg_of("fn f() { while a() { loop { if b() { break; } poll(); } } }");
        let poll = toks.iter().position(|t| t.is_ident("poll")).unwrap();
        assert_eq!(cfg.innermost_loop(poll).unwrap().kind, LoopKind::Loop);
        let outer_probe = toks.iter().position(|t| t.is_ident("loop")).unwrap();
        assert_eq!(cfg.innermost_loop(outer_probe).unwrap().kind, LoopKind::While);
    }

    #[test]
    fn conditional_break_detection() {
        let (toks, match_of, cfg) =
            cfg_of("fn f() { loop { if done() { break; } step(); } }");
        assert!(loop_breaks_conditionally(&toks, &match_of, &cfg.loops[0]));
        let (toks, match_of, cfg) = cfg_of("fn f() { loop { step(); break; } }");
        assert!(
            !loop_breaks_conditionally(&toks, &match_of, &cfg.loops[0]),
            "a bare break is unconditional"
        );
        let (toks, match_of, cfg) = cfg_of("fn f() { loop { step(); } }");
        assert!(!loop_breaks_conditionally(&toks, &match_of, &cfg.loops[0]));
    }

    #[test]
    fn nested_loop_break_does_not_count_for_the_outer() {
        let (toks, match_of, cfg) =
            cfg_of("fn f() { loop { while a() { if b() { break; } } step(); } }");
        let outer = cfg.loops.iter().find(|l| l.kind == LoopKind::Loop).unwrap();
        assert!(
            !loop_breaks_conditionally(&toks, &match_of, outer),
            "the break targets the inner while"
        );
    }

    #[test]
    fn nested_return_counts_for_the_outer() {
        let (toks, match_of, cfg) =
            cfg_of("fn f() { loop { while a() { if b() { return; } } step(); } }");
        let outer = cfg.loops.iter().find(|l| l.kind == LoopKind::Loop).unwrap();
        assert!(loop_breaks_conditionally(&toks, &match_of, outer));
    }

    #[test]
    fn return_terminates_the_block() {
        let (toks, _, cfg) = cfg_of("fn f(x: u32) -> u32 { if x > 0 { return 1; } after() }");
        let after = toks.iter().position(|t| t.is_ident("after")).unwrap();
        let ret = toks.iter().position(|t| t.is_ident("return")).unwrap();
        let (ab, rb) = (cfg.block_of(after).unwrap(), cfg.block_of(ret).unwrap());
        assert_ne!(ab, rb, "code after a return starts a new block");
        assert!(!cfg.blocks[rb].succs.contains(&ab), "return does not fall through");
    }

    #[test]
    fn match_is_opaque() {
        let (_, _, cfg) =
            cfg_of("fn f(x: u32) { match x { 0 => a(), _ => b(), } c(); }");
        assert_eq!(cfg.blocks.len(), 1, "match stays inside its enclosing block");
    }
}
