//! Per-file analysis driver: token stream → findings.
//!
//! The engine owns everything that is rule-independent: classifying a file
//! from its path, locating `#[cfg(test)]`/`#[test]` regions by brace
//! matching, running every rule, and applying inline suppression
//! directives. Rules (in [`crate::rules`]) only look at tokens.

use crate::dataflow::{EffectSet, FlowInfo, ParsedForFlow};
use crate::lexer::{lex, LexedFile, Token};
use crate::lockgraph::LockGraph;
use crate::parser::{parse, ItemKind, ParsedFile};
use crate::rules;
use crate::symbols::Symbols;
use std::time::Instant;

/// Pseudo-rule id for malformed or unknown suppression directives. Not a
/// real rule: it cannot itself be suppressed, so a typo in an `allow(...)`
/// can never silently disable enforcement.
pub const BAD_DIRECTIVE: &str = "bad-directive";

/// What role a file plays, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`) of an invariant-bearing crate.
    Library,
    /// Binary / experiment-harness code (`src/bin/**`, the `cli` and
    /// `bench` crates): panicking on bad input is acceptable there, so
    /// `library-unwrap` does not apply.
    Harness,
    /// Test, bench, example, or fixture code: exempt from all rules.
    Test,
}

/// Crates whose `src/` is harness code rather than library code.
const HARNESS_CRATES: &[&str] = &["cli", "bench"];

/// Path components that mark a file as test-like.
const TEST_COMPONENTS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// Extracts the workspace crate name from a path like
/// `crates/<name>/src/lib.rs`. Returns `None` for the root package.
pub fn crate_of(path: &str) -> Option<&str> {
    let mut parts = path.split('/').peekable();
    while let Some(part) = parts.next() {
        if part == "crates" {
            return parts.peek().copied();
        }
    }
    None
}

/// Classifies a (repo-relative, `/`-separated) path.
pub fn classify(path: &str) -> FileKind {
    if path.split('/').any(|c| TEST_COMPONENTS.contains(&c)) {
        return FileKind::Test;
    }
    if path.contains("/src/bin/") {
        return FileKind::Harness;
    }
    match crate_of(path) {
        Some(name) if HARNESS_CRATES.contains(&name) => FileKind::Harness,
        _ => FileKind::Library,
    }
}

/// One diagnostic emitted by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule id (stable, kebab-case).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of what is wrong and what to do instead.
    pub message: String,
    /// True if `lrgp lint --fix` can rewrite this finding mechanically.
    pub fixable: bool,
}

/// A suppression that actually matched a finding.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The suppressed rule.
    pub rule: String,
    /// File the directive lives in.
    pub file: String,
    /// Directive line.
    pub line: u32,
    /// The stated justification.
    pub reason: String,
}

/// Everything the rules get to see about one file.
pub struct FileContext<'a> {
    /// Repo-relative path.
    pub path: &'a str,
    /// Role of the file.
    pub kind: FileKind,
    /// Workspace crate name, if under `crates/`.
    pub krate: Option<&'a str>,
    /// The full token stream.
    pub tokens: &'a [Token],
    /// Structural view: items, signatures, imports, delimiter pairing.
    pub parsed: &'a ParsedFile,
    /// Workspace-wide symbol table (field types, fn returns, statics).
    pub symbols: &'a Symbols,
    /// Layer-3 analysis: call graph + interprocedural effect fixpoint.
    pub flow: &'a FlowInfo,
    /// Layer-4 analysis: the whole-workspace lock-order graph.
    pub locks: &'a LockGraph,
    test_ranges: Vec<(usize, usize)>,
}

impl FileContext<'_> {
    /// True if token `idx` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi)
    }

    /// Convenience: a finding anchored at token `idx`.
    pub fn finding(&self, rule: &'static str, idx: usize, message: String) -> Finding {
        let t = &self.tokens[idx];
        Finding {
            rule,
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            message,
            fixable: false,
        }
    }

    /// Like [`FileContext::finding`], marked machine-fixable.
    pub fn fixable_finding(&self, rule: &'static str, idx: usize, message: String) -> Finding {
        let mut f = self.finding(rule, idx, message);
        f.fixable = true;
        f
    }
}

/// The analysis result for one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings, in source order.
    pub findings: Vec<Finding>,
    /// Findings that were suppressed by a directive (one entry per
    /// directive that matched at least one finding).
    pub suppressions: Vec<Suppression>,
    /// For files under `crates/core/src/kernel/` only: each fn's
    /// interprocedural effect set from the dataflow fixpoint, so callers
    /// (the workspace self-check) can assert kernel purity directly
    /// rather than through the finding/suppression pipeline.
    pub kernel_effects: Vec<(String, EffectSet)>,
}

/// Locates `#[cfg(test)]`-style regions as token-index ranges.
///
/// An attribute marks the following item as test code when its token
/// stream mentions the ident `test` and does not mention `not` (so
/// `#[cfg(not(test))]` correctly stays live code). The region extends over
/// the item's brace block, or to the terminating `;` for brace-less items
/// like `#[cfg(test)] mod tests;`.
fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let start = i;
        // Walk the attribute's bracket group.
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                saw_test = true;
            } else if t.is_ident("not") {
                saw_not = true;
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j + 1;
            continue;
        }
        // Skip any further stacked attributes, then find the item body.
        let mut k = j + 1;
        while k < tokens.len()
            && tokens[k].is_punct("#")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                if tokens[k].is_punct("[") {
                    d += 1;
                } else if tokens[k].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // Scan the item header for `{` (start of body) or `;` (no body).
        let mut paren = 0i32;
        let mut end = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren -= 1;
            } else if paren == 0 && t.is_punct(";") {
                end = Some(k);
                break;
            } else if paren == 0 && t.is_punct("{") {
                let mut braces = 1i32;
                let mut m = k + 1;
                while m < tokens.len() && braces > 0 {
                    if tokens[m].is_punct("{") {
                        braces += 1;
                    } else if tokens[m].is_punct("}") {
                        braces -= 1;
                    }
                    m += 1;
                }
                end = Some(m.saturating_sub(1));
                break;
            }
            k += 1;
        }
        let end = end.unwrap_or(tokens.len().saturating_sub(1));
        ranges.push((start, end));
        i = end + 1;
    }
    ranges
}

/// One file prepared for analysis: lexed, parsed, classified.
struct PreparedFile {
    path: String,
    kind: FileKind,
    lexed: LexedFile,
    parsed: ParsedFile,
    test_ranges: Vec<(usize, usize)>,
}

/// Runs every rule on a set of files as one workspace: symbols (field
/// types, fn return types, `static mut` declarations) are collected from
/// **all** non-test files first, then each file is analyzed against that
/// shared table — this is what lets a rule in `topology.rs` know the type
/// of a field declared three modules away.
///
/// Paths should be repo-relative with `/` separators: they drive file
/// classification, per-crate rule scoping, and symbol-table keying.
/// Returns one [`FileAnalysis`] per input, in input order.
pub fn analyze_files(files: &[(String, String)]) -> Vec<FileAnalysis> {
    analyze_files_timed(files).0
}

/// Wallclock spent in each analysis layer, for the v4 report schema.
/// Milliseconds, rounded down; the stability self-check zeroes all four
/// before comparing serialized reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Lexing, parsing, and test-region location.
    pub lex_ms: u128,
    /// Symbol-table construction plus the per-file rule sweep.
    pub semantic_ms: u128,
    /// Call-graph construction and the interprocedural effect fixpoint.
    pub dataflow_ms: u128,
    /// Layer-4 whole-program graph analyses (lock-order graph).
    pub graph_ms: u128,
}

/// [`analyze_files`] plus the per-layer timing breakdown.
pub fn analyze_files_timed(files: &[(String, String)]) -> (Vec<FileAnalysis>, PhaseTimings) {
    let mut timings = PhaseTimings::default();
    let t = Instant::now();
    let prepared: Vec<PreparedFile> = files
        .iter()
        .map(|(path, src)| {
            let lexed = lex(src);
            let parsed = parse(&lexed.tokens);
            let ranges = test_ranges(&lexed.tokens);
            PreparedFile {
                path: path.clone(),
                kind: classify(path),
                lexed,
                parsed,
                test_ranges: ranges,
            }
        })
        .collect();
    timings.lex_ms = t.elapsed().as_millis();
    let t = Instant::now();
    let symbols = Symbols::build(
        prepared
            .iter()
            .filter(|p| p.kind != FileKind::Test)
            .map(|p| (crate_of(&p.path), &p.parsed)),
    );
    timings.semantic_ms = t.elapsed().as_millis();
    let bundles: Vec<(&PreparedFile, ParsedForFlow)> = prepared
        .iter()
        .filter(|p| p.kind != FileKind::Test)
        .map(|p| {
            (
                p,
                ParsedForFlow {
                    parsed: &p.parsed,
                    tokens: &p.lexed.tokens,
                    test_ranges: &p.test_ranges,
                },
            )
        })
        .collect();
    let t = Instant::now();
    let flow = FlowInfo::build(
        bundles.iter().map(|(p, b)| (p.path.as_str(), crate_of(&p.path), b)),
        &symbols,
    );
    timings.dataflow_ms = t.elapsed().as_millis();
    let t = Instant::now();
    let locks = LockGraph::build(
        &flow.graph,
        bundles.iter().map(|(p, b)| (p.path.as_str(), b)),
    );
    timings.graph_ms = t.elapsed().as_millis();
    let t = Instant::now();
    let out = prepared.iter().map(|p| analyze_prepared(p, &symbols, &flow, &locks)).collect();
    timings.semantic_ms += t.elapsed().as_millis();
    (out, timings)
}

/// The deterministic effect surface: one line per public fn of every
/// library file, `module::path::fn effect,names` (`-` when pure), sorted
/// and deduplicated — the `--effects` snapshot diffed in CI. Also returns
/// the lock-order graph for the machine-readable variant.
pub fn effect_surface(files: &[(String, String)]) -> (Vec<String>, LockGraph) {
    let prepared: Vec<PreparedFile> = files
        .iter()
        .map(|(path, src)| {
            let lexed = lex(src);
            let parsed = parse(&lexed.tokens);
            let ranges = test_ranges(&lexed.tokens);
            PreparedFile {
                path: path.clone(),
                kind: classify(path),
                lexed,
                parsed,
                test_ranges: ranges,
            }
        })
        .collect();
    let symbols = Symbols::build(
        prepared
            .iter()
            .filter(|p| p.kind != FileKind::Test)
            .map(|p| (crate_of(&p.path), &p.parsed)),
    );
    let bundles: Vec<(&PreparedFile, ParsedForFlow)> = prepared
        .iter()
        .filter(|p| p.kind != FileKind::Test)
        .map(|p| {
            (
                p,
                ParsedForFlow {
                    parsed: &p.parsed,
                    tokens: &p.lexed.tokens,
                    test_ranges: &p.test_ranges,
                },
            )
        })
        .collect();
    let flow = FlowInfo::build(
        bundles.iter().map(|(p, b)| (p.path.as_str(), crate_of(&p.path), b)),
        &symbols,
    );
    let locks = LockGraph::build(
        &flow.graph,
        bundles.iter().map(|(p, b)| (p.path.as_str(), b)),
    );
    let mut lines = std::collections::BTreeSet::new();
    for p in &prepared {
        if p.kind != FileKind::Library {
            continue;
        }
        let module = module_path_of(&p.path);
        for item in &p.parsed.items {
            if item.kind != ItemKind::Fn || !item.is_pub {
                continue;
            }
            if p.test_ranges.iter().any(|&(lo, hi)| item.kw >= lo && item.kw <= hi) {
                continue;
            }
            let Some(effects) = flow.effects_at(&p.path, item.kw) else { continue };
            let names = effects.names();
            let effects = if names.is_empty() { "-".to_string() } else { names.join(",") };
            lines.insert(format!("{module}::{} {effects}", item.name));
        }
    }
    (lines.into_iter().collect(), locks)
}

/// `crates/core/src/kernel/rate.rs` → `core::kernel::rate`; `mod.rs`
/// collapses into its directory, `lib.rs` into the crate, and files of
/// the root package are prefixed `crate`.
fn module_path_of(path: &str) -> String {
    let krate = crate_of(path).unwrap_or("crate");
    let mut segs: Vec<&str> = match path.split_once("/src/") {
        Some((_, rest)) => rest.trim_end_matches(".rs").split('/').collect(),
        None => Vec::new(),
    };
    if matches!(segs.last(), Some(&"mod") | Some(&"lib")) {
        segs.pop();
    }
    let mut out = krate.to_string();
    for s in segs {
        out.push_str("::");
        out.push_str(s);
    }
    out
}

/// Runs every rule on one file and applies suppression directives.
///
/// Single-file convenience over [`analyze_files`]: the symbol table is
/// built from this file alone, so cross-file facts resolve only within
/// it.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    analyze_files(&[(path.to_string(), src.to_string())])
        .pop()
        .unwrap_or_default()
}

fn analyze_prepared(
    file: &PreparedFile,
    symbols: &Symbols,
    flow: &FlowInfo,
    locks: &LockGraph,
) -> FileAnalysis {
    let lexed = &file.lexed;
    let path = file.path.as_str();
    let kind = file.kind;
    let mut analysis = FileAnalysis::default();
    // Directive hygiene is checked even in test files: a malformed
    // directive anywhere is a lie about what is being enforced.
    for (line, msg) in &lexed.directive_errors {
        analysis.findings.push(Finding {
            rule: BAD_DIRECTIVE,
            file: path.to_string(),
            line: *line,
            col: 1,
            message: format!("malformed lrgp-lint directive: {msg}"),
            fixable: false,
        });
    }
    for d in &lexed.directives {
        if !rules::is_known_rule(&d.rule) {
            analysis.findings.push(Finding {
                rule: BAD_DIRECTIVE,
                file: path.to_string(),
                line: d.line,
                col: 1,
                message: format!("allow() names unknown rule `{}`", d.rule),
                fixable: false,
            });
        }
    }
    if kind == FileKind::Test {
        return analysis;
    }
    let ctx = FileContext {
        path,
        kind,
        krate: crate_of(path),
        tokens: &lexed.tokens,
        parsed: &file.parsed,
        symbols,
        flow,
        locks,
        test_ranges: file.test_ranges.clone(),
    };
    if kind == FileKind::Library && ctx.krate == Some("core") && path.contains("/kernel/") {
        for item in &file.parsed.items {
            if item.kind == ItemKind::Fn {
                if let Some(effects) = flow.effects_at(path, item.kw) {
                    analysis.kernel_effects.push((item.name.clone(), effects));
                }
            }
        }
    }
    let mut raw: Vec<Finding> = Vec::new();
    for rule in rules::RULES {
        raw.extend((rule.check)(&ctx));
    }
    // A directive covers its own line and the next line carrying a token.
    let covered_lines = |directive_line: u32| -> [u32; 2] {
        let next = lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > directive_line)
            .min()
            .unwrap_or(directive_line);
        [directive_line, next]
    };
    let mut used = vec![false; lexed.directives.len()];
    'findings: for f in raw {
        for (di, d) in lexed.directives.iter().enumerate() {
            if d.rule == f.rule && covered_lines(d.line).contains(&f.line) {
                if !used[di] {
                    used[di] = true;
                    analysis.suppressions.push(Suppression {
                        rule: d.rule.clone(),
                        file: path.to_string(),
                        line: d.line,
                        reason: d.reason.clone(),
                    });
                }
                continue 'findings;
            }
        }
        analysis.findings.push(f);
    }
    analysis.findings.sort_by(|a, b| {
        (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule))
    });
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Library);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Harness);
        assert_eq!(classify("crates/bench/src/bin/fig1.rs"), FileKind::Harness);
        assert_eq!(classify("crates/core/tests/props.rs"), FileKind::Test);
        assert_eq!(classify("examples/demo.rs"), FileKind::Test);
        assert_eq!(classify("crates/lint/tests/fixtures/x.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(crate_of("crates/model/src/analysis.rs"), Some("model"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let a = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let a = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { x.unwrap(); }\n";
        let a = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn suppression_same_line_and_next_line() {
        let trailing =
            "fn f() { x.unwrap(); } // lrgp-lint: allow(library-unwrap, reason = \"ok\")\n";
        assert!(analyze_source("crates/model/src/x.rs", trailing).findings.is_empty());
        let above = "// lrgp-lint: allow(library-unwrap, reason = \"ok\")\nfn f() { x.unwrap(); }\n";
        let a = analyze_source("crates/model/src/x.rs", above);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.suppressions.len(), 1);
        assert_eq!(a.suppressions[0].reason, "ok");
    }

    #[test]
    fn suppression_must_name_the_right_rule() {
        let src = "// lrgp-lint: allow(float-eq, reason = \"wrong rule\")\nfn f() { x.unwrap(); }\n";
        let a = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "library-unwrap");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// lrgp-lint: allow(no-such-rule, reason = \"typo\")\nfn f() {}\n";
        let a = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, BAD_DIRECTIVE);
    }
}
