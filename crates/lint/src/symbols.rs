//! Workspace-wide symbol table.
//!
//! Cross-file rules need answers a single file cannot give: "what type is
//! `self.latencies`?" when the struct is declared in another module, "does
//! `rtt_of()` return an `f64`?", "is `COUNTER` a `static mut` anywhere in
//! this crate?". This pass runs over every parsed non-test file and
//! collects those facts per crate, keyed the same way
//! [`crate::engine::crate_of`] keys file classification.
//!
//! Resolution is deliberately name-based rather than path-based: the
//! workspace's crates are small and field/function names are effectively
//! unique within a crate, so a `(crate, name)` key gives the right answer
//! in practice while keeping the pass dependency-free and `O(items)`.
//! Collisions keep the first definition in scan order (scan order is the
//! sorted file list, so this is deterministic).

use crate::parser::{ItemKind, ParsedFile, TypeHead};
use std::collections::{BTreeMap, BTreeSet};

/// Per-crate symbol information for the whole workspace.
#[derive(Debug, Default)]
pub struct Symbols {
    /// `(crate, field name)` → declared field type head.
    field_types: BTreeMap<(String, String), TypeHead>,
    /// `(crate, fn name)` → return type head.
    fn_returns: BTreeMap<(String, String), TypeHead>,
    /// crate → names declared `static mut`.
    mut_statics: BTreeMap<String, BTreeSet<String>>,
    /// crate → names declared `static` (mut or not).
    statics: BTreeMap<String, BTreeSet<String>>,
    /// `(crate, struct name)` → declared field names, in declaration order.
    struct_fields: BTreeMap<(String, String), Vec<String>>,
}

/// Key used for files outside any `crates/<name>/` directory.
const ROOT_CRATE: &str = "(root)";

fn crate_key(krate: Option<&str>) -> String {
    krate.unwrap_or(ROOT_CRATE).to_string()
}

impl Symbols {
    /// Builds the table from `(crate, parsed file)` pairs — callers pass
    /// every non-test file in the scan set.
    pub fn build<'a>(files: impl IntoIterator<Item = (Option<&'a str>, &'a ParsedFile)>) -> Symbols {
        let mut sym = Symbols::default();
        for (krate, parsed) in files {
            let key = crate_key(krate);
            for item in &parsed.items {
                match item.kind {
                    ItemKind::Struct => {
                        for (field, ty) in &item.fields {
                            sym.field_types
                                .entry((key.clone(), field.clone()))
                                .or_insert_with(|| ty.clone());
                        }
                        sym.struct_fields
                            .entry((key.clone(), item.name.clone()))
                            .or_insert_with(|| {
                                item.fields.iter().map(|(f, _)| f.clone()).collect()
                            });
                    }
                    ItemKind::Fn => {
                        if let Some(ret) = item.sig.as_ref().and_then(|s| s.ret.as_ref()) {
                            sym.fn_returns
                                .entry((key.clone(), item.name.clone()))
                                .or_insert_with(|| ret.clone());
                        }
                    }
                    ItemKind::Static => {
                        sym.statics.entry(key.clone()).or_default().insert(item.name.clone());
                        if item.is_static_mut {
                            sym.mut_statics
                                .entry(key.clone())
                                .or_default()
                                .insert(item.name.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        sym
    }

    /// The declared type head of field `name` in crate `krate`, if any
    /// struct in that crate declares it.
    pub fn field_head(&self, krate: Option<&str>, name: &str) -> Option<&TypeHead> {
        self.field_types.get(&(crate_key(krate), name.to_string()))
    }

    /// The return type head of fn `name` in crate `krate`.
    pub fn fn_return_head(&self, krate: Option<&str>, name: &str) -> Option<&TypeHead> {
        self.fn_returns.get(&(crate_key(krate), name.to_string()))
    }

    /// True if crate `krate` declares a `static mut` with this name.
    pub fn is_mut_static(&self, krate: Option<&str>, name: &str) -> bool {
        self.mut_statics.get(&crate_key(krate)).is_some_and(|s| s.contains(name))
    }

    /// True if crate `krate` declares any `static` (mut or not) with this
    /// name.
    pub fn is_static(&self, krate: Option<&str>, name: &str) -> bool {
        self.statics.get(&crate_key(krate)).is_some_and(|s| s.contains(name))
    }

    /// The declared field names of struct `name` in crate `krate`.
    pub fn fields_of(&self, krate: Option<&str>, name: &str) -> Option<&[String]> {
        self.struct_fields
            .get(&(crate_key(krate), name.to_string()))
            .map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    #[test]
    fn collects_fields_returns_and_statics_per_crate() {
        let a = parse(
            &lex(
                "pub struct Topology { latencies: HashMap<(NodeId, NodeId), SimTime> }\n\
                 pub fn rtt_of(x: u32) -> f64 { go() }\n\
                 static mut SCRATCH: u32 = 0;\n",
            )
            .tokens,
        );
        let b = parse(&lex("pub struct Other { latencies: Vec<f64> }").tokens);
        let sym = Symbols::build([(Some("overlay"), &a), (Some("pubsub"), &b)]);
        assert_eq!(
            sym.field_head(Some("overlay"), "latencies").map(|t| t.head.as_str()),
            Some("HashMap")
        );
        assert_eq!(
            sym.field_head(Some("pubsub"), "latencies").map(|t| t.head.as_str()),
            Some("Vec"),
            "same field name resolves per crate"
        );
        assert!(sym.field_head(Some("core"), "latencies").is_none());
        assert_eq!(
            sym.fn_return_head(Some("overlay"), "rtt_of").map(|t| t.head.as_str()),
            Some("f64")
        );
        assert!(sym.is_mut_static(Some("overlay"), "SCRATCH"));
        assert!(!sym.is_mut_static(Some("pubsub"), "SCRATCH"));
        assert!(sym.is_static(Some("overlay"), "SCRATCH"));
        assert!(!sym.is_static(Some("pubsub"), "SCRATCH"));
        assert_eq!(
            sym.fields_of(Some("overlay"), "Topology"),
            Some(&["latencies".to_string()][..])
        );
        assert!(sym.fields_of(Some("overlay"), "Missing").is_none());
    }

    #[test]
    fn root_files_key_separately() {
        let a = parse(&lex("pub fn top() -> Result<(), E> { go() }").tokens);
        let sym = Symbols::build([(None, &a)]);
        assert_eq!(sym.fn_return_head(None, "top").map(|t| t.head.as_str()), Some("Result"));
        assert!(sym.fn_return_head(Some("core"), "top").is_none());
    }
}
