//! The semantic (parser-backed) determinism rules.
//!
//! Unlike the token-pattern rules in [`crate::rules`], the rules here use
//! the structural view from [`crate::parser`] and the workspace symbol
//! table from [`crate::symbols`]: they resolve imports and aliases, know
//! the types of fields declared in other files, and follow delimiter
//! pairing instead of guessing at brace depth. The layer-3 rules at the
//! bottom of the file go further and consume [`crate::cfg`] control-flow
//! graphs and the [`crate::dataflow`] interprocedural effect fixpoint.
//! Each protects the same invariant as the rest of the tool — that the
//! sequential, parallel, and incremental engines produce bit-identical
//! results — against a bug class that is invisible at the single-line
//! lexical level.

use crate::cfg::{self, LoopKind};
use crate::dataflow::EffectSet;
use crate::engine::{FileContext, FileKind, Finding};
use crate::lexer::TokenKind;
use crate::parser::{let_bindings, Container, ItemKind};
use std::collections::BTreeSet;

/// Crates whose iteration order and float flow feed engine state or
/// serialized output; `hash-order-iteration` and `lossy-float-cast` are
/// scoped to them.
const ORDER_SENSITIVE_CRATES: &[&str] = &["core", "model", "num", "overlay", "pubsub"];

/// Hash-based std containers whose iteration order is randomly seeded.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iterator-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "values", "values_mut", "keys", "into_iter", "into_values",
    "into_keys", "drain",
];

/// Chain terminals whose result genuinely cannot depend on iteration
/// order (counting and pure existence checks).
const ORDER_FREE_TERMINALS: &[&str] = &["count", "len", "any", "all", "is_empty"];

/// Integer / narrower-float cast targets that lose f64 information.
const LOSSY_TARGETS: &[&str] =
    &["f32", "usize", "u64", "u32", "u16", "u8", "i64", "i32", "i16", "i8", "isize"];

/// Names a file binds to hash containers: the type names themselves
/// (including `use .. as` aliases) and every value (local, param, field in
/// this crate) declared with one of those types.
struct HashScope {
    type_names: BTreeSet<String>,
    value_names: BTreeSet<String>,
    /// True if the file can be mechanically switched to BTree containers:
    /// no `BTreeMap`/`BTreeSet` ident already present to collide with.
    fixable: bool,
}

fn hash_scope(ctx: &FileContext) -> HashScope {
    let mut type_names: BTreeSet<String> =
        HASH_TYPES.iter().map(|s| s.to_string()).collect();
    for u in &ctx.parsed.uses {
        if HASH_TYPES.iter().any(|t| ctx.parsed.resolves_to(&u.local, t)) {
            type_names.insert(u.local.clone());
        }
    }
    let is_hash_head = |head: &str| type_names.contains(head);
    let mut value_names = BTreeSet::new();
    for item in &ctx.parsed.items {
        if let Some(sig) = &item.sig {
            for (name, ty) in &sig.params {
                if is_hash_head(&ty.head) {
                    value_names.insert(name.clone());
                }
            }
        }
        for (name, ty) in &item.fields {
            if is_hash_head(&ty.head) {
                value_names.insert(name.clone());
            }
        }
    }
    for b in let_bindings(ctx.tokens, 0, ctx.tokens.len()) {
        let hash_ty = b.ty.as_ref().is_some_and(|t| is_hash_head(&t.head));
        let hash_init = b.init_head.as_ref().is_some_and(|h| is_hash_head(h));
        if hash_ty || hash_init {
            value_names.insert(b.name);
        }
    }
    let fixable = !ctx
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && (t.text == "BTreeMap" || t.text == "BTreeSet"));
    HashScope { type_names, value_names, fixable }
}

/// Resolves the root identifier of a place expression ending at token
/// `j` (inclusive): walks back over `.field` / `[index]` / `(..)` chains
/// and returns the index of the leftmost identifier.
fn place_root(ctx: &FileContext, mut j: usize) -> Option<usize> {
    loop {
        let t = ctx.tokens.get(j)?;
        if t.is_punct("]") || t.is_punct(")") {
            j = ctx.parsed.match_of.get(j).copied().flatten()?.checked_sub(1)?;
            continue;
        }
        if t.kind != TokenKind::Ident {
            return None;
        }
        // `a.b` / `a::b`: keep walking left past the separator.
        match j.checked_sub(2) {
            Some(prev) if ctx.tokens[j - 1].is_punct(".") || ctx.tokens[j - 1].is_punct("::") => {
                j = prev;
            }
            _ => return Some(j),
        }
    }
}

/// True if the expression token at `idx` denotes a hash-typed value:
/// a hash type name, a hash-typed local/param/field name, `self.field`
/// with a hash-typed field in this crate, or a call of a function whose
/// declared return type is hash-based.
fn is_hash_expr(ctx: &FileContext, scope: &HashScope, idx: usize) -> bool {
    let t = &ctx.tokens[idx];
    if t.kind == TokenKind::Ident {
        if scope.type_names.contains(&t.text) || scope.value_names.contains(&t.text) {
            return true;
        }
        // Field access `recv.name`: resolve the field's declared type
        // anywhere in this crate via the workspace symbol table.
        if idx >= 2 && ctx.tokens[idx - 1].is_punct(".") {
            if let Some(head) = ctx.symbols.field_head(ctx.krate, &t.text) {
                return HASH_TYPES.contains(&head.head.as_str());
            }
        }
        return false;
    }
    if t.is_punct(")") {
        // `accessor()` returning a hash container.
        if let Some(open) = ctx.parsed.match_of.get(idx).copied().flatten() {
            if open >= 1 && ctx.tokens[open - 1].kind == TokenKind::Ident {
                if let Some(head) = ctx.symbols.fn_return_head(ctx.krate, &ctx.tokens[open - 1].text)
                {
                    return HASH_TYPES.contains(&head.head.as_str());
                }
            }
        }
    }
    false
}

/// `hash-order-iteration`: iteration over a hash container whose result
/// can reach engine state or output.
pub fn hash_order_iteration(ctx: &FileContext) -> Vec<Finding> {
    if !ctx.krate.is_some_and(|k| ORDER_SENSITIVE_CRATES.contains(&k)) {
        return Vec::new();
    }
    let scope = hash_scope(ctx);
    let toks = ctx.tokens;
    let mut out = Vec::new();
    let mut for_headers: Vec<(usize, usize)> = Vec::new();

    // Case 1: `for pat in <hash expr> { body }` where the body lets
    // anything escape (writes an outer place, grows an outer collection,
    // or returns).
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("for") || ctx.in_test(i) {
            continue;
        }
        let Some((in_idx, body_open)) = for_loop_shape(ctx, i) else { continue };
        for_headers.push((i, body_open));
        let header_hash =
            (in_idx + 1..body_open).any(|k| is_hash_expr(ctx, &scope, k));
        if !header_hash {
            continue;
        }
        let Some(body_close) = ctx.parsed.match_of.get(body_open).copied().flatten() else {
            continue;
        };
        let loop_vars: BTreeSet<String> = toks[i + 1..in_idx]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text != "mut")
            .map(|t| t.text.clone())
            .collect();
        let body_locals: BTreeSet<String> = let_bindings(toks, body_open + 1, body_close)
            .into_iter()
            .map(|b| b.name)
            .collect();
        let is_local = |root_idx: usize| -> bool {
            let name = &toks[root_idx].text;
            loop_vars.contains(name) || body_locals.contains(name)
        };
        let mut escapes = false;
        for k in body_open + 1..body_close {
            let tk = &toks[k];
            if tk.is_ident("return") {
                escapes = true;
                break;
            }
            let is_assign = tk.kind == TokenKind::Punct
                && matches!(tk.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=" | "^=");
            if is_assign && k > body_open + 1 {
                if let Some(root) = place_root(ctx, k - 1) {
                    if !is_local(root) {
                        escapes = true;
                        break;
                    }
                }
            }
            let grows = tk.kind == TokenKind::Ident
                && matches!(tk.text.as_str(), "push" | "push_back" | "insert" | "extend" | "entry")
                && k >= 2
                && toks[k - 1].is_punct(".")
                && toks.get(k + 1).is_some_and(|n| n.is_punct("("));
            if grows {
                if let Some(root) = place_root(ctx, k - 2) {
                    if !is_local(root) {
                        escapes = true;
                        break;
                    }
                }
            }
        }
        if escapes {
            out.push(hash_finding(ctx, &scope, i, "a `for` loop over"));
        }
    }

    // Case 2: iterator chains `<hash expr>.values()...` not ending in an
    // order-free terminal. Chains inside a for-loop header are case 1's
    // job (the loop decides by escape analysis).
    for (i, t) in toks.iter().enumerate() {
        let is_iter_call = t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_iter_call || ctx.in_test(i) {
            continue;
        }
        if for_headers.iter().any(|&(f, open)| i > f && i < open) {
            continue;
        }
        if !is_hash_expr(ctx, &scope, i - 2) {
            continue;
        }
        // Walk the method chain to its terminal.
        let mut terminal = t.text.clone();
        let mut close = ctx.parsed.match_of.get(i + 1).copied().flatten();
        while let Some(c) = close {
            let next_is_method = toks.get(c + 1).is_some_and(|n| n.is_punct("."))
                && toks.get(c + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                && toks.get(c + 3).is_some_and(|n| n.is_punct("("));
            if !next_is_method {
                break;
            }
            terminal = toks[c + 2].text.clone();
            close = ctx.parsed.match_of.get(c + 3).copied().flatten();
        }
        if ORDER_FREE_TERMINALS.contains(&terminal.as_str()) {
            continue;
        }
        if feeds_sorted_snapshot(ctx, i) {
            continue;
        }
        out.push(hash_finding(ctx, &scope, i, "an iterator chain over"));
    }

    // Case 3: hash-typed fields in structs that derive a representation-
    // exposing trait — serialization and comparison iterate the container.
    const EXPOSING: &[&str] = &["Serialize", "Deserialize", "PartialEq", "Eq", "Hash"];
    for item in &ctx.parsed.items {
        if item.kind != ItemKind::Struct || ctx.in_test(item.kw) {
            continue;
        }
        let exposed: Vec<&str> = item
            .derives
            .iter()
            .filter(|d| EXPOSING.contains(&d.as_str()))
            .map(|d| d.as_str())
            .collect();
        if exposed.is_empty() {
            continue;
        }
        for (name, ty) in &item.fields {
            if scope.type_names.contains(&ty.head) {
                let msg = format!(
                    "field `{name}: {}<..>` in a struct deriving {}: serializing or \
                     comparing it walks randomly-seeded hash order, so two identical \
                     runs produce different bytes; use BTreeMap/BTreeSet or a sorted \
                     snapshot",
                    ty.head,
                    exposed.join("/"),
                );
                let mut f = ctx.finding("hash-order-iteration", item.kw, msg);
                f.fixable = scope.fixable;
                out.push(f);
            }
        }
    }
    out
}

/// True if the chain token at `i` sits in the initializer of a `let`
/// binding that is later explicitly sorted (`name.sort*()`): collecting
/// into a vec and sorting it is the documented remediation for hash
/// iteration, so flagging it would fight the rule's own advice.
fn feeds_sorted_snapshot(ctx: &FileContext, i: usize) -> bool {
    let toks = ctx.tokens;
    for b in let_bindings(toks, 0, toks.len()) {
        // Locate the binding's `=` (giving up at a statement boundary).
        let mut k = b.idx + 1;
        let mut eq = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                break;
            }
            if t.is_punct("=") {
                eq = Some(k);
                break;
            }
            k += 1;
        }
        let Some(eq) = eq else { continue };
        if i <= eq {
            continue;
        }
        // Find the terminating `;`, skipping matched groups.
        let mut k = eq + 1;
        let mut semi = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match ctx.parsed.match_of.get(k).copied().flatten() {
                    Some(close) => k = close + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct(";") {
                semi = Some(k);
                break;
            }
            k += 1;
        }
        let Some(semi) = semi else { continue };
        if i >= semi {
            continue;
        }
        let sorted_later = (semi..toks.len()).any(|j| {
            toks[j].kind == TokenKind::Ident
                && toks[j].text == b.name
                && toks.get(j + 1).is_some_and(|n| n.is_punct("."))
                && toks
                    .get(j + 2)
                    .is_some_and(|n| n.kind == TokenKind::Ident && n.text.starts_with("sort"))
        });
        if sorted_later {
            return true;
        }
    }
    false
}

fn hash_finding(ctx: &FileContext, scope: &HashScope, idx: usize, what: &str) -> Finding {
    let msg = format!(
        "{what} a HashMap/HashSet whose result escapes (reaches state, output, or a \
         caller): std hash iteration order is randomly seeded per process, so this \
         path is not reproducible; use BTreeMap/BTreeSet or iterate a sorted key \
         snapshot"
    );
    let mut f = ctx.finding("hash-order-iteration", idx, msg);
    f.fixable = scope.fixable;
    f
}

/// Locates the `in` keyword and body `{` of the `for` loop whose keyword
/// sits at `for_idx`. Returns `None` for `impl .. for ..` headers.
fn for_loop_shape(ctx: &FileContext, for_idx: usize) -> Option<(usize, usize)> {
    let toks = ctx.tokens;
    let mut depth = 0i32;
    let mut k = for_idx + 1;
    let mut in_idx = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            in_idx = Some(k);
            break;
        } else if depth == 0 && t.is_punct("{") {
            return None;
        }
        k += 1;
    }
    let in_idx = in_idx?;
    let mut depth = 0i32;
    let mut k = in_idx + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("{") {
            return Some((in_idx, k));
        }
        k += 1;
    }
    None
}

/// `shared-mut-across-threads`: mutable state crossing a `spawn` boundary
/// without synchronization.
pub fn shared_mut_across_threads(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = ctx.tokens;
    // Names bound to Cell/RefCell anywhere in the file: capturing one of
    // these into a thread is a race even without a `&mut` token.
    let mut cellish: BTreeSet<String> = BTreeSet::new();
    for b in let_bindings(toks, 0, toks.len()) {
        let is_cell = |h: &str| h == "Cell" || h == "RefCell";
        if b.ty.as_ref().is_some_and(|t| is_cell(&t.head))
            || b.init_head.as_deref().is_some_and(is_cell)
        {
            cellish.insert(b.name);
        }
    }
    for item in &ctx.parsed.items {
        if let Some(sig) = &item.sig {
            for (name, ty) in &sig.params {
                if ty.head == "Cell" || ty.head == "RefCell" {
                    cellish.insert(name.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("spawn") || ctx.in_test(i) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")).map(|_| i + 1) else {
            continue;
        };
        let Some(close) = ctx.parsed.match_of.get(open).copied().flatten() else { continue };
        // Locate the closure inside the spawn call.
        let mut j = open + 1;
        let mut params_open = None;
        while j < close {
            if toks[j].is_punct("|") || toks[j].is_punct("||") {
                params_open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(params_open) = params_open else { continue };
        let has_move = params_open >= 1 && toks[params_open - 1].is_ident("move");
        let (body_lo, mut closure_locals): (usize, BTreeSet<String>) =
            if toks[params_open].is_punct("||") {
                (params_open + 1, BTreeSet::new())
            } else {
                let mut end = params_open + 1;
                while end < close && !toks[end].is_punct("|") {
                    end += 1;
                }
                let names = toks[params_open + 1..end]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident && t.text != "mut")
                    .map(|t| t.text.clone())
                    .collect();
                (end + 1, names)
            };
        for b in let_bindings(toks, body_lo, close) {
            closure_locals.insert(b.name);
        }
        for k in body_lo..close {
            let tk = &toks[k];
            // `&mut name` reaching out of the closure.
            if tk.is_punct("&")
                && toks.get(k + 1).is_some_and(|n| n.is_ident("mut"))
                && toks.get(k + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let name = &toks[k + 2].text;
                if !closure_locals.contains(name) {
                    out.push(ctx.finding(
                        "shared-mut-across-threads",
                        k,
                        format!(
                            "`&mut {name}` captured across a spawn boundary: two workers \
                             holding it race, and the winner depends on the scheduler; \
                             move disjoint chunks into each worker or merge results \
                             deterministically after join"
                        ),
                    ));
                }
            }
            if tk.kind != TokenKind::Ident {
                continue;
            }
            // Unsynchronized `static mut` named anywhere in this crate.
            if ctx.symbols.is_mut_static(ctx.krate, &tk.text) {
                out.push(ctx.finding(
                    "shared-mut-across-threads",
                    k,
                    format!(
                        "`static mut {}` touched inside a spawned closure: unsynchronized \
                         static access across threads is a data race; use an atomic or \
                         pass per-worker state explicitly",
                        tk.text
                    ),
                ));
            }
            // Cell/RefCell captured into the thread.
            if cellish.contains(&tk.text) && !closure_locals.contains(&tk.text) {
                out.push(ctx.finding(
                    "shared-mut-across-threads",
                    k,
                    format!(
                        "`{}` is Cell/RefCell-typed and crosses a spawn boundary: interior \
                         mutability without Sync is a race (and RefCell panics); use \
                         Mutex/atomics or thread-local state",
                        tk.text
                    ),
                ));
            }
            // Writes to captured places from a non-`move` closure.
            if !has_move
                && toks.get(k + 1).is_some_and(|n| {
                    n.kind == TokenKind::Punct
                        && matches!(n.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=")
                })
                && !closure_locals.contains(&tk.text)
                && place_root(ctx, k).is_some_and(|r| !closure_locals.contains(&toks[r].text))
            {
                out.push(ctx.finding(
                    "shared-mut-across-threads",
                    k,
                    format!(
                        "non-`move` spawn closure writes captured `{}`: the write aliases \
                         the spawning thread's binding; move ownership into the worker \
                         and return results through the join",
                        tk.text
                    ),
                ));
            }
        }
    }
    out
}

/// `lossy-float-cast`: `as <narrower>` applied to an expression with
/// positive `f64` evidence, in the order-sensitive crates.
pub fn lossy_float_cast(ctx: &FileContext) -> Vec<Finding> {
    if !ctx.krate.is_some_and(|k| ORDER_SENSITIVE_CRATES.contains(&k)) {
        return Vec::new();
    }
    let toks = ctx.tokens;
    // Names with declared f64 type: params and annotated locals.
    let mut f64_names: BTreeSet<String> = BTreeSet::new();
    for item in &ctx.parsed.items {
        if let Some(sig) = &item.sig {
            for (name, ty) in &sig.params {
                if ty.head == "f64" {
                    f64_names.insert(name.clone());
                }
            }
        }
        for (name, ty) in &item.fields {
            if ty.head == "f64" {
                f64_names.insert(name.clone());
            }
        }
    }
    for b in let_bindings(toks, 0, toks.len()) {
        if b.ty.as_ref().is_some_and(|t| t.head == "f64") {
            f64_names.insert(b.name);
        }
    }
    let ident_is_f64 = |idx: usize| -> bool {
        let t = &toks[idx];
        if t.kind != TokenKind::Ident {
            return t.kind == TokenKind::Float;
        }
        if t.text == "f64" || f64_names.contains(&t.text) {
            return true;
        }
        // Function-return evidence only applies to an actual call: a bare
        // ident sharing a name with an f64-returning fn (e.g. a `link: u32`
        // local next to `fn link(..) -> f64`) proves nothing.
        if toks.get(idx + 1).is_some_and(|n| n.is_punct("("))
            && ctx.symbols.fn_return_head(ctx.krate, &t.text).is_some_and(|h| h.head == "f64")
        {
            return true;
        }
        idx >= 1
            && toks[idx - 1].is_punct(".")
            && ctx.symbols.field_head(ctx.krate, &t.text).is_some_and(|h| h.head == "f64")
    };
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_test(i) {
            continue;
        }
        let Some(target) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        if !LOSSY_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Walk the cast operand backwards collecting f64 evidence; `as`
        // binds tighter than arithmetic, so stop at any operator.
        let mut evidence = false;
        let mut j = i.checked_sub(1);
        while let Some(k) = j {
            let tk = &toks[k];
            if tk.is_punct(")") || tk.is_punct("]") {
                if let Some(open) = ctx.parsed.match_of.get(k).copied().flatten() {
                    evidence |= (open + 1..k).any(ident_is_f64);
                    j = open.checked_sub(1);
                    continue;
                }
                break;
            }
            if tk.kind == TokenKind::Ident || tk.kind == TokenKind::Float {
                evidence |= ident_is_f64(k);
                j = k.checked_sub(1);
                continue;
            }
            if tk.is_punct(".") || tk.is_punct("::") {
                j = k.checked_sub(1);
                continue;
            }
            break;
        }
        if evidence {
            out.push(ctx.finding(
                "lossy-float-cast",
                i,
                format!(
                    "`as {}` on an f64-carrying expression silently truncates: prices and \
                     rates lose precision differently across engines and platforms; keep \
                     the value in f64, or make the rounding explicit \
                     (`.round()`/`.floor()` + bounds check) and document it",
                    target.text
                ),
            ));
        }
    }
    out
}

/// `missing-must-use`: `Result`-returning public API without `#[must_use]`.
pub fn missing_must_use(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in &ctx.parsed.items {
        // Trait-impl methods inherit the trait's attribute, and trait
        // declarations are out of scope for a mechanical insert.
        let eligible = item.kind == ItemKind::Fn
            && item.is_pub
            && matches!(item.container, Container::TopLevel | Container::InherentImpl)
            && !item.has_must_use
            && !ctx.in_test(item.kw);
        if !eligible {
            continue;
        }
        let returns_result =
            item.sig.as_ref().and_then(|s| s.ret.as_ref()).is_some_and(|r| r.head == "Result");
        if !returns_result {
            continue;
        }
        out.push(ctx.fixable_finding(
            "missing-must-use",
            item.kw,
            format!(
                "`pub fn {}` returns Result without `#[must_use = \"..\"]`: a dropped \
                 Result swallows the failure and the engine continues on stale state; \
                 annotate so callers must handle or explicitly discard it",
                item.name
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Layer-3 rules: CFG + call-graph + effect-fixpoint backed.
// ---------------------------------------------------------------------------

/// The body braces of the innermost fn item containing token `idx`.
fn enclosing_fn_body(ctx: &FileContext, idx: usize) -> Option<(usize, usize)> {
    ctx.parsed
        .items
        .iter()
        .filter(|it| it.kind == ItemKind::Fn)
        .filter_map(|it| it.body)
        .filter(|&(open, close)| idx > open && idx < close)
        .min_by_key(|&(open, close)| close - open)
}

/// `kernel-impure`: a fn declared under `crates/core/src/kernel/` whose
/// interprocedural effect set contains anything in
/// [`EffectSet::KERNEL_DENIED`] — directly or through any callee.
pub fn kernel_impure(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library
        || ctx.krate != Some("core")
        || !ctx.path.contains("/kernel/")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in &ctx.parsed.items {
        if item.kind != ItemKind::Fn || ctx.in_test(item.kw) {
            continue;
        }
        let Some(i) = ctx.flow.graph.fn_at(ctx.path, item.kw) else { continue };
        let denied = ctx.flow.table.effects[i].intersect(EffectSet::KERNEL_DENIED);
        if !denied.is_empty() {
            out.push(ctx.finding(
                "kernel-impure",
                item.kw,
                format!(
                    "kernel fn `{}` acquires effects: {}; kernel::* is pure \
                     per-element math — the three engines call it in different \
                     orders and counts, so any effect diverges them; hoist the \
                     effect into the executor and pass results in",
                    item.name,
                    ctx.flow.table.describe(i, denied)
                ),
            ));
        }
    }
    out
}

/// The cached-state structs of `crates/core` whose fields must never be
/// written without dirty-set marking. Derived-state structs, not inputs:
/// writing one of these without an exact `mark` is what silently breaks
/// incremental-vs-full bitwise equality.
const DIRTY_TRACKED_STRUCTS: &[&str] = &["StepState", "NodeTable"];

/// Field names inside the tracked structs that *are* the bookkeeping
/// (dirty lists, flags, scratch): writing them is the marking, not a
/// cached-state mutation.
fn is_dirty_bookkeeping_field(name: &str) -> bool {
    name.contains("dirty")
        || name.starts_with("changed")
        || name.ends_with("_scratch")
        || matches!(name, "first" | "force_utility" | "panic_on_flow")
}

/// Field-chain members of the place expression ending at token `end`
/// (inclusive): for `s.rates[i]` returns `[("rates", idx)]`. Bare roots
/// are deliberately not collected — only `.field` accesses can denote the
/// tracked structs' state.
fn lhs_field_members(ctx: &FileContext, mut j: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    loop {
        let Some(t) = ctx.tokens.get(j) else { return out };
        if t.is_punct("]") || t.is_punct(")") {
            let Some(open) = ctx.parsed.match_of.get(j).copied().flatten() else {
                return out;
            };
            let Some(prev) = open.checked_sub(1) else { return out };
            j = prev;
            continue;
        }
        if t.kind != TokenKind::Ident {
            return out;
        }
        let Some(prev2) = j.checked_sub(2) else { return out };
        if ctx.tokens[j - 1].is_punct(".") {
            out.push((t.text.clone(), j));
            j = prev2;
        } else if ctx.tokens[j - 1].is_punct("::") {
            j = prev2;
        } else {
            return out;
        }
    }
}

/// `unmarked-dirty-write`: an assignment to a cached field of
/// `StepState`/`NodeTable` inside a fn whose transitive effects never
/// touch the dirty-set API.
pub fn unmarked_dirty_write(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library || ctx.krate != Some("core") {
        return Vec::new();
    }
    let mut cached: BTreeSet<&str> = BTreeSet::new();
    for s in DIRTY_TRACKED_STRUCTS {
        if let Some(fields) = ctx.symbols.fields_of(Some("core"), s) {
            cached.extend(
                fields.iter().map(String::as_str).filter(|f| !is_dirty_bookkeeping_field(f)),
            );
        }
    }
    if cached.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in &ctx.parsed.items {
        if item.kind != ItemKind::Fn || ctx.in_test(item.kw) {
            continue;
        }
        let Some((open, close)) = item.body else { continue };
        let marks = ctx
            .flow
            .effects_at(ctx.path, item.kw)
            .is_some_and(|e| e.contains(EffectSet::DIRTY_API));
        if marks {
            continue;
        }
        for k in open + 1..close.min(ctx.tokens.len()) {
            let tk = &ctx.tokens[k];
            let is_assign = tk.kind == TokenKind::Punct
                && matches!(
                    tk.text.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=" | "^="
                );
            if !is_assign || k == 0 {
                continue;
            }
            let hit = lhs_field_members(ctx, k - 1)
                .into_iter()
                .find(|(name, _)| cached.contains(name.as_str()));
            if let Some((name, at)) = hit {
                out.push(ctx.finding(
                    "unmarked-dirty-write",
                    at,
                    format!(
                        "fn `{}` writes cached field `{name}` but never reaches the \
                         dirty-set API: incremental mode recomputes only marked \
                         nodes, so an unmarked write silently diverges it from the \
                         full solve; pair the write with `mark`/`note_*` (directly \
                         or via a marking helper)",
                        item.name
                    ),
                ));
            }
        }
    }
    out
}

/// `condvar-wait-no-predicate-loop`: a `Condvar::wait`/`wait_timeout`
/// call whose innermost enclosing loop does not re-check a predicate —
/// or that sits in no loop at all. Spurious wakeups make such a wait a
/// lost-wakeup/early-continue bug. `wait_while` is self-predicated and
/// exempt.
pub fn condvar_wait_no_predicate_loop(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let is_wait = (t.is_ident("wait") || t.is_ident("wait_timeout"))
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_wait || ctx.in_test(i) {
            continue;
        }
        // A condvar wait takes the guard as its first argument; a bare
        // ident there distinguishes it from `Child::wait()` and friends.
        if !toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident) {
            continue;
        }
        let Some((open, close)) = enclosing_fn_body(ctx, i) else { continue };
        let body_cfg = cfg::build(toks, &ctx.parsed.match_of, open, close);
        let verdict = match body_cfg.innermost_loop(i) {
            None => Some("sits in no loop"),
            Some(lp) => match lp.kind {
                LoopKind::While | LoopKind::WhileLet | LoopKind::For => None,
                LoopKind::Loop => {
                    if cfg::loop_breaks_conditionally(toks, &ctx.parsed.match_of, lp) {
                        None
                    } else {
                        Some("sits in a `loop` with no conditional exit")
                    }
                }
            },
        };
        if let Some(why) = verdict {
            out.push(ctx.finding(
                "condvar-wait-no-predicate-loop",
                i,
                format!(
                    "`.{}()` {why}: condvar wakeups are spurious and coalesced, so \
                     a wait that is not re-entered by a predicate check either \
                     hangs (lost wakeup) or continues early; use \
                     `while !predicate {{ guard = cv.wait(guard)?; }}` or \
                     `wait_while`",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Method names that acquire a guard when they appear in a `let`
/// initializer.
fn is_lock_acquisition(ctx: &FileContext, k: usize) -> bool {
    let toks = ctx.tokens;
    let t = &toks[k];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let next_call = toks.get(k + 1).is_some_and(|n| n.is_punct("("));
    match t.text.as_str() {
        "lock_unpoisoned" => next_call,
        "lock" | "try_lock" => next_call && k >= 1 && toks[k - 1].is_punct("."),
        // Zero-arg `.read()` / `.write()` (RwLock); with args they are IO.
        "read" | "write" => {
            next_call
                && k >= 1
                && toks[k - 1].is_punct(".")
                && toks.get(k + 2).is_some_and(|n| n.is_punct(")"))
        }
        _ => false,
    }
}

/// Blocking calls that must not run while a guard is live. `.wait()` is
/// exempt: a condvar wait releases the guard it is given.
fn is_blocking_park(ctx: &FileContext, k: usize) -> Option<&'static str> {
    let toks = ctx.tokens;
    let t = &toks[k];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let next_call = toks.get(k + 1).is_some_and(|n| n.is_punct("("));
    let zero_arg = next_call && toks.get(k + 2).is_some_and(|n| n.is_punct(")"));
    match t.text.as_str() {
        "park" if zero_arg => Some("park()"),
        "recv" if zero_arg && k >= 1 && toks[k - 1].is_punct(".") => Some(".recv()"),
        "join" if zero_arg && k >= 1 && toks[k - 1].is_punct(".") => Some(".join()"),
        "sleep" if next_call => Some("sleep(..)"),
        _ => None,
    }
}

/// `lock-held-across-park`: a guard bound by `let` is still in scope when
/// the thread parks, blocks on a channel, joins, or sleeps.
pub fn lock_held_across_park(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for b in let_bindings(toks, 0, toks.len()) {
        if ctx.in_test(b.idx) {
            continue;
        }
        // Statement end: the `;` at depth 0 after the binding.
        let mut k = b.idx + 1;
        let mut semi = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match ctx.parsed.match_of.get(k).copied().flatten() {
                    Some(close) => k = close + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct(";") {
                semi = Some(k);
                break;
            }
            if t.is_punct("}") {
                break;
            }
            k += 1;
        }
        let Some(semi) = semi else { continue };
        if !(b.idx..semi).any(|k| is_lock_acquisition(ctx, k)) {
            continue;
        }
        // The guard lives from the `;` to the close of the innermost
        // enclosing brace — or an explicit `drop(name)`.
        let mut depth = 0i32;
        let mut k = semi + 1;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_ident("drop")
                && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(k + 2).is_some_and(|n| n.is_ident(&b.name))
            {
                break;
            } else if let Some(what) = is_blocking_park(ctx, k) {
                out.push(ctx.finding(
                    "lock-held-across-park",
                    k,
                    format!(
                        "`{what}` while guard `{}` is live: blocking with a lock \
                         held stalls every other worker on that lock (and deadlocks \
                         if the blocked-on thread needs it); drop the guard first \
                         or scope it in a block",
                        b.name
                    ),
                ));
            }
            k += 1;
        }
    }
    out
}

/// `vector-escape`: lane-batched f64 accumulation shapes outside the
/// `Numerics`-gated `kernel/vector.rs` — `chunks_exact`-style reduction
/// loops and manual multi-accumulator unrolling. Reassociation changes
/// f64 low bits, so these shapes are only allowed behind the calibrated
/// vector module.
pub fn vector_escape(ctx: &FileContext) -> Vec<Finding> {
    if ctx.kind != FileKind::Library
        || ctx.krate != Some("core")
        || ctx.path.ends_with("kernel/vector.rs")
    {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    // Shape (a): `.chunks_exact(..)` / `.array_chunks(..)` feeding an
    // accumulation before the enclosing brace closes.
    for (i, t) in toks.iter().enumerate() {
        let is_chunks = (t.is_ident("chunks_exact") || t.is_ident("array_chunks"))
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_chunks || ctx.in_test(i) {
            continue;
        }
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut accumulates = false;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_punct("+=")
                || ((t.is_ident("sum") || t.is_ident("fold"))
                    && toks.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct(".")))
            {
                accumulates = true;
                break;
            }
            k += 1;
        }
        if accumulates {
            out.push(vector_finding(ctx, i, "a `chunks_exact`-style reduction"));
        }
    }
    // Shape (b): manual lane unrolling — two or more float accumulators
    // fed by `+=` in one loop body and recombined afterwards.
    for item in &ctx.parsed.items {
        if item.kind != ItemKind::Fn || ctx.in_test(item.kw) {
            continue;
        }
        let Some((open, close)) = item.body else { continue };
        let mut float_accs: BTreeSet<String> = BTreeSet::new();
        for k in open + 1..close.min(toks.len()) {
            if toks[k].is_ident("let")
                && toks.get(k + 1).is_some_and(|n| n.is_ident("mut"))
                && toks.get(k + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                && toks.get(k + 3).is_some_and(|n| n.is_punct("="))
                && toks.get(k + 4).is_some_and(|n| n.kind == TokenKind::Float)
            {
                float_accs.insert(toks[k + 2].text.clone());
            }
        }
        if float_accs.len() < 2 {
            continue;
        }
        let body_cfg = cfg::build(toks, &ctx.parsed.match_of, open, close);
        for lp in &body_cfg.loops {
            let fed: BTreeSet<&str> = (lp.body.0 + 1..lp.body.1)
                .filter(|&k| {
                    toks[k].kind == TokenKind::Ident
                        && float_accs.contains(&toks[k].text)
                        && toks.get(k + 1).is_some_and(|n| n.is_punct("+="))
                })
                .map(|k| toks[k].text.as_str())
                .collect();
            if fed.len() < 2 {
                continue;
            }
            let recombined = (lp.body.1 + 1..close.min(toks.len())).any(|k| {
                toks[k].kind == TokenKind::Ident
                    && fed.contains(toks[k].text.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("+"))
                    && toks.get(k + 2).is_some_and(|n| {
                        n.kind == TokenKind::Ident
                            && fed.contains(n.text.as_str())
                            && n.text != toks[k].text
                    })
            });
            if recombined {
                out.push(vector_finding(ctx, lp.kw, "a manual multi-accumulator reduction"));
            }
        }
    }
    out
}

fn vector_finding(ctx: &FileContext, idx: usize, what: &str) -> Finding {
    ctx.finding(
        "vector-escape",
        idx,
        format!(
            "{what} outside kernel/vector.rs: lane-batched accumulation \
             reassociates f64 adds, and only the `Numerics`-gated \
             kernel::vector module is calibrated (and suppression-confined) \
             for that; route this through kernel::vector or accumulate \
             sequentially",
        ),
    )
}
