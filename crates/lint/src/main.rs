//! The `lrgp-lint` binary: scan a tree, print diagnostics, gate CI.
//!
//! ```text
//! lrgp-lint [PATH ...] [--deny] [--json] [--out FILE] [--fix] [--changed REF]
//!           [--effects] [--list-rules] [--explain RULE]
//! ```
//!
//! With no paths, scans the current directory (the workspace root in CI).
//! `--deny` exits non-zero when any unsuppressed finding remains; `--json`
//! prints the machine-readable report to stdout; `--out FILE` additionally
//! writes the JSON report to a file (used by the CI artifact upload).
//! `--fix` applies machine-applicable rewrites in place before reporting,
//! so the report shows what remains for a human. `--changed REF` reports
//! only findings in files that differ from the given git ref (the whole
//! tree is still analyzed, so cross-file symbols stay correct).
//! `--effects` prints the effect-surface snapshot (one sorted line per
//! public library fn with its inferred effect set) instead of linting;
//! the committed `crates/lint/effect_surface.txt` is this output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
lrgp-lint — determinism-invariant static analysis for the LRGP workspace

USAGE:
  lrgp-lint [PATH ...] [--deny] [--json] [--out FILE] [--fix] [--changed REF]
            [--effects] [--list-rules] [--explain RULE]

OPTIONS:
  --deny         exit 1 if any unsuppressed finding remains (CI mode)
  --json         print the stable, sorted JSON report to stdout
  --out FILE     also write the JSON report to FILE
  --fix          apply machine-applicable rewrites in place, then report
  --changed REF  report only files that differ from the given git ref
  --effects      print the effect-surface snapshot (one sorted line per
                 public library fn and its effect set) instead of linting;
                 with --json, a graph report with lock-order edges
  --list-rules   describe every rule and the invariant it protects
  --explain RULE print the rationale, an example, and the remediation
                 for one rule";

struct Options {
    roots: Vec<PathBuf>,
    deny: bool,
    json: bool,
    out: Option<PathBuf>,
    fix: bool,
    changed: Option<String>,
    effects: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        roots: Vec::new(),
        deny: false,
        json: false,
        out: None,
        fix: false,
        changed: None,
        effects: false,
        list_rules: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--fix" => opts.fix = true,
            "--effects" => opts.effects = true,
            "--list-rules" => opts.list_rules = true,
            "--out" => match it.next() {
                Some(path) => opts.out = Some(PathBuf::from(path)),
                None => return Err("--out requires a file path".to_string()),
            },
            "--changed" => match it.next() {
                Some(base) => opts.changed = Some(base.clone()),
                None => return Err("--changed requires a git ref".to_string()),
            },
            "--explain" => match it.next() {
                Some(rule) => opts.explain = Some(rule.clone()),
                None => return Err("--explain requires a rule id".to_string()),
            },
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            path => opts.roots.push(PathBuf::from(path)),
        }
    }
    if opts.roots.is_empty() {
        opts.roots.push(PathBuf::from("."));
    }
    Ok(opts)
}

/// Renders the `--effects --json` graph report: the effect-surface lines
/// plus every lock-order edge and detected cycle. Keys and array order are
/// stable, so CI can diff the artifact across runs.
fn effects_json(lines: &[String], locks: &lrgp_lint::lockgraph::LockGraph) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"lrgp-lint\",\n  \"report\": \"effect-surface\",\n");
    out.push_str("  \"surface\": [");
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 < lines.len() { "," } else { "" };
        out.push_str(&format!("\n    {}{}", esc(line), sep));
    }
    out.push_str(if lines.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"lock_edges\": [");
    for (i, e) in locks.edges.iter().enumerate() {
        let sep = if i + 1 < locks.edges.len() { "," } else { "" };
        out.push_str(&format!(
            "\n    {{\"held\": {}, \"then\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"in_fn\": {}}}{}",
            esc(&e.held),
            esc(&e.then),
            esc(&e.file),
            e.line,
            e.col,
            esc(&e.in_fn),
            sep,
        ));
    }
    out.push_str(if locks.edges.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"lock_cycles\": [");
    for (i, cycle) in locks.cycles.iter().enumerate() {
        let sep = if i + 1 < locks.cycles.len() { "," } else { "" };
        out.push_str(&format!("\n    {}{}", esc(&locks.describe_cycle(cycle)), sep));
    }
    out.push_str(if locks.cycles.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Renders the `--explain` card for one rule; `None` for unknown ids.
fn explain_rule(id: &str) -> Option<String> {
    let rule = lrgp_lint::RULES.iter().find(|r| r.id == id)?;
    let mut out = String::new();
    out.push_str(&format!("{}\n", rule.id));
    out.push_str(&format!("  flags:     {}\n", rule.summary));
    out.push_str(&format!("  protects:  {}\n\n", rule.invariant));
    out.push_str(rule.explain);
    out.push('\n');
    Some(out)
}

fn list_rules() {
    for rule in lrgp_lint::RULES {
        println!("{}", rule.id);
        println!("  flags:     {}", rule.summary);
        println!("  protects:  {}", rule.invariant);
    }
    println!(
        "\nsuppress with: // lrgp-lint: allow(<rule>, reason = \"...\") \
         (covers its line and the next code line)"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        return match explain_rule(rule) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule '{rule}' (see --list-rules)");
                ExitCode::from(2)
            }
        };
    }
    if opts.effects {
        let (lines, locks) = match lrgp_lint::effect_surface_paths(&opts.roots) {
            Ok(surface) => surface,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let text = if opts.json {
            effects_json(&lines, &locks)
        } else {
            let mut text = lines.join("\n");
            text.push('\n');
            text
        };
        if let Some(path) = &opts.out {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        } else {
            print!("{text}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.fix {
        match lrgp_lint::fix_paths(&opts.roots) {
            Ok(outcome) => eprintln!(
                "lrgp-lint: applied {} fix edit(s) across {} file(s)",
                outcome.edits_applied, outcome.files_changed
            ),
            Err(e) => {
                eprintln!("error: --fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let only = match &opts.changed {
        None => None,
        Some(base) => match lrgp_lint::changed_labels(base) {
            Ok(labels) => Some(labels),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let report = match lrgp_lint::lint_paths_filtered(&opts.roots, only.as_ref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if opts.deny && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
