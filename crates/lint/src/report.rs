//! Aggregated reports: stable ordering, human rendering, JSON.
//!
//! Findings are sorted by `(file, line, col, rule)` and suppressions by
//! `(file, line, rule)` so that two runs over the same tree produce
//! byte-identical output — the same committed-baseline workflow used for
//! `BENCH_lrgp.json` can diff lint reports directly.

use crate::engine::{Finding, Suppression};
use std::fmt::Write as _;

/// Version stamp for the JSON schema, bumped on breaking shape changes.
/// Version 2 added the per-finding `fixable` key; version 3 added the
/// top-level `analysis_ms` wallclock; version 4 replaced it with the
/// per-layer breakdown `lex_ms`/`semantic_ms`/`dataflow_ms`/`graph_ms`.
pub const JSON_SCHEMA_VERSION: u32 = 4;

/// The aggregated result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Matched suppressions, sorted by `(file, line, rule)`.
    pub suppressions: Vec<Suppression>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Wallclock of lexing + parsing, in milliseconds. The four `*_ms`
    /// fields are the only non-deterministic report fields: consumers
    /// diffing reports should zero them (CI tracks them as a perf series
    /// instead).
    pub lex_ms: u64,
    /// Wallclock of symbol-table construction plus the rule sweep.
    pub semantic_ms: u64,
    /// Wallclock of the call graph and interprocedural effect fixpoint.
    pub dataflow_ms: u64,
    /// Wallclock of the layer-4 whole-program graph analyses.
    pub graph_ms: u64,
}

impl Report {
    /// Builds a report, establishing the stable sort order.
    pub fn new(
        mut findings: Vec<Finding>,
        mut suppressions: Vec<Suppression>,
        files_scanned: usize,
    ) -> Report {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        suppressions
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        Report {
            findings,
            suppressions,
            files_scanned,
            lex_ms: 0,
            semantic_ms: 0,
            dataflow_ms: 0,
            graph_ms: 0,
        }
    }

    /// True if nothing unsuppressed was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `file:line:col: rule: message` per finding, plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}:{}: {}: {}", f.file, f.line, f.col, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "lrgp-lint: {} finding{} ({} suppression{} honored) across {} file{}",
            self.findings.len(),
            plural(self.findings.len()),
            self.suppressions.len(),
            plural(self.suppressions.len()),
            self.files_scanned,
            plural(self.files_scanned),
        );
        out
    }

    /// Machine-readable report; keys and array order are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"lrgp-lint\",");
        let _ = writeln!(out, "  \"schema_version\": {JSON_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"lex_ms\": {},", self.lex_ms);
        let _ = writeln!(out, "  \"semantic_ms\": {},", self.semantic_ms);
        let _ = writeln!(out, "  \"dataflow_ms\": {},", self.dataflow_ms);
        let _ = writeln!(out, "  \"graph_ms\": {},", self.graph_ms);
        let _ = writeln!(out, "  \"total_findings\": {},", self.findings.len());
        let _ = writeln!(out, "  \"total_suppressions\": {},", self.suppressions.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"fixable\": {}, \"message\": {}}}{}",
                json_string(&f.file),
                f.line,
                f.col,
                json_string(f.rule),
                f.fixable,
                json_string(&f.message),
                sep,
            );
        }
        out.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            let sep = if i + 1 < self.suppressions.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}{}",
                json_string(&s.file),
                s.line,
                json_string(&s.rule),
                json_string(&s.reason),
                sep,
            );
        }
        out.push_str(if self.suppressions.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string encoding (the report contains no exotic content,
/// but escaping is still done properly).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, col: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message: "m".to_string(),
            fixable: false,
        }
    }

    #[test]
    fn report_orders_findings_stably() {
        let unsorted = vec![
            finding("b.rs", 1, 1, "float-eq"),
            finding("a.rs", 9, 1, "float-eq"),
            finding("a.rs", 2, 7, "library-unwrap"),
            finding("a.rs", 2, 7, "float-eq"),
        ];
        let r = Report::new(unsorted, Vec::new(), 2);
        let order: Vec<(String, u32, &str)> =
            r.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, "float-eq"),
                ("a.rs".to_string(), 2, "library-unwrap"),
                ("a.rs".to_string(), 9, "float-eq"),
                ("b.rs".to_string(), 1, "float-eq"),
            ]
        );
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut f = finding("a.rs", 1, 2, "float-eq");
        f.message = "say \"hi\"\npath\\x".to_string();
        let r = Report::new(vec![f], Vec::new(), 1);
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "same input must render identically");
        assert!(json.contains("\"schema_version\": 4"));
        assert!(json.contains("\"lex_ms\": 0"));
        assert!(json.contains("\"semantic_ms\": 0"));
        assert!(json.contains("\"dataflow_ms\": 0"));
        assert!(json.contains("\"graph_ms\": 0"));
        assert!(json.contains(r#"say \"hi\"\npath\\x"#));
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\"fixable\": false"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new(Vec::new(), Vec::new(), 3);
        assert!(r.is_clean());
        assert!(r.render_human().contains("0 findings"));
        assert!(r.to_json().contains("\"findings\": []"));
    }
}
