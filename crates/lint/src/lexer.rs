//! A hand-rolled, line/column-tracked Rust lexer.
//!
//! The analyzer deliberately avoids `syn` (consistent with the workspace's
//! vendored-shims / no-network policy), so this module implements the small
//! subset of Rust lexing the rules need: identifiers, numeric literals with
//! int/float classification, string/char/lifetime literals (including raw
//! and byte strings), nested block comments, and multi-character operators.
//! Comments are not emitted as tokens, but line comments are scanned for
//! `// lrgp-lint: allow(<rule>, reason = "...")` suppression directives.
//!
//! Every token records its **character span** (`offset`/`len` in `char`
//! units into the source) in addition to line/column: the span is what the
//! `--fix` rewriter edits, so it must cover the token's full source
//! spelling even for literals whose `text` is elided (`"…"`, `'…'`).
//!
//! The lexer is intentionally forgiving: on malformed input it degrades to
//! single-character punctuation tokens rather than failing, because a lint
//! must never be the reason a build script dies on a file `rustc` itself
//! accepts.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `partial_cmp`, `HashMap`, ...).
    Ident,
    /// An integer literal (`42`, `0xff_u32`, `1_000`).
    Int,
    /// A float literal (`0.0`, `1e-9`, `2.5f64`, `1.`).
    Float,
    /// A string literal of any flavor (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operators; [`Token::text`] holds the full spelling
    /// (`"=="`, `"::"`, `"+="`, `"{"`).
    Punct,
}

/// One lexed token with its 1-based source position and character span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// The exact source spelling (literal bodies are elided to `…`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Offset of the token's first character, in `char` units.
    pub offset: usize,
    /// Length of the token's source spelling, in `char` units.
    pub len: usize,
}

impl Token {
    /// True if this token is an identifier with exactly this spelling.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this token is punctuation with exactly this spelling.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// An inline suppression: `// lrgp-lint: allow(<rule>, reason = "...")`.
///
/// A directive suppresses findings of `rule` on its own line and on the
/// next line that carries any token, so it works both as a trailing
/// comment and on the line above the offending code.
#[derive(Debug, Clone)]
pub struct Directive {
    /// The rule id being allowed (e.g. `float-eq`).
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// 1-based line the directive comment sits on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// Well-formed suppression directives found in line comments.
    pub directives: Vec<Directive>,
    /// Malformed `lrgp-lint:` directives: `(line, what is wrong)`.
    pub directive_errors: Vec<(u32, String)>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Emits a token starting at `(line, col, start)` and ending at the
    /// current cursor.
    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32, start: usize) {
        let len = self.pos.saturating_sub(start);
        self.out.tokens.push(Token { kind, text, line, col, offset: start, len });
    }

    /// True if the most recently emitted token is a `.` — used to lex
    /// tuple indices (`x.0.1`) as integers rather than floats.
    fn after_dot(&self) -> bool {
        self.out.tokens.last().is_some_and(|t| t.is_punct("."))
    }

    fn lex_line_comment(&mut self) {
        let line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        scan_directive(&body, line, &mut self.out);
    }

    fn lex_block_comment(&mut self) {
        // Already consumed `/*`; block comments nest.
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"..."` body (opening quote already consumed), honoring
    /// backslash escapes.
    fn lex_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body after `r##...` — `hashes` already
    /// counted, opening quote already consumed. No escapes: the body ends
    /// at the first `"` followed by exactly `hashes` `#` characters, so a
    /// quote followed by *fewer* hashes (`"#` inside an `r##"..."##`
    /// string) is body content, not a terminator.
    fn lex_raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                // Count candidate hashes without consuming short runs: a
                // run shorter than `hashes` stays part of the body, and its
                // characters must be re-scanned (one of them could start
                // another `"` candidate only if it is a quote, which a `#`
                // never is — but partial consumption would still desync the
                // span bookkeeping for nested `"#` sequences).
                let mut matched = 0;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..matched {
                        self.bump();
                    }
                    break;
                }
            }
        }
    }

    /// Lexes what follows a `'`: a lifetime or a char literal.
    ///
    /// Disambiguation: `'x` followed by a closing quote is a char literal
    /// (`'a'`), an identifier-start character *not* followed by a closing
    /// quote opens a lifetime (`'a`, `'static`, `'_`), and anything else is
    /// a char literal. For valid Rust this is exact: a lifetime is never
    /// immediately followed by `'`.
    fn lex_quote(&mut self, line: u32, col: u32, start: usize) {
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, String::from("'…'"), line, col, start);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: 'name with no closing quote.
                let mut name = String::from("'");
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    name.push(c);
                    self.bump();
                }
                self.push(TokenKind::Lifetime, name, line, col, start);
            }
            Some(_) => {
                // Plain char literal 'x'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, String::from("'…'"), line, col, start);
            }
            None => self.push(TokenKind::Punct, String::from("'"), line, col, start),
        }
    }

    fn lex_number(&mut self, line: u32, col: u32, start: usize) {
        let mut text = String::new();
        let mut float = false;
        let first = self.bump().unwrap_or('0');
        text.push(first);
        if first == '0' && matches!(self.peek(0), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O')) {
            // Radix literal: digits + underscores + hex letters + suffix.
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, text, line, col, start);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but not for `0..10` (range) or `x.0.1` (tuple
        // indices, detected via the previously emitted `.`).
        if !self.after_dot() && self.peek(0) == Some('.') {
            let next = self.peek(1);
            let fraction = next.is_none_or(|c| c.is_ascii_digit());
            let trailing_dot = !matches!(
                next,
                Some(c) if c.is_ascii_digit() || c == '.' || is_ident_start(c)
            );
            if fraction || trailing_dot {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if let Some(e @ ('e' | 'E')) = self.peek(0) {
            let (p1, p2) = (self.peek(1), self.peek(2));
            let has_exp = matches!(p1, Some(c) if c.is_ascii_digit())
                || (matches!(p1, Some('+' | '-')) && matches!(p2, Some(c) if c.is_ascii_digit()));
            if has_exp {
                float = true;
                text.push(e);
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' || c == '+' || c == '-' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`f64`, `u32`, ...).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float { TokenKind::Float } else { TokenKind::Int };
        self.push(kind, text, line, col, start);
    }

    fn lex_ident_or_string(&mut self, line: u32, col: u32, start: usize) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        // String prefixes: r"", r#""#, b"", br"", b'x'.
        let raw = matches!(name.as_str(), "r" | "br" | "rb");
        let bytes = matches!(name.as_str(), "b" | "br" | "rb");
        match self.peek(0) {
            Some('"') if raw || bytes => {
                self.bump();
                if raw {
                    self.lex_raw_string_body(0);
                } else {
                    self.lex_string_body();
                }
                self.push(TokenKind::Str, String::from("\"…\""), line, col, start);
            }
            Some('#') if raw => {
                let mut hashes = 0;
                while self.peek(0) == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                if self.peek(0) == Some('"') {
                    self.bump();
                    self.lex_raw_string_body(hashes);
                    self.push(TokenKind::Str, String::from("\"…\""), line, col, start);
                } else {
                    // Raw identifier `r#ident`: the ident spelling keeps its
                    // `r#` prefix so `r#type` is distinguishable from the
                    // keyword `type`, and the consumed `#` stays inside the
                    // token span.
                    let mut rest = name;
                    for _ in 0..hashes {
                        rest.push('#');
                    }
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        rest.push(c);
                        self.bump();
                    }
                    self.push(TokenKind::Ident, rest, line, col, start);
                }
            }
            Some('\'') if name == "b" => {
                self.bump();
                self.lex_quote(line, col, start);
            }
            _ => self.push(TokenKind::Ident, name, line, col, start),
        }
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            let (line, col, start) = (self.line, self.col, self.pos);
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                self.lex_line_comment();
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                self.lex_block_comment();
                continue;
            }
            if c == '"' {
                self.bump();
                self.lex_string_body();
                self.push(TokenKind::Str, String::from("\"…\""), line, col, start);
                continue;
            }
            if c == '\'' {
                self.bump();
                self.lex_quote(line, col, start);
                continue;
            }
            if c.is_ascii_digit() {
                self.lex_number(line, col, start);
                continue;
            }
            if is_ident_start(c) {
                self.lex_ident_or_string(line, col, start);
                continue;
            }
            // Punctuation: longest multi-char operator first.
            let mut matched = None;
            for op in MULTI_PUNCT {
                let n = op.chars().count();
                if (0..n).all(|k| self.peek(k) == op.chars().nth(k)) {
                    matched = Some(*op);
                    break;
                }
            }
            match matched {
                Some(op) => {
                    for _ in 0..op.chars().count() {
                        self.bump();
                    }
                    self.push(TokenKind::Punct, op.to_string(), line, col, start);
                }
                None => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col, start);
                }
            }
        }
        self.out
    }
}

/// Lexes one source file. Never fails: malformed constructs degrade into
/// punctuation tokens.
pub fn lex(src: &str) -> LexedFile {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, out: LexedFile::default() }
        .run()
}

/// Parses a line-comment body for an `lrgp-lint:` directive.
///
/// Grammar: `lrgp-lint: allow(<rule-id>, reason = "<text>")`. Anything that
/// starts with `lrgp-lint:` but does not parse is recorded as an error so
/// typos cannot silently suppress nothing (the engine turns these into
/// `bad-directive` findings).
fn scan_directive(comment_body: &str, line: u32, out: &mut LexedFile) {
    let body = comment_body.trim();
    let Some(rest) = body.strip_prefix("lrgp-lint:") else {
        return;
    };
    let rest = rest.trim();
    let fail = |msg: &str, out: &mut LexedFile| {
        out.directive_errors.push((line, msg.to_string()));
    };
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
        fail("expected `allow(<rule>, reason = \"...\")`", out);
        return;
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        fail("missing `, reason = \"...\"` — suppressions must be justified", out);
        return;
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        fail("rule id must be a lowercase-kebab-case identifier", out);
        return;
    }
    let reason_part = reason_part.trim();
    let Some(q) = reason_part.strip_prefix("reason").map(str::trim_start) else {
        fail("expected `reason = \"...\"` after the rule id", out);
        return;
    };
    let Some(q) = q.strip_prefix('=').map(str::trim_start) else {
        fail("expected `=` after `reason`", out);
        return;
    };
    let reason = q.strip_prefix('"').and_then(|r| r.strip_suffix('"')).unwrap_or("");
    if reason.trim().is_empty() {
        fail("reason must be a non-empty quoted string", out);
        return;
    }
    out.directives.push(Directive { rule: rule.to_string(), reason: reason.to_string(), line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_ops() {
        let toks = kinds("let x = a.partial_cmp(&b) == 0.5e-3;");
        assert!(toks.contains(&(TokenKind::Ident, "partial_cmp".into())));
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Float, "0.5e-3".into())));
    }

    #[test]
    fn float_vs_int_classification() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xff")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000")[0].0, TokenKind::Int);
    }

    #[test]
    fn ranges_and_tuple_indices_stay_ints() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokenKind::Int, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
        let toks = kinds("x.0.1");
        assert_eq!(toks[2], (TokenKind::Int, "0".into()));
        assert_eq!(toks[4], (TokenKind::Int, "1".into()));
        // `1.max(2)` — method call on an integer literal.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn strings_chars_lifetimes_comments() {
        let toks = kinds("let s = \"a == 1.5 .unwrap()\"; // trailing == 2.0\nlet c = 'x';");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
        assert!(!toks.iter().any(|t| t.1 == "2.0"));
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"let s = r#"embedded "quote" == 3.5"#; let b = b"bytes";"###);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 2);
        assert!(!toks.iter().any(|t| t.1 == "3.5"));
    }

    #[test]
    fn nested_raw_strings_with_embedded_terminator_prefixes() {
        // `"#` inside an `r##"..."##` string is content, not a terminator.
        let src = r####"let s = r##"quote "# inside"##; after(1.5);"####;
        let toks = lex(src).tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after survives");
        assert_eq!((after.line, after.col), (1, 33));
        // A short hash run right before the real terminator.
        let src = r#####"let s = r###"x"## y"###; done()"#####;
        let toks = lex(src).tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        // Byte raw strings take the same path.
        let src = r####"let s = br##"bytes "# ok"##; done()"####;
        assert!(lex(src).tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn raw_identifiers_keep_prefix_and_span() {
        let toks = lex("let r#type = r#match + 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
        assert!(toks.iter().any(|t| t.is_ident("r#match")));
        let t = toks.iter().find(|t| t.is_ident("r#type")).expect("raw ident");
        assert_eq!(t.len, "r#type".chars().count());
    }

    #[test]
    fn lifetime_vs_char_literal_disambiguation() {
        // Exact positions: lifetimes in generics, char literals in tuples.
        let toks = lex("fn f<'a, '_, 'static>(x: &'a u8) { g(('a', 'b'), b'z') }").tokens;
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, vec!["'a", "'_", "'static", "'a"]);
        // 'a', 'b', b'z' are chars.
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
        // Labeled loops and escaped quotes.
        let toks = lex("'outer: loop { break 'outer; } let q = '\\''; let n = '\\n';").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(),
            2,
            "label definition and break target"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
        // Exact position of the token after a char literal.
        let lexed = lex("let c = 'x'; next");
        let next = lexed.tokens.iter().find(|t| t.is_ident("next")).expect("next token");
        assert_eq!((next.line, next.col), (1, 14));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ still comment == 9.5 */ b");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn char_spans_cover_source_spelling() {
        let src = "alpha = \"str\" + 'c' + 2.5f64;";
        let chars: Vec<char> = src.chars().collect();
        for t in lex(src).tokens {
            let spelling: String = chars[t.offset..t.offset + t.len].iter().collect();
            match t.kind {
                TokenKind::Str => assert_eq!(spelling, "\"str\""),
                TokenKind::Char => assert_eq!(spelling, "'c'"),
                _ => assert_eq!(spelling, t.text, "span must reproduce the token"),
            }
        }
        // Spans are contiguous and non-overlapping in source order.
        let lexed = lex("a.partial_cmp(&b)");
        for w in lexed.tokens.windows(2) {
            assert!(w[0].offset + w[0].len <= w[1].offset);
        }
    }

    #[test]
    fn directive_parses() {
        let lexed = lex("x // lrgp-lint: allow(float-eq, reason = \"sentinel compare\")\ny");
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].rule, "float-eq");
        assert_eq!(lexed.directives[0].reason, "sentinel compare");
        assert_eq!(lexed.directives[0].line, 1);
        assert!(lexed.directive_errors.is_empty());
    }

    #[test]
    fn malformed_directives_are_errors() {
        for bad in [
            "// lrgp-lint: allow(float-eq)",
            "// lrgp-lint: deny(float-eq, reason = \"x\")",
            "// lrgp-lint: allow(float-eq, reason = \"\")",
            "// lrgp-lint: allow(Float_EQ, reason = \"x\")",
        ] {
            let lexed = lex(bad);
            assert!(lexed.directives.is_empty(), "{bad} should not parse");
            assert_eq!(lexed.directive_errors.len(), 1, "{bad} should be an error");
        }
        // Ordinary comments are left alone.
        assert!(lex("// nothing to see").directive_errors.is_empty());
    }
}
